"""Table 2 — interval-domain analysis performance.

Times the three interval analyzers (vanilla, base-with-localization,
sparse) on the benchmark ladder and checks the paper's comparative shape:

* ``base`` beats ``vanilla`` (Spd.1) and ``sparse`` beats ``base`` (Spd.2)
  on the larger programs;
* the sparse analysis splits into Dep (dependency construction) and Fix
  (fixpoint) phases, with Fix small;
* average |D̂(c)| / |Û(c)| stay tiny (the sparsity observation of §6.3).

Absolute numbers are Python-scale; the paper's OCaml analyzer is ~100×
faster per operation — ratios are the reproduction target.

    pytest benchmarks/bench_table2_interval.py --benchmark-only -s
"""

import pytest

from repro.analysis.dense import run_dense
from repro.analysis.sparse import run_sparse


@pytest.mark.parametrize("size", ["small", "medium"])
def test_vanilla(benchmark, prepared_interval, size):
    prep = prepared_interval[size]
    result = benchmark.pedantic(
        lambda: run_dense(prep.program, prep.pre), rounds=1, iterations=1
    )
    assert result.table


@pytest.mark.parametrize("size", ["small", "medium", "large"])
def test_base_localized(benchmark, prepared_interval, size):
    prep = prepared_interval[size]
    result = benchmark.pedantic(
        lambda: run_dense(prep.program, prep.pre, localize=True),
        rounds=1,
        iterations=1,
    )
    assert result.table


@pytest.mark.parametrize("size", ["small", "medium", "large"])
def test_sparse(benchmark, prepared_interval, size):
    prep = prepared_interval[size]
    result = benchmark.pedantic(
        lambda: run_sparse(prep.program, prep.pre), rounds=1, iterations=1
    )
    d, u = result.defuse.average_sizes()
    print(
        f"\nTable2[{prep.spec.name}]: deps={result.stats.dep_count} "
        f"(raw {result.stats.raw_dep_count}) "
        f"Dep={result.stats.time_dep:.2f}s Fix={result.stats.time_fix:.2f}s "
        f"D̂(c)={d:.2f} Û(c)={u:.2f}"
    )
    # §6.3: only a tiny fraction of abstract locations per point
    assert d < 5 and u < 8


def test_speedup_shape(prepared_interval):
    """The headline comparison on the largest program: sparse total time
    (Dep + Fix) beats vanilla and base by a widening margin."""
    import time

    prep = prepared_interval["large"]

    t0 = time.perf_counter()
    run_dense(prep.program, prep.pre)
    vanilla = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_dense(prep.program, prep.pre, localize=True)
    base = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_sparse(prep.program, prep.pre)
    sparse = time.perf_counter() - t0

    print(
        f"\nTable2 shape [{prep.spec.name}]: vanilla={vanilla:.2f}s "
        f"base={base:.2f}s sparse={sparse:.2f}s "
        f"Spd.1={vanilla / base:.1f}x Spd.2={base / sparse:.1f}x "
        f"Spd(total)={vanilla / sparse:.1f}x"
    )
    # who wins: the paper's ordering must hold with real margin
    assert sparse < base, "sparse must beat the localized baseline"
    assert sparse * 2 < vanilla, "sparse must beat vanilla clearly"
