"""Serve-mode latency gate: warm point queries vs fresh full analysis.

Loads a workload into a resident :class:`ServeSession` once, then measures

* the **cold** first query (demand/global solve + facade walk),
* the **median warm** query over a rotating set of point queries against
  the resident tables, and
* one **edit + requery** round trip (incremental invalidation + re-solve).

The gate is the PR's acceptance bar: the median warm query must be at
least ``GATE_FACTOR`` (5) times faster than a from-scratch full analysis of
the same program — the whole point of keeping state resident.

Two workloads run: the largest real-corpus example (``gzip_window.c``,
widening mode) and a loop-free generated program large enough to exercise
the exact-mode cone path across an edit.

Usage::

    python benchmarks/bench_serve.py            # full run
    python benchmarks/bench_serve.py --quick    # CI-sized warm-query count

Emits ``BENCH_serve.json`` next to the repo root.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api import analyze  # noqa: E402
from repro.bench.codegen import WorkloadSpec, generate_source  # noqa: E402
from repro.server.session import ServeSession  # noqa: E402
from repro.server.supervisor import Supervisor  # noqa: E402

#: median warm query must beat a fresh full analysis by this factor
GATE_FACTOR = 5.0

CORPUS_FILE = ROOT / "examples" / "corpus" / "gzip_window.c"
CORPUS_QUERIES = [
    ("main", "strstart"),
    ("update_hash", "v"),
    ("insert_string", "prev"),
    ("longest_match", "len"),
    ("main", "h"),
]
CORPUS_EDIT = (
    "update_hash",
    "  int v = (h * 5 + c) % HSIZE;\n"
    "  if (v < 0) {\n"
    "    v = -v;\n"
    "  }\n"
    "  return v;",
)


def generated_workload() -> tuple[str, str]:
    spec = WorkloadSpec(
        name="serve-bench",
        n_functions=24,
        n_globals=10,
        n_arrays=2,
        array_len=16,
        stmts_per_function=8,
        loops_per_function=0,
        calls_per_function=2,
        pointer_ops_per_function=1,
        recursion_cycle=0,
        funcptr_sites=0,
        unique_callees=True,
        seed=7,
    )
    return generate_source(spec), spec.name


def bench_workload(
    name: str,
    source: str,
    filename: str,
    *,
    preprocess: bool,
    exact: bool,
    queries: list[tuple[str, str]],
    edit: tuple[str, str],
    n_warm: int,
) -> dict:
    strict = widen = not exact

    t0 = time.perf_counter()
    analyze(
        source,
        filename=filename,
        preprocess_source=preprocess,
        strict=strict,
        widen=widen,
    )
    t_fresh = time.perf_counter() - t0

    t0 = time.perf_counter()
    session = ServeSession(
        source,
        filename,
        preprocess_source=preprocess,
        strict=strict,
        widen=widen,
    )
    t_load = time.perf_counter() - t0

    proc, var = queries[0]
    t0 = time.perf_counter()
    session.query_interval(proc, var)
    t_cold = time.perf_counter() - t0

    warm = []
    for i in range(n_warm):
        proc, var = queries[i % len(queries)]
        t0 = time.perf_counter()
        q = session.query_interval(proc, var)
        warm.append(time.perf_counter() - t0)
        assert q.interval is not None
    t_warm_median = statistics.median(warm)

    func, body = edit
    t0 = time.perf_counter()
    session.edit(function=func, body=body)
    t_edit = time.perf_counter() - t0
    proc, var = queries[0]
    t0 = time.perf_counter()
    requery = session.query_interval(proc, var)
    t_requery = time.perf_counter() - t0

    failures = []
    if t_warm_median * GATE_FACTOR > t_fresh:
        failures.append(
            f"{name}: median warm query {t_warm_median * 1e3:.3f}ms not "
            f"{GATE_FACTOR}x faster than fresh analysis "
            f"{t_fresh * 1e3:.1f}ms"
        )

    speedup = t_fresh / t_warm_median if t_warm_median else float("inf")
    print(
        f"  {name}: fresh {t_fresh * 1e3:7.1f}ms  "
        f"cold {t_cold * 1e3:7.1f}ms  "
        f"warm median {t_warm_median * 1e3:7.3f}ms  "
        f"({speedup:,.0f}x)  edit+requery "
        f"{(t_edit + t_requery) * 1e3:7.1f}ms [{requery.solve}]"
    )
    return {
        "workload": name,
        "fresh_ms": round(t_fresh * 1e3, 3),
        "load_ms": round(t_load * 1e3, 3),
        "cold_query_ms": round(t_cold * 1e3, 3),
        "warm_median_ms": round(t_warm_median * 1e3, 4),
        "warm_queries": len(warm),
        "warm_vs_fresh_speedup": round(speedup, 1),
        "edit_ms": round(t_edit * 1e3, 3),
        "requery_ms": round(t_requery * 1e3, 3),
        "requery_solve": requery.solve,
        "queries_by_solve": dict(session.counters),
        "failures": failures,
    }


def bench_supervised(
    name: str,
    source: str,
    filename: str,
    *,
    preprocess: bool,
    exact: bool,
    queries: list[tuple[str, str]],
    n_warm: int,
    t_fresh: float,
) -> dict:
    """Warm-query round trips through the supervised runtime (worker
    child + pipes + watchdog polling). Supervision overhead must not eat
    the resident-state win: the same ``GATE_FACTOR`` bar applies."""
    strict = widen = not exact
    sup = Supervisor(
        source,
        filename,
        preprocess_source=preprocess,
        strict=strict,
        widen=widen,
    )
    try:
        sup.start()
        proc, var = queries[0]
        request = {"op": "query", "kind": "interval", "proc": proc, "var": var}
        t0 = time.perf_counter()
        cold = sup.ask({**request, "id": 0})
        t_cold = time.perf_counter() - t0
        assert cold.get("ok"), cold

        warm = []
        for i in range(n_warm):
            proc, var = queries[i % len(queries)]
            t0 = time.perf_counter()
            resp = sup.ask(
                {
                    "op": "query",
                    "kind": "interval",
                    "proc": proc,
                    "var": var,
                    "id": i + 1,
                }
            )
            warm.append(time.perf_counter() - t0)
            assert resp.get("ok"), resp
        t_warm_median = statistics.median(warm)
    finally:
        sup.stop()

    failures = []
    if t_warm_median * GATE_FACTOR > t_fresh:
        failures.append(
            f"{name} (supervised): median warm query "
            f"{t_warm_median * 1e3:.3f}ms not {GATE_FACTOR}x faster than "
            f"fresh analysis {t_fresh * 1e3:.1f}ms"
        )
    speedup = t_fresh / t_warm_median if t_warm_median else float("inf")
    print(
        f"  {name} (supervised): cold {t_cold * 1e3:7.1f}ms  "
        f"warm median {t_warm_median * 1e3:7.3f}ms  ({speedup:,.0f}x)"
    )
    return {
        "workload": f"{name}-supervised",
        "fresh_ms": round(t_fresh * 1e3, 3),
        "cold_query_ms": round(t_cold * 1e3, 3),
        "warm_median_ms": round(t_warm_median * 1e3, 4),
        "warm_queries": len(warm),
        "warm_vs_fresh_speedup": round(speedup, 1),
        "failures": failures,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized warm-query count"
    )
    args = parser.parse_args()
    n_warm = 20 if args.quick else 60

    print(f"serve latency gate (gate {GATE_FACTOR}x, warm n={n_warm})")
    gen_source, gen_name = generated_workload()
    rows = [
        bench_workload(
            "gzip_window",
            CORPUS_FILE.read_text(),
            str(CORPUS_FILE),
            preprocess=True,
            exact=False,
            queries=CORPUS_QUERIES,
            edit=CORPUS_EDIT,
            n_warm=n_warm,
        ),
        bench_workload(
            gen_name,
            gen_source,
            f"<{gen_name}>",
            preprocess=False,
            exact=True,
            queries=[("main", "acc"), ("f0", "v0"), ("f7", "v1"),
                     ("f15", "p0"), ("main", "g0")],
            edit=("f7", "{\n    int v0 = 2;\n    int v1 = p0 + 5;\n"
                        "    return v0 + v1;\n}"),
            n_warm=n_warm,
        ),
    ]

    rows.append(
        bench_supervised(
            "gzip_window",
            CORPUS_FILE.read_text(),
            str(CORPUS_FILE),
            preprocess=True,
            exact=False,
            queries=CORPUS_QUERIES,
            n_warm=n_warm,
            t_fresh=rows[0]["fresh_ms"] / 1e3,
        )
    )

    failures = [f for row in rows for f in row["failures"]]
    report = {
        "gate_factor": GATE_FACTOR,
        "workloads": rows,
        "failures": failures,
    }
    out = ROOT / "BENCH_serve.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("serve gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
