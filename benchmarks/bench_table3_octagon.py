"""Table 3 — octagon-domain analysis performance.

Same three-way comparison as Table 2 but with the packed relational
domain. The paper's shape: octagons are an order of magnitude costlier per
operation, so the suite is smaller; localization helps (Spd.1 ≈ 8–9×) and
sparseness helps more (Spd.2 ≈ 13–56×); average pack sizes sit in the
3–7 range.

    pytest benchmarks/bench_table3_octagon.py --benchmark-only -s
"""

import pytest

from repro.analysis.relational import build_packs, run_rel_dense, run_rel_sparse


@pytest.mark.parametrize("size", ["small", "medium"])
def test_octagon_vanilla(benchmark, prepared_octagon, size):
    prep = prepared_octagon[size]
    packs = build_packs(prep.program)
    result = benchmark.pedantic(
        lambda: run_rel_dense(prep.program, prep.pre, packs),
        rounds=1,
        iterations=1,
    )
    assert result.table


@pytest.mark.parametrize("size", ["small", "medium"])
def test_octagon_base(benchmark, prepared_octagon, size):
    prep = prepared_octagon[size]
    packs = build_packs(prep.program)
    result = benchmark.pedantic(
        lambda: run_rel_dense(prep.program, prep.pre, packs, localize=True),
        rounds=1,
        iterations=1,
    )
    assert result.table


@pytest.mark.parametrize("size", ["small", "medium"])
def test_octagon_sparse(benchmark, prepared_octagon, size):
    prep = prepared_octagon[size]
    packs = build_packs(prep.program)
    result = benchmark.pedantic(
        lambda: run_rel_sparse(prep.program, prep.pre, packs),
        rounds=1,
        iterations=1,
    )
    d, u = result.defuse.average_sizes()
    print(
        f"\nTable3[{prep.spec.name}]: Dep={result.time_dep:.2f}s "
        f"Fix={result.time_fix:.2f}s D̂(c)={d:.2f} Û(c)={u:.2f} "
        f"avg-pack={result.packs.average_size():.1f}"
    )
    # the paper reports pack-granular sparsity; packs average 3–7 members
    assert 1.5 <= result.packs.average_size() <= 10


def test_octagon_speedup_shape(prepared_octagon):
    import time

    prep = prepared_octagon["medium"]
    packs = build_packs(prep.program)

    t0 = time.perf_counter()
    run_rel_dense(prep.program, prep.pre, packs)
    vanilla = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_rel_sparse(prep.program, prep.pre, packs)
    sparse = time.perf_counter() - t0

    print(
        f"\nTable3 shape [{prep.spec.name}]: vanilla={vanilla:.2f}s "
        f"sparse={sparse:.2f}s Spd={vanilla / sparse:.1f}x"
    )
    assert sparse < vanilla


def test_octagon_costlier_than_interval(prepared_octagon):
    """Cross-table shape: per program, the octagon analysis costs more
    than the interval analysis (why Table 3 stops at 130 KLOC)."""
    import time

    from repro.analysis.sparse import run_sparse

    prep = prepared_octagon["medium"]
    packs = build_packs(prep.program)

    t0 = time.perf_counter()
    run_sparse(prep.program, prep.pre)
    interval = time.perf_counter() - t0

    t0 = time.perf_counter()
    run_rel_sparse(prep.program, prep.pre, packs)
    octagon = time.perf_counter() - t0

    print(f"\ninterval={interval:.2f}s octagon={octagon:.2f}s "
          f"ratio={octagon / max(interval, 1e-9):.1f}x")
    assert octagon > interval
