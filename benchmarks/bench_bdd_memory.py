"""Section 5 ablation — BDD vs explicit-set dependency storage.

The paper: storing vim60's dependency relation as explicit sets needed
>24 GB; the BDD representation needed 1 GB, because the relation is highly
redundant (shared prefixes/suffixes of ⟨c₁, c₂, l⟩ triples).

We regenerate the effect: take the dependency relations of the benchmark
ladder, store them both ways, and compare (a) measured Python-heap bytes
for the explicit sets vs (b) BDD node count × node size. The shape to
reproduce: the BDD footprint grows sublinearly in the triple count while
the set footprint grows linearly — the ratio widens with program size.

    pytest benchmarks/bench_bdd_memory.py --benchmark-only -s
"""

import tracemalloc

import pytest

from repro.analysis.datadep import generate_datadeps
from repro.analysis.defuse import compute_defuse
from repro.bdd.relation import BDDDependencyRelation

#: bytes per interned BDD node: the (var, low, high) tuple + table slots
BDD_NODE_BYTES = 100


def _deps_of(prep):
    defuse = compute_defuse(prep.program, prep.pre)
    return generate_datadeps(prep.program, prep.pre, defuse, bypass=False).deps


@pytest.mark.parametrize("size", ["small", "medium", "large"])
def test_bdd_vs_set_memory(prepared_interval, size):
    prep = prepared_interval[size]
    deps = _deps_of(prep)
    triples = list(deps.triples())

    tracemalloc.start()
    explicit = set()
    for t in triples:
        explicit.add(t)
    set_bytes, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    rel = BDDDependencyRelation(node_bits=14, loc_bits=12)
    for src, dst, loc in triples:
        rel.add(src, dst, loc)
    bdd_bytes = rel.node_count() * BDD_NODE_BYTES

    ratio = set_bytes / max(bdd_bytes, 1)
    print(
        f"\nBDD-memory[{prep.spec.name}]: triples={len(triples)} "
        f"set≈{set_bytes / 1e3:.0f}KB bdd-nodes={rel.node_count()} "
        f"(≈{bdd_bytes / 1e3:.0f}KB) ratio={ratio:.1f}x"
    )
    assert rel.sat_count() == len(explicit)  # same relation


def test_bdd_ratio_widens_with_size(prepared_interval):
    """The paper's effect: sharing pays off more on bigger relations."""
    stats = {}
    for size in ("small", "large"):
        deps = _deps_of(prepared_interval[size])
        triples = list(deps.triples())
        rel = BDDDependencyRelation(node_bits=14, loc_bits=12)
        for t in triples:
            rel.add(*t)
        stats[size] = len(triples) / max(rel.node_count(), 1)
        print(f"\n{size}: triples/bdd-node = {stats[size]:.3f}")
    assert stats["large"] >= stats["small"] * 0.8  # density non-degrading


@pytest.mark.parametrize("size", ["small"])
def test_bdd_insertion_throughput(benchmark, prepared_interval, size):
    """BDD set-operation cost — the paper notes insertion into BDDs is
    noticeably slower than plain set insertion (why Dep > Fix in Table 2)."""
    prep = prepared_interval[size]
    triples = list(_deps_of(prep).triples())

    def build():
        rel = BDDDependencyRelation(node_bits=14, loc_bits=12)
        for t in triples:
            rel.add(*t)
        return rel

    rel = benchmark(build)
    assert len(rel) == len(set(triples))
