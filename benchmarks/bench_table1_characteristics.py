"""Table 1 — benchmark characteristics.

Regenerates the LOC / Functions / Statements / Blocks / maxSCC / AbsLocs
columns for the benchmark ladder and times the statistics pipeline (parse,
lower, pre-analyze, measure). Run with ``--benchmark-only``; the rows are
printed so the run doubles as the table generator:

    pytest benchmarks/bench_table1_characteristics.py --benchmark-only -s
"""

import pytest

from repro.bench.stats import compute_stats


@pytest.mark.parametrize("size", ["small", "medium", "large"])
def test_table1_row(benchmark, prepared_interval, size):
    prep = prepared_interval[size]

    stats = benchmark(
        lambda: compute_stats(prep.spec.name, prep.source, prep.program, prep.pre)
    )

    print(
        f"\nTable1[{prep.spec.name}]: LOC={stats.loc} "
        f"Functions={stats.functions} Statements={stats.statements} "
        f"Blocks={stats.blocks} maxSCC={stats.max_scc} AbsLocs={stats.abslocs}"
    )
    # structural sanity mirroring the paper's table shape
    assert stats.functions >= prep.spec.n_functions
    assert stats.statements > stats.functions
    assert stats.max_scc >= max(1, prep.spec.recursion_cycle)


def test_table1_scc_tracks_recursion_knob(prepared_interval):
    """maxSCC grows with the generator's recursion-cycle parameter, the
    structural driver the paper identifies for analysis cost."""
    small = compute_stats(
        "s",
        prepared_interval["small"].source,
        prepared_interval["small"].program,
        prepared_interval["small"].pre,
    )
    large = compute_stats(
        "l",
        prepared_interval["large"].source,
        prepared_interval["large"].program,
        prepared_interval["large"].pre,
    )
    assert large.max_scc > small.max_scc
    assert large.loc > small.loc
