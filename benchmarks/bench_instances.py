"""Section 3.2 — existing sparse analyses as framework instances.

Compares the full-sparse pipeline against the semi-sparse instance
(Hardekopf & Lin POPL'09, obtained by coarsening the pre-analysis for
address-taken variables): the instance's coarser D̂/Û produce more
dependencies and weaker sparsity, quantifying what the paper's semantic
fine-grained approximation buys.

    pytest benchmarks/bench_instances.py --benchmark-only -s
"""

import pytest

from repro.analysis.instances import compare_instances, semi_sparse_preanalysis
from repro.analysis.sparse import run_sparse
from repro.ir.program import build_program


def _workload(n: int = 10) -> str:
    """Pointer-heavy code with *address-taken pointers* — the case where
    the semi-sparse instance degrades: once ``&p`` exists, semi-sparse
    treats ``p`` as pointing anywhere, while the full framework keeps its
    precise flow-insensitive points-to set."""
    lines = []
    for i in range(n):
        lines.append(f"int g{i}; int *p{i}; int **pp{i};")
    for i in range(n):
        lines.append(
            f"void route{i}(void) {{ pp{i} = &p{i}; *pp{i} = &g{i}; "
            f"*p{i} = {i}; }}"
        )
    calls = " ".join(f"route{i}();" for i in range(n))
    reads = " + ".join(f"g{i}" for i in range(n))
    lines.append(f"int main(void) {{ {calls} return {reads}; }}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def program():
    return build_program(_workload())


def test_full_sparse(benchmark, program):
    result = benchmark.pedantic(
        lambda: run_sparse(program), rounds=1, iterations=1
    )
    d, u = result.defuse.average_sizes()
    print(f"\nfull-sparse: deps={result.stats.dep_count} D̂={d:.2f} Û={u:.2f}")


def test_semi_sparse(benchmark, program):
    def run():
        pre = semi_sparse_preanalysis(program)
        return run_sparse(program, pre=pre)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    d, u = result.defuse.average_sizes()
    print(f"\nsemi-sparse: deps={result.stats.dep_count} D̂={d:.2f} Û={u:.2f}")


def test_instance_shape(program):
    """The framework's finer D̂/Û must dominate the coarse instance."""
    cmp = compare_instances(program)
    print(
        f"\nfull: deps={cmp.full_deps} D̂={cmp.full_avg_d:.2f} "
        f"Û={cmp.full_avg_u:.2f}\n"
        f"semi: deps={cmp.semi_deps} D̂={cmp.semi_avg_d:.2f} "
        f"Û={cmp.semi_avg_u:.2f}"
    )
    assert cmp.semi_deps >= cmp.full_deps
    assert cmp.semi_avg_d >= cmp.full_avg_d
