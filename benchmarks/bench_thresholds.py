"""Ablation — threshold widening vs plain widening vs narrowing.

SPARROW (like Astrée) refines the conventional widening with landmark
thresholds harvested from the program text. This ablation quantifies the
trade-off on the sparse interval analysis: precision recovered (finite
loop bounds at widening points) vs extra fixpoint iterations.

    pytest benchmarks/bench_thresholds.py --benchmark-only -s
"""

import pytest

from repro.analysis.sparse import run_sparse
from repro.analysis.thresholds import collect_thresholds


def _finite_bound_fraction(result) -> float:
    """Fraction of numeric values in the fixpoint with finite upper bounds
    — the precision metric threshold widening moves."""
    finite = total = 0
    for state in result.table.values():
        for _loc, value in state.items():
            if value.itv.is_bottom() or not value.itv.leq(value.itv):
                continue
            if value.itv.lo is None and value.itv.hi is None:
                total += 1
                continue
            total += 1
            if value.itv.hi is not None:
                finite += 1
    return finite / max(total, 1)


@pytest.mark.parametrize(
    "variant", ["plain", "thresholds", "narrowing"]
)
def test_widening_variant(benchmark, prepared_interval, variant):
    prep = prepared_interval["medium"]
    kwargs = {}
    if variant == "thresholds":
        kwargs["widening_thresholds"] = "auto"
    elif variant == "narrowing":
        kwargs["narrowing_passes"] = 2

    result = benchmark.pedantic(
        lambda: run_sparse(prep.program, prep.pre, **kwargs),
        rounds=1,
        iterations=1,
    )
    frac = _finite_bound_fraction(result)
    print(
        f"\n{variant}: iterations={result.stats.iterations} "
        f"finite-upper-bound fraction={frac:.2%}"
    )


def test_thresholds_recover_precision(prepared_interval):
    prep = prepared_interval["medium"]
    plain = run_sparse(prep.program, prep.pre)
    thresh = run_sparse(prep.program, prep.pre, widening_thresholds="auto")
    f_plain = _finite_bound_fraction(plain)
    f_thresh = _finite_bound_fraction(thresh)
    print(f"\nfinite-bound fraction: plain={f_plain:.2%} "
          f"thresholds={f_thresh:.2%}")
    assert f_thresh >= f_plain


def test_threshold_count_bounded(prepared_interval):
    prep = prepared_interval["large"]
    ts = collect_thresholds(prep.program)
    print(f"\ncollected {len(ts)} thresholds")
    assert len(ts) <= 64
