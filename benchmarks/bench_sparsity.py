"""§6.3 discussion — performance tracks sparsity, not program size.

"Even though ghostscript-9.00 is 3.5 times bigger than emacs-22.1 in terms
of LOC, ghostscript-9.00 takes 2.6 times less time to analyze. Behind this
phenomenon, there is a large difference on sparsity."

We regenerate the effect with two programs of the *same* size whose
sparsity differs (via the global-touch probability knob): the denser
program must cost more to analyze sparsely, and across a density sweep the
fixpoint cost must correlate with avg |D̂(c)|+|Û(c)| rather than LOC.

    pytest benchmarks/bench_sparsity.py --benchmark-only -s
"""

import time

import pytest

from repro.analysis.preanalysis import run_preanalysis
from repro.analysis.sparse import run_sparse
from repro.bench.codegen import WorkloadSpec, generate_source
from repro.ir.program import build_program


def run_with_density(global_touch: float, n_functions: int = 16, seed: int = 5):
    spec = WorkloadSpec(
        name=f"density-{global_touch}",
        n_functions=n_functions,
        n_globals=18,
        global_touch_prob=global_touch,
        recursion_cycle=4,
        seed=seed,
    )
    source = generate_source(spec)
    program = build_program(source)
    pre = run_preanalysis(program)
    t0 = time.perf_counter()
    result = run_sparse(program, pre)
    elapsed = time.perf_counter() - t0
    d, u = result.defuse.average_sizes()
    return {
        "loc": source.count("\n"),
        "time": elapsed,
        "deps": result.stats.dep_count,
        "sparsity": d + u,
        "iterations": result.stats.iterations,
    }


@pytest.mark.parametrize("density", [0.1, 0.6])
def test_density_point(benchmark, density):
    stats = benchmark.pedantic(
        lambda: run_with_density(density), rounds=1, iterations=1
    )
    print(
        f"\ndensity={density}: LOC={stats['loc']} "
        f"avg|D̂|+|Û|={stats['sparsity']:.2f} deps={stats['deps']} "
        f"time={stats['time']:.2f}s iters={stats['iterations']}"
    )


def test_cost_tracks_sparsity_not_loc():
    """Two programs of the same size whose value-flow density differs: the
    denser one needs more dependencies and more propagation steps. (The
    density knob moves dependency *fan-out* — each global definition gains
    more uses — which is what drives the sparse engine's cost.)"""
    sparse_prog = run_with_density(0.1)
    dense_prog = run_with_density(0.6)
    print(
        f"\nsparser: LOC={sparse_prog['loc']} deps={sparse_prog['deps']} "
        f"iters={sparse_prog['iterations']}\n"
        f"denser : LOC={dense_prog['loc']} deps={dense_prog['deps']} "
        f"iters={dense_prog['iterations']}"
    )
    # same-size programs: similar LOC …
    assert abs(sparse_prog["loc"] - dense_prog["loc"]) < sparse_prog["loc"] * 0.5
    # … but the denser one needs more dependencies and more propagation
    assert dense_prog["deps"] > sparse_prog["deps"]
    assert dense_prog["iterations"] > sparse_prog["iterations"]


def test_bigger_but_sparser_is_cheaper_per_statement():
    """The ghostscript-vs-emacs effect, normalized: a bigger but sparser
    program costs less propagation work per line than a smaller, denser
    one. (The paper's 30× sparsity gap makes the effect absolute; our
    density knob spans a smaller range, so we check the per-LOC rate.)"""
    big_sparse = run_with_density(0.08, n_functions=24, seed=9)
    small_dense = run_with_density(0.7, n_functions=12, seed=9)
    big_rate = big_sparse["iterations"] / big_sparse["loc"]
    small_rate = small_dense["iterations"] / small_dense["loc"]
    print(
        f"\nbig+sparse : LOC={big_sparse['loc']} iters={big_sparse['iterations']} "
        f"({big_rate:.1f}/LOC)\n"
        f"small+dense: LOC={small_dense['loc']} iters={small_dense['iterations']} "
        f"({small_rate:.1f}/LOC)"
    )
    assert big_sparse["loc"] > small_dense["loc"]
    assert big_rate < small_rate
