"""Engine-core overhead gate for the unified fixpoint engine (ISSUE 3).

The refactor that folded the four hand-rolled worklist solvers into one
generic ``FixpointEngine`` must not cost scheduling quality: this benchmark
runs all six engine×domain combos on the quick scheduling workloads,
records worklist pops and wall time, and compares the pops against the
**seed baseline** (``benchmarks/baseline_engine_seed.json``, recorded with
the pre-refactor solvers). Any combo popping >10% more nodes than the seed
fails the run; wall times are reported (not gated — CI machines vary).

Usage::

    python benchmarks/bench_engine_refactor.py            # gate + report
    python benchmarks/bench_engine_refactor.py --record   # (re)write baseline

Emits ``BENCH_engine_refactor.json`` next to the repo root.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api import analyze  # noqa: E402
from repro.bench.codegen import default_suite  # noqa: E402
from repro.bench.codegen import generate_source  # noqa: E402

#: allowed pop-count growth over the seed baseline
POP_TOLERANCE = 0.10

COMBOS = [
    ("interval", "vanilla"),
    ("interval", "base"),
    ("interval", "sparse"),
    ("octagon", "vanilla"),
    ("octagon", "base"),
    ("octagon", "sparse"),
]


def workloads():
    """Finite-call-structure versions of the quick Table-2 workloads (same
    reshaping as bench_scheduling.py: table identity and pop counts are
    only schedule-comparable without recursion cycles)."""
    suite = {s.name: s for s in default_suite()}
    names = ["gzip-mini", "bc-mini"]
    return [
        dataclasses.replace(
            suite[n], recursion_cycle=0, unique_callees=True
        )
        for n in names
    ]


def measure() -> dict:
    out: dict[str, dict] = {}
    for spec in workloads():
        source = generate_source(spec)
        for domain, mode in COMBOS:
            key = f"{spec.name}/{domain}/{mode}"
            t0 = time.perf_counter()
            run = analyze(source, domain=domain, mode=mode)
            elapsed = time.perf_counter() - t0
            sched = run.scheduler_stats
            out[key] = {
                "pops": sched.pops,
                "revisits": sched.revisits,
                "time_s": round(elapsed, 4),
            }
            print(f"  {key}: pops={sched.pops} time={elapsed:.3f}s",
                  file=sys.stderr, flush=True)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--record", action="store_true",
        help="rewrite the seed baseline from this run",
    )
    args = parser.parse_args(argv)

    baseline_path = ROOT / "benchmarks" / "baseline_engine_seed.json"
    current = measure()

    if args.record:
        baseline_path.write_text(
            json.dumps(current, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded seed baseline to {baseline_path}")
        return 0

    baseline = json.loads(baseline_path.read_text())
    failures: list[str] = []
    report: dict[str, dict] = {}
    for key, cur in current.items():
        base = baseline.get(key)
        entry = dict(cur)
        if base is not None:
            entry["seed_pops"] = base["pops"]
            entry["seed_time_s"] = base["time_s"]
            entry["pop_ratio"] = (
                round(cur["pops"] / base["pops"], 4) if base["pops"] else None
            )
            if cur["pops"] > base["pops"] * (1 + POP_TOLERANCE):
                failures.append(
                    f"{key}: pops {cur['pops']} vs seed {base['pops']} "
                    f"(>{POP_TOLERANCE:.0%} regression)"
                )
        report[key] = entry

    out_path = ROOT / "BENCH_engine_refactor.json"
    out_path.write_text(json.dumps(
        {"tolerance": POP_TOLERANCE, "results": report, "failures": failures},
        indent=1, sort_keys=True,
    ) + "\n")
    print(f"wrote {out_path}")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print("engine-core overhead gate: OK (all pop counts within tolerance)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
