"""Ablation — bounded inlining as context sensitivity.

The analyses are context-insensitive (one abstract frame per procedure,
like the paper's). Duplicating small callees into their call sites buys
back context at the price of a larger program. This ablation measures the
trade on the sparse interval analysis: program growth, analysis time, and
a precision probe (distinct call sites keeping distinct argument values).

    pytest benchmarks/bench_inlining.py --benchmark-only -s
"""

import pytest

from repro.analysis.preanalysis import run_preanalysis
from repro.analysis.sparse import run_sparse
from repro.frontend import parse
from repro.frontend.inliner import inline_unit
from repro.ir.program import ProgramBuilder


def _workload(n_sites: int = 12) -> str:
    """Many call sites of tiny helpers with distinct constant arguments —
    the worst case for context-insensitive merging."""
    lines = [
        "int scale(int v, int k) { return v * k; }",
        "int shift(int v, int d) { return v + d; }",
    ]
    body = ["int acc = 0;"]
    for i in range(n_sites):
        body.append(f"int r{i} = scale({i + 1}, 2) + shift({i}, 5);")
        body.append(f"acc = acc + r{i};")
    lines.append(
        "int main(void) { " + " ".join(body) + " return acc; }"
    )
    return "\n".join(lines)


@pytest.fixture(scope="module")
def programs():
    src = _workload()
    original = ProgramBuilder(parse(src)).build()
    unit, count = inline_unit(parse(src))
    inlined = ProgramBuilder(unit).build()
    return original, inlined, count


def test_original_analysis(benchmark, programs):
    original, _inlined, _count = programs
    pre = run_preanalysis(original)
    benchmark.pedantic(
        lambda: run_sparse(original, pre), rounds=1, iterations=1
    )


def test_inlined_analysis(benchmark, programs):
    _original, inlined, count = programs
    pre = run_preanalysis(inlined)
    result = benchmark.pedantic(
        lambda: run_sparse(inlined, pre), rounds=1, iterations=1
    )
    print(f"\ninlined {count} call sites; "
          f"nodes {len(inlined.nodes())} vs original")


def test_precision_gain(programs):
    """Each inlined call site keeps its exact constant result; the merged
    analysis smears all sites together."""
    from repro.domains.absloc import VarLoc

    original, inlined, _ = programs
    orig_res = run_sparse(original)
    inl_res = run_sparse(inlined)

    def width_of(program, result, var):
        ret = next(
            n for n in program.cfgs["main"].nodes if "return" in str(n.cmd)
        )
        state = result.table.get(ret.nid)
        # find the reaching value by scanning the table (probe helper)
        for nid in sorted(result.table):
            st = result.table[nid]
            if VarLoc(var, "main") in st.locations():
                itv = st.get(VarLoc(var, "main")).itv
                if not itv.is_bottom():
                    return itv
        return None

    orig_r0 = width_of(original, orig_res, "r0")
    inl_r0 = width_of(inlined, inl_res, "r0")
    print(f"\nr0: original={orig_r0} inlined={inl_r0}")
    assert inl_r0 is not None and inl_r0.is_const()
    assert orig_r0 is None or not orig_r0.is_const() or orig_r0 == inl_r0


def test_size_cost(programs):
    original, inlined, count = programs
    growth = len(inlined.nodes()) / len(original.nodes())
    print(f"\nnodes: {len(original.nodes())} → {len(inlined.nodes())} "
          f"({growth:.2f}x) for {count} inlined calls")
    assert growth > 1.0  # duplication is the price
