"""Store-backend perf gate for the array-backed interval states (ISSUE 7).

Three layers, all A/B against the scalar dict reference in the same
process (so the gates are ratios, robust to CI machine speed):

1. **Microbenchmarks** — whole-state ``join_with``/``widen_with``/``leq``/
   ``join_changed`` on randomized states of growing size. Gate: the array
   backend must be ≥ ``MICRO_SPEEDUP_FLOOR``× faster than scalar on the
   largest size for join and widen.
2. **Octagon closure** — sparsity-preserving vs dense strong closure on
   mostly-⊤ packs; results are asserted byte-identical and the speedup is
   reported.
3. **End-to-end** — ``analyze`` on the largest ``examples/c`` files plus
   scaled synthetic corpus workloads under both backends. Gate: analysis
   tables must digest identically, and the array/scalar wall-clock ratio
   must not regress by more than ``E2E_TOLERANCE`` against the committed
   baseline (``benchmarks/baseline_store.json``).

Usage::

    python benchmarks/bench_store.py              # gate + report
    python benchmarks/bench_store.py --quick      # CI-sized run
    python benchmarks/bench_store.py --record     # (re)write the baseline

Emits ``BENCH_store.json`` next to the repo root.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import random
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.api import analyze  # noqa: E402
from repro.bench.codegen import default_suite, generate_source  # noqa: E402
from repro.domains.absloc import VarLoc  # noqa: E402
from repro.domains.interval import Interval  # noqa: E402
from repro.domains.octagon import Octagon, set_sparse_closure  # noqa: E402
from repro.domains.state import (  # noqa: E402
    ArrayAbsState,
    ScalarAbsState,
    set_store_backend,
)
from repro.domains.value import AbsValue, intern_value  # noqa: E402

#: the array backend must beat scalar by at least this factor on the
#: largest microbenchmark size (join_with / widen_with)
MICRO_SPEEDUP_FLOOR = 2.0
#: allowed regression of the end-to-end array/scalar time ratio vs baseline
E2E_TOLERANCE = 0.25


# -- microbenchmarks ----------------------------------------------------------


def _random_mapping(n: int, rng: random.Random) -> dict:
    out = {}
    for i in range(n):
        lo = rng.randint(-1000, 1000)
        hi = lo + rng.randint(0, 500)
        out[VarLoc(f"bench_v{i}", "bench")] = intern_value(
            AbsValue.of_interval(Interval(lo, hi))
        )
    return out


def _build(cls, mapping):
    state = object.__new__(cls)
    state.__init__()
    for loc, value in mapping.items():
        state.set(loc, value)
    return state


def _time_op(cls, a_map, b_map, op, thresholds, reps: int) -> float:
    a = _build(cls, a_map)
    b = _build(cls, b_map)
    targets = [a.copy() for _ in range(reps)]  # op mutates its receiver
    if op == "leq":
        # measure the convergence-check shape (a ⊑ a⊔b holds): a failing
        # leq early-exits in both backends and measures nothing
        big = a.copy()
        big.join_with(b)
    t0 = time.perf_counter()
    if op == "join_with":
        for t in targets:
            t.join_with(b)
    elif op == "widen_with":
        for t in targets:
            t.widen_with(b, thresholds)
    elif op == "join_changed":
        for t in targets:
            t.join_changed(b)
    elif op == "leq":
        for _ in range(reps):
            a.leq(big)
            big.leq(a)
    return time.perf_counter() - t0


def micro_bench(sizes: list[int], reps: int) -> dict:
    rng = random.Random(20120613)  # PLDI 2012 (the paper's venue)
    thresholds = (0, 16, 64, 256)
    out: dict[str, dict] = {}
    for n in sizes:
        a_map = _random_mapping(n, rng)
        # overlapping but shifted second state: joins/widens actually move
        b_map = _random_mapping(n, random.Random(n))
        for op in ("join_with", "widen_with", "leq", "join_changed"):
            t_scalar = _time_op(ScalarAbsState, a_map, b_map, op, thresholds, reps)
            t_array = _time_op(ArrayAbsState, a_map, b_map, op, thresholds, reps)
            key = f"micro/{op}/n={n}"
            out[key] = {
                "scalar_s": round(t_scalar, 5),
                "array_s": round(t_array, 5),
                "speedup": round(t_scalar / t_array, 2) if t_array else None,
            }
            print(
                f"  {key}: scalar={t_scalar:.4f}s array={t_array:.4f}s "
                f"({out[key]['speedup']}x)",
                file=sys.stderr,
                flush=True,
            )
    return out


# -- octagon closure ----------------------------------------------------------


def _sparse_pack(dim: int, support: int) -> Octagon:
    oct_ = Octagon.top(dim)
    for k in range(support):
        oct_ = oct_.with_upper(k, 3 * k + 5).with_lower(k, -k)
        if k:
            oct_ = oct_.with_diff(k, k - 1, 2)
    return Octagon(dim, oct_.matrix)  # drop closed_flag: force real closure


def octagon_bench(dims: list[int], reps: int) -> tuple[dict, list[str]]:
    import numpy as np

    out: dict[str, dict] = {}
    failures: list[str] = []
    for dim in dims:
        oct_ = _sparse_pack(dim, support=3)
        prev = set_sparse_closure(enabled=True)
        t0 = time.perf_counter()
        for _ in range(reps):
            sparse = oct_.closed()
        t_sparse = time.perf_counter() - t0
        set_sparse_closure(enabled=False)
        t0 = time.perf_counter()
        for _ in range(reps):
            dense = oct_.closed()
        t_dense = time.perf_counter() - t0
        set_sparse_closure(*prev)
        if sparse.empty != dense.empty or not np.array_equal(
            sparse._m(), dense._m()
        ):
            failures.append(f"octagon closure divergence at dim={dim}")
        key = f"octagon/closure/dim={dim}"
        out[key] = {
            "dense_s": round(t_dense, 5),
            "sparse_s": round(t_sparse, 5),
            "speedup": round(t_dense / t_sparse, 2) if t_sparse else None,
        }
        print(
            f"  {key}: dense={t_dense:.4f}s sparse={t_sparse:.4f}s "
            f"({out[key]['speedup']}x)",
            file=sys.stderr,
            flush=True,
        )
    return out, failures


# -- end-to-end ---------------------------------------------------------------


def _table_digest(run) -> str:
    h = hashlib.sha256()
    table = run.result.table
    for nid in sorted(table, key=str):
        h.update(f"{nid}\n{table[nid]!r}\n".encode())
    return h.hexdigest()


def _e2e_workloads(quick: bool):
    sources: list[tuple[str, str, str, str]] = []  # name, source, domain, mode
    examples = sorted(
        (ROOT / "examples" / "c").glob("*.c"),
        key=lambda p: p.stat().st_size,
        reverse=True,
    )
    for path in examples[: 2 if quick else 4]:
        sources.append((f"examples/{path.stem}", path.read_text(), "interval", "sparse"))
    suite = {s.name: s for s in default_suite()}
    scale = 2 if quick else 3
    for name in ["bc-mini"] if quick else ["gzip-mini", "bc-mini"]:
        spec = dataclasses.replace(
            suite[name], recursion_cycle=0, unique_callees=True
        ).scaled(scale)
        sources.append((f"corpus/{name}x{scale}", generate_source(spec), "interval", "sparse"))
    # one relational combo: store backend + sparse closure both in play
    sources.append(
        ("examples/" + examples[0].stem + "/oct", examples[0].read_text(), "octagon", "sparse")
    )
    return sources


def e2e_bench(quick: bool) -> tuple[dict, list[str]]:
    out: dict[str, dict] = {}
    failures: list[str] = []
    for name, source, domain, mode in _e2e_workloads(quick):
        times: dict[str, float] = {}
        digests: dict[str, str] = {}
        for backend in ("scalar", "array"):
            prev = set_store_backend(backend)
            try:
                t0 = time.perf_counter()
                run = analyze(source, domain=domain, mode=mode)
                times[backend] = time.perf_counter() - t0
                digests[backend] = _table_digest(run)
            finally:
                set_store_backend(prev)
        if digests["scalar"] != digests["array"]:
            failures.append(f"{name}: table digests diverge between backends")
        key = f"e2e/{name}/{domain}/{mode}"
        ratio = times["array"] / times["scalar"] if times["scalar"] else None
        out[key] = {
            "scalar_s": round(times["scalar"], 4),
            "array_s": round(times["array"], 4),
            "ratio": round(ratio, 3) if ratio else None,
            "digest": digests["array"][:16],
        }
        print(
            f"  {key}: scalar={times['scalar']:.3f}s array={times['array']:.3f}s "
            f"ratio={out[key]['ratio']}",
            file=sys.stderr,
            flush=True,
        )
    return out, failures


# -- driver -------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--record", action="store_true",
        help="rewrite the committed baseline from this run",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run (smaller states)",
    )
    args = parser.parse_args(argv)

    sizes = [64, 256] if args.quick else [64, 256, 1024]
    reps = 30 if args.quick else 60
    dims = [16, 32] if args.quick else [16, 32, 64]

    print("microbenchmarks:", file=sys.stderr)
    micro = micro_bench(sizes, reps)
    print("octagon closure:", file=sys.stderr)
    octs, oct_failures = octagon_bench(dims, reps)
    print("end-to-end:", file=sys.stderr)
    e2e, e2e_failures = e2e_bench(args.quick)

    results = {**micro, **octs, **e2e}
    failures = oct_failures + e2e_failures

    # gate 1: digest identity was checked above; gate 2: micro speedup floor
    largest = sizes[-1]
    for op in ("join_with", "widen_with"):
        entry = micro[f"micro/{op}/n={largest}"]
        if entry["speedup"] is not None and entry["speedup"] < MICRO_SPEEDUP_FLOOR:
            failures.append(
                f"micro/{op}/n={largest}: speedup {entry['speedup']}x "
                f"below the {MICRO_SPEEDUP_FLOOR}x floor"
            )

    baseline_path = ROOT / "benchmarks" / "baseline_store.json"
    if args.record:
        baseline_path.write_text(
            json.dumps(results, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded baseline to {baseline_path}")
        return 0

    # gate 3: end-to-end array/scalar ratio vs the committed baseline —
    # ratios of same-process runs transfer across machines
    baseline = (
        json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    )
    for key, cur in e2e.items():
        base = baseline.get(key)
        if base is None or base.get("ratio") is None or cur["ratio"] is None:
            continue
        cur["baseline_ratio"] = base["ratio"]
        if cur["ratio"] > base["ratio"] + E2E_TOLERANCE:
            failures.append(
                f"{key}: array/scalar ratio {cur['ratio']} regressed vs "
                f"baseline {base['ratio']} (+{E2E_TOLERANCE} allowed)"
            )

    out_path = ROOT / "BENCH_store.json"
    out_path.write_text(json.dumps(
        {
            "micro_speedup_floor": MICRO_SPEEDUP_FLOOR,
            "e2e_tolerance": E2E_TOLERANCE,
            "results": results,
            "failures": failures,
        },
        indent=1, sort_keys=True,
    ) + "\n")
    print(f"wrote {out_path}")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print("store perf gate: OK (digests identical, speedups within gates)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
