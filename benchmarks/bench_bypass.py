"""Section 5 ablation — the bypass optimization.

"Even when x is not used inside g, [without the optimization] the value of
x is propagated to h only after it is first propagated to g. … This
optimization makes the analysis more sparse, leading to a significant
speed up."

We measure on call-chain-heavy workloads: dependency counts and sparse
fixpoint times with and without the bypass rewriting, plus the two bypass
implementations (per-location closure vs the paper's literal pairwise
rewriting).

    pytest benchmarks/bench_bypass.py --benchmark-only -s
"""

import time

import pytest

from repro.analysis.datadep import (
    bypass_optimization,
    bypass_optimization_naive,
    generate_datadeps,
)
from repro.analysis.defuse import compute_defuse
from repro.analysis.dense import build_interproc_graph
from repro.analysis.sparse import run_sparse
from repro.analysis.worklist import find_widening_points


def _pipeline(prep, bypass):
    return run_sparse(prep.program, prep.pre, bypass=bypass)


@pytest.mark.parametrize("bypass", [True, False], ids=["bypass", "no-bypass"])
def test_sparse_fixpoint(benchmark, prepared_interval, bypass):
    prep = prepared_interval["medium"]
    result = benchmark.pedantic(
        lambda: _pipeline(prep, bypass), rounds=1, iterations=1
    )
    print(
        f"\nbypass={bypass}: deps={result.stats.dep_count} "
        f"iterations={result.stats.iterations} "
        f"fix={result.stats.time_fix:.2f}s"
    )


def test_bypass_improves_fix_time(prepared_interval):
    prep = prepared_interval["large"]
    with_bp = _pipeline(prep, True)
    without = _pipeline(prep, False)
    print(
        f"\nfix time: bypass={with_bp.stats.time_fix:.2f}s "
        f"no-bypass={without.stats.time_fix:.2f}s "
        f"iterations {with_bp.stats.iterations} vs {without.stats.iterations}"
    )
    # the optimized fixpoint must not do more propagation work
    assert with_bp.stats.iterations <= without.stats.iterations * 1.2


def test_closure_vs_naive_rewriting(prepared_interval):
    """Same result, very different construction cost — why the per-location
    closure implementation matters in practice."""
    prep = prepared_interval["small"]
    defuse = compute_defuse(prep.program, prep.pre)
    graph = build_interproc_graph(prep.program, prep.pre.site_callees)
    wps = find_widening_points([prep.program.entry_node().nid], graph.succs)
    raw = generate_datadeps(
        prep.program, prep.pre, defuse, bypass=False, widening_points=wps
    ).deps

    t0 = time.perf_counter()
    fast = bypass_optimization(raw, defuse, keep=wps)
    closure_t = time.perf_counter() - t0

    t0 = time.perf_counter()
    slow = bypass_optimization_naive(raw, defuse, keep=wps)
    naive_t = time.perf_counter() - t0

    print(f"\nclosure={closure_t * 1e3:.1f}ms naive={naive_t * 1e3:.1f}ms "
          f"edges {len(fast)} (naive {len(slow)})")
    assert set(fast.triples()) == set(slow.triples())
