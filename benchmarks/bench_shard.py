"""Sharded-pipeline gate: digest identity across job counts + speedup report.

Runs the largest codegen workload (the ``vim-mini`` analog, whose maxSCC
dominates analysis cost) through the SCC-sharded driver at ``--jobs``
1/2/4 and against the sequential engine, then asserts:

1. **Digest identity (unconditional)** — every sharded table must be
   byte-identical to the sequential fixpoint table under the canonical
   rendering. This is the pipeline's core contract: the priority-ceiling
   scheduler makes the committed pop order *be* the sequential WTO order,
   so parallelism may never change a single bound.
2. **Speedup (multicore only)** — with ≥ 2 CPUs, jobs=4 must beat the
   serial sharded run by ``SPEEDUP_FLOOR``×. On single-CPU machines the
   speculative activations that overlap on real cores serialize instead,
   so the gate is skipped and the honest numbers are recorded anyway.

Usage::

    python benchmarks/bench_shard.py            # full gate (vim-mini)
    python benchmarks/bench_shard.py --quick    # CI-sized (screen-mini)

Emits ``BENCH_shard.json`` next to the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.shards import run_sharded  # noqa: E402
from repro.api import analyze  # noqa: E402
from repro.bench.codegen import default_suite, generate_source  # noqa: E402
from repro.ir.program import build_program  # noqa: E402

#: jobs=4 must beat the serial sharded run by this factor on ≥2 CPUs
SPEEDUP_FLOOR = 1.5

JOB_LEVELS = (1, 2, 4)


def _digest(table: dict) -> str:
    import hashlib

    h = hashlib.sha256()
    for nid in sorted(table):
        h.update(f"{nid}\n{table[nid]!r}\n".encode())
    return h.hexdigest()


def _spec_stats(result) -> str:
    for event in result.diagnostics.events:
        if event.startswith("sharded fixpoint"):
            return event
    return ""


def run(workload: str) -> dict:
    spec = next(s for s in default_suite() if s.name == workload)
    src = generate_source(spec)
    program = build_program(src)

    t0 = time.perf_counter()
    sequential = analyze(src, domain="interval", mode="sparse")
    t_seq = time.perf_counter() - t0
    seq_digest = _digest(sequential.result.table)

    rows = {}
    failures = []
    for jobs in JOB_LEVELS:
        t0 = time.perf_counter()
        result = run_sharded(
            program, domain="interval", mode="sparse", jobs=jobs
        )
        elapsed = time.perf_counter() - t0
        digest = _digest(result.table)
        rows[jobs] = {
            "seconds": round(elapsed, 3),
            "digest": digest[:16],
            "identical_to_sequential": digest == seq_digest,
            "driver": _spec_stats(result),
        }
        if digest != seq_digest:
            failures.append(
                f"jobs={jobs}: sharded table diverged from sequential"
            )
        print(
            f"  jobs={jobs}: {elapsed:7.2f}s  "
            f"{'identical' if digest == seq_digest else 'DIVERGED'}"
        )

    cpus = os.cpu_count() or 1
    speedup = rows[1]["seconds"] / rows[4]["seconds"] if rows[4]["seconds"] else 0.0
    gated = cpus >= 2
    if gated and speedup < SPEEDUP_FLOOR:
        failures.append(
            f"jobs=4 speedup {speedup:.2f}x below floor {SPEEDUP_FLOOR}x "
            f"on {cpus} CPUs"
        )

    return {
        "workload": workload,
        "cpu_count": cpus,
        "sequential_seconds": round(t_seq, 3),
        "sequential_digest": seq_digest[:16],
        "jobs": {str(j): r for j, r in rows.items()},
        "speedup_jobs4_vs_serial_sharded": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_gate_applied": gated,
        "failures": failures,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized run on the screen-mini analog",
    )
    args = parser.parse_args()
    workload = "screen-mini" if args.quick else "vim-mini"

    print(f"shard pipeline gate on {workload} "
          f"(cpus={os.cpu_count()}, quick={args.quick})")
    report = run(workload)

    out = ROOT / "BENCH_shard.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}")
        return 1
    if report["speedup_gate_applied"]:
        print(
            f"shard gate: OK (digests identical, jobs=4 speedup "
            f"{report['speedup_jobs4_vs_serial_sharded']}x)"
        )
    else:
        print(
            "shard gate: OK (digests identical; speedup gate skipped on "
            f"{report['cpu_count']} CPU — recorded "
            f"{report['speedup_jobs4_vs_serial_sharded']}x for reference)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
