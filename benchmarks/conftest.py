"""Shared fixtures for the benchmark suite.

Programs are generated and pre-analyzed once per session; the benchmarks
then time individual analysis phases against them. Sizes are chosen so the
whole suite runs in a few minutes while preserving the paper's comparative
shape (sparse ≫ base ≫ vanilla as programs grow).
"""

from __future__ import annotations

import pytest

from repro.analysis.preanalysis import run_preanalysis
from repro.bench.codegen import WorkloadSpec, generate_source
from repro.ir.program import build_program

#: the Table 2 ladder (scaled-down analogs of gzip … screen)
INTERVAL_SPECS = {
    "small": WorkloadSpec("bench-small", n_functions=6, n_globals=5,
                          recursion_cycle=2, seed=11),
    "medium": WorkloadSpec("bench-medium", n_functions=14, n_globals=10,
                           recursion_cycle=3, seed=13),
    "large": WorkloadSpec("bench-large", n_functions=26, n_globals=14,
                          recursion_cycle=6, global_touch_prob=0.35, seed=15),
}

OCTAGON_SPECS = {
    "small": WorkloadSpec("oct-small", n_functions=4, n_globals=4,
                          stmts_per_function=8, recursion_cycle=0, seed=31),
    "medium": WorkloadSpec("oct-medium", n_functions=8, n_globals=6,
                           stmts_per_function=8, recursion_cycle=2, seed=33),
}


class Prepared:
    """A generated program plus its shared pre-analysis."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.source = generate_source(spec)
        self.program = build_program(self.source)
        self.pre = run_preanalysis(self.program)


@pytest.fixture(scope="session")
def prepared_interval():
    return {name: Prepared(spec) for name, spec in INTERVAL_SPECS.items()}


@pytest.fixture(scope="session")
def prepared_octagon():
    return {name: Prepared(spec) for name, spec in OCTAGON_SPECS.items()}
