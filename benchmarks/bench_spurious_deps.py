"""Section 5 ablation — spurious interprocedural dependencies.

The paper's motivating example: with whole-graph dependency generation,
globals defined before a call to a shared helper ``h`` appear to flow into
*every* other caller of ``h`` ("thousands of global variables … generate
an overwhelming number of spurious dependencies"). Per-procedure generation
with callee summaries avoids them.

We regenerate the effect with a many-globals / shared-helper workload and
count, for each global, how many def→use pairs cross between unrelated
callers. The per-procedure generator (ours) must produce none; we also
show total dependency counts stay proportional to real flows as the number
of callers grows.

    pytest benchmarks/bench_spurious_deps.py --benchmark-only -s
"""

import pytest

from repro.analysis.datadep import generate_datadeps
from repro.analysis.defuse import compute_defuse
from repro.analysis.preanalysis import run_preanalysis
from repro.domains.absloc import VarLoc
from repro.ir.program import build_program


def paper_example(n_pairs: int) -> str:
    """n_pairs copies of the paper's pattern:

        int f_i() { x_i = 0; h(); a_i = x_i; }
    """
    lines = [f"int x{i}; int a{i};" for i in range(n_pairs)]
    lines.append("int h(void) { return 0; }   /* touches no globals */")
    for i in range(n_pairs):
        lines.append(
            f"void f{i}(void) {{ x{i} = {i}; h(); a{i} = x{i}; }}"
        )
    calls = " ".join(f"f{i}();" for i in range(n_pairs))
    lines.append(f"int main(void) {{ {calls} return 0; }}")
    return "\n".join(lines)


def cross_caller_deps(n_pairs: int) -> tuple[int, int]:
    """(total deps, spurious cross-caller deps on the x globals)."""
    program = build_program(paper_example(n_pairs))
    pre = run_preanalysis(program)
    defuse = compute_defuse(program, pre)
    deps = generate_datadeps(program, pre, defuse, bypass=True).deps

    node_proc = {n.nid: n.proc for n in program.nodes()}
    spurious = 0
    for src, dst, loc in deps.triples():
        if not (isinstance(loc, VarLoc) and loc.name.startswith("x")):
            continue
        sp, dp = node_proc[src], node_proc[dst]
        if sp.startswith("f") and dp.startswith("f") and sp != dp:
            spurious += 1
    return len(deps), spurious


@pytest.mark.parametrize("n_pairs", [4, 16, 48])
def test_no_spurious_cross_caller_flow(n_pairs):
    total, spurious = cross_caller_deps(n_pairs)
    print(f"\npairs={n_pairs}: total deps={total} spurious={spurious}")
    assert spurious == 0


def test_dep_count_scales_linearly():
    """Per-procedure generation keeps dependencies proportional to real
    flows; whole-graph generation would grow quadratically here."""
    t1, _ = cross_caller_deps(8)
    t2, _ = cross_caller_deps(32)
    growth = t2 / t1
    print(f"\ndeps grew {growth:.1f}x for a 4x bigger program")
    assert growth < 8  # clearly sub-quadratic


@pytest.mark.parametrize("n_pairs", [16])
def test_generation_time(benchmark, n_pairs):
    program = build_program(paper_example(n_pairs))
    pre = run_preanalysis(program)
    defuse = compute_defuse(program, pre)

    benchmark(
        lambda: generate_datadeps(program, pre, defuse, bypass=True)
    )
