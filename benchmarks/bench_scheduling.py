"""Fixpoint scheduling and value-interning benchmark.

Compares, on scheduling variants of the Table-2 workloads:

* **FIFO vs WTO** worklist order, for the dense (``vanilla``) and sparse
  interval engines — total fixpoint pops must go *down* under WTO and the
  final tables must be identical on every workload;
* **plain vs interned** abstract values (the ``set_interning`` ablation) —
  identical tables, with the join/widen memo hit rate reported.

The workloads are the Table-2 quick suite reshaped to a finite call
structure (``recursion_cycle=0, unique_callees=True``): with recursion
cycles interval widening is order-sensitive (see DESIGN.md §8), so a
table-identity comparison between two schedules is only meaningful where
the widening sequences coincide. Loops — and therefore widening and the
WTO's nested components — remain in every workload.

Usage::

    python benchmarks/bench_scheduling.py --quick   # CI smoke (4 workloads)
    python benchmarks/bench_scheduling.py           # full suite

Emits ``BENCH_scheduling.json`` next to the repo root and exits non-zero
if WTO regresses total iterations vs FIFO on either engine or any table
diverges.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import analyze  # noqa: E402
from repro.bench.codegen import default_suite, generate_source  # noqa: E402
from repro.domains.value import set_interning  # noqa: E402

ENGINES = ("vanilla", "sparse")


def scheduling_specs(quick: bool):
    """Table-2 workloads with the call graph reshaped to a tree (finite
    interprocedural chains — scheduler-independent widening)."""
    suite = {s.name: s for s in default_suite()}
    names = ["gzip-mini", "bc-mini", "tar-mini", "less-mini"]
    if not quick:
        # make-mini is excluded: even tree-shaped, its dense-engine widening
        # sequences differ between the two schedules (both sound; FIFO
        # happens to batch one ascent WTO observes incrementally), so a
        # table-identity gate is not meaningful there — see DESIGN.md §8.
        names += ["wget-mini", "screen-mini", "sendmail-mini"]
    return [
        dataclasses.replace(suite[n], recursion_cycle=0, unique_callees=True)
        for n in names
    ]


def _tables_equal(a, b) -> bool:
    if set(a) != set(b):
        return False
    return all(a[n] == b[n] for n in a)


def _run(source, mode, scheduler):
    t0 = time.perf_counter()
    run = analyze(source, mode=mode, scheduler=scheduler)
    elapsed = time.perf_counter() - t0
    stats = run.scheduler_stats
    return run, {
        "pops": stats.pops,
        "revisits": stats.revisits,
        "max_revisits": stats.max_revisits,
        "inversions": stats.inversions,
        "widening_points": stats.widening_points,
        "join_cache_hit_rate": round(stats.join_cache_hit_rate, 4),
        "seconds": round(elapsed, 3),
    }


def bench_schedulers(specs):
    failures = []
    workloads = []
    totals = {m: {"wto": 0, "fifo": 0} for m in ENGINES}
    for spec in specs:
        source = generate_source(spec)
        entry = {"name": spec.name, "engines": {}}
        for mode in ENGINES:
            wto_run, wto_stats = _run(source, mode, "wto")
            fifo_run, fifo_stats = _run(source, mode, "fifo")
            identical = _tables_equal(wto_run.result.table, fifo_run.result.table)
            if not identical:
                failures.append(f"{spec.name}/{mode}: tables diverge")
            totals[mode]["wto"] += wto_stats["pops"]
            totals[mode]["fifo"] += fifo_stats["pops"]
            entry["engines"][mode] = {
                "wto": wto_stats,
                "fifo": fifo_stats,
                "identical_tables": identical,
            }
            print(
                f"  {spec.name:<12} {mode:<8} pops wto={wto_stats['pops']:>5} "
                f"fifo={fifo_stats['pops']:>5} "
                f"identical={'yes' if identical else 'NO'}"
            )
        workloads.append(entry)
    for mode in ENGINES:
        w, f = totals[mode]["wto"], totals[mode]["fifo"]
        totals[mode]["reduction"] = round(1 - w / f, 4) if f else 0.0
        if w >= f:
            failures.append(
                f"{mode}: WTO regressed iterations ({w} vs FIFO {f})"
            )
        print(f"TOTAL {mode:<8} wto={w} fifo={f} "
              f"reduction={100 * totals[mode]['reduction']:.1f}%")
    return workloads, totals, failures


def bench_interning(specs):
    """Plain vs hash-consed values, sparse engine (the hottest join path)."""
    failures = []
    out = []
    for spec in specs:
        source = generate_source(spec)
        set_interning(True)
        interned_run, interned_stats = _run(source, "sparse", "wto")
        set_interning(False)
        plain_run, plain_stats = _run(source, "sparse", "wto")
        set_interning(True)
        identical = _tables_equal(
            interned_run.result.table, plain_run.result.table
        )
        if not identical:
            failures.append(f"{spec.name}: interning changed the table")
        out.append(
            {
                "name": spec.name,
                "interned_seconds": interned_stats["seconds"],
                "plain_seconds": plain_stats["seconds"],
                "join_cache_hit_rate": interned_stats["join_cache_hit_rate"],
                "identical_tables": identical,
            }
        )
        print(
            f"  {spec.name:<12} interned={interned_stats['seconds']:.3f}s "
            f"plain={plain_stats['seconds']:.3f}s "
            f"hit-rate={interned_stats['join_cache_hit_rate']:.0%} "
            f"identical={'yes' if identical else 'NO'}"
        )
    return out, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: first 4 workloads only")
    parser.add_argument("--output", default=None,
                        help="JSON output path (default: BENCH_scheduling.json "
                        "at the repo root)")
    args = parser.parse_args(argv)

    specs = scheduling_specs(args.quick)
    print(f"== scheduling: FIFO vs WTO ({len(specs)} workloads) ==")
    workloads, totals, failures = bench_schedulers(specs)
    print("== interning: plain vs hash-consed ==")
    interning, int_failures = bench_interning(specs)
    failures += int_failures

    payload = {
        "bench": "scheduling",
        "quick": args.quick,
        "workloads": workloads,
        "totals": totals,
        "interning": interning,
        "failures": failures,
    }
    out_path = Path(
        args.output
        or Path(__file__).resolve().parent.parent / "BENCH_scheduling.json"
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    if failures:
        print("FAILURES:", *failures, sep="\n  ")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
