"""Legacy setup script.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs fail; this setup.py lets ``pip install -e .`` use
the classic ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Sparse global abstract interpretation for C-like languages "
        "(PLDI 2012 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
