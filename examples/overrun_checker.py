#!/usr/bin/env python3
"""Buffer-overrun detection — SPARROW's flagship client analysis.

The interval analysis tracks every pointer as a set of array blocks
⟨base, offset, size⟩; the checker flags accesses whose offset may fall
outside [0, size). This example analyzes a small "network message parser"
with three planted bugs and one subtle safe pattern.

Run:  python examples/overrun_checker.py
"""

from repro import analyze
from repro.checkers.overrun import Verdict

SOURCE = """
/* A toy packet parser with planted buffer bugs. */

char header[8];
int payload[64];
int stats[4];

void read_header(char *src, int n) {
  int i;
  for (i = 0; i < n; i++) {
    header[i] = src[i];            /* BUG 1: n may exceed 8 */
  }
}

void account(int kind) {
  stats[kind] = stats[kind] + 1;   /* BUG 2: kind unchecked */
}

void account_checked(int kind) {
  if (kind >= 0 && kind < 4) {
    stats[kind] = stats[kind] + 1; /* safe: guarded */
  }
}

int checksum(void) {
  int i; int sum = 0;
  for (i = 0; i <= 64; i++) {      /* BUG 3: off-by-one */
    sum = sum + payload[i];
  }
  return sum;
}

int main(void) {
  char raw[16];
  int n = packet_length();          /* unknown external input */
  read_header(raw, n);
  account(n);
  account_checked(n);
  return checksum();
}
"""


def main() -> None:
    run = analyze(SOURCE, domain="interval", mode="sparse")
    reports = run.overrun_reports()

    by_verdict = {v: [] for v in Verdict}
    for r in reports:
        by_verdict[r.verdict].append(r)

    print(f"checked {len(reports)} array accesses\n")
    print("== ALARMS (potential overruns) ==")
    seen = set()
    for r in by_verdict[Verdict.ALARM]:
        key = (r.line, r.access)
        if key in seen:
            continue
        seen.add(key)
        print(f"  line {r.line:3} {r.proc:18} {r.access:28} "
              f"offset={r.offset} size={r.size}")

    print("\n== proven SAFE ==")
    seen = set()
    for r in by_verdict[Verdict.SAFE]:
        key = (r.line, r.access)
        if key in seen:
            continue
        seen.add(key)
        print(f"  line {r.line:3} {r.proc:18} {r.access:28} "
              f"offset={r.offset} size={r.size}")

    alarm_lines = {r.line for r in by_verdict[Verdict.ALARM]}
    safe_only_lines = {
        r.line for r in by_verdict[Verdict.SAFE]
    } - alarm_lines

    print("\nsummary:")
    print(f"  alarm lines: {sorted(alarm_lines)}")
    print(f"  safe lines : {sorted(safe_only_lines)}")
    # The guarded variant must be proven safe while the unguarded one alarms.
    guarded = [r for r in reports if r.proc == "account_checked"]
    unguarded = [r for r in reports if r.proc == "account"]
    assert any(r.verdict is Verdict.SAFE for r in guarded)
    assert any(r.verdict is Verdict.ALARM for r in unguarded)
    print("\nthe guard `0 <= kind < 4` was recognized: "
          "account_checked is safe, account alarms ✓")


if __name__ == "__main__":
    main()
