/* Expression-stack arithmetic in the style of bc: carries a K&R-style
 * function definition the grammar does not accept. Recovery skips past
 * it and every ANSI-style function is still analyzed. */
#include "corpus_defs.h"

int stack[BUFSZ];
int sp;

int push(int v) {
  if (sp < BUFSZ) {
    stack[sp] = v;
    sp = sp + 1;
    return 0;
  }
  return -1;
}

int pop(void) {
  if (sp > 0) {
    sp = sp - 1;
    return stack[sp];
  }
  return 0;
}

/* Old-style definition, straight out of 1980s sources. */
int bc_add(a, b)
int a;
int b;
{
  return a + b;
}

int eval_sum(int n) {
  int i;
  int acc = 0;
  sp = 0;
  for (i = 0; i < n; i++) {
    push(i);
  }
  for (i = 0; i < n; i++) {
    acc = acc + pop();
  }
  return acc;
}

int main(void) {
  exit_status = eval_sum(10);
  return MAX(exit_status, 0);
}
