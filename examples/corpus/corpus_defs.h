/* Shared definitions for the recovery corpus (included with
 * #include "corpus_defs.h" — exercises quoted-include resolution). */
#ifndef CORPUS_DEFS_H
#define CORPUS_DEFS_H

#define BUFSZ 64
#define NAMELEN 14
#define MAX(a, b) ((a) > (b) ? (a) : (b))
#define MIN(a, b) ((a) < (b) ? (a) : (b))

int exit_status;

#endif
