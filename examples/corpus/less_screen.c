/* Screen-repaint arithmetic in the style of less: one function body uses
 * a compound literal the grammar rejects, so that function is quarantined
 * behind a havoc stub while the rest of the file analyzes normally. */
#include "corpus_defs.h"

int sc_width;
int sc_height;
int pos_table[BUFSZ];

int adjust(int lines) {
  int clamped = MIN(lines, BUFSZ - 1);
  return MAX(clamped, 0);
}

/* Unparseable body: compound literals are outside the subset. */
int lower_left(void) {
  int *origin = (int[2]){0, 0};
  sc_height = origin[1];
  return origin[0];
}

int repaint(int from, int to) {
  int i;
  int painted = 0;
  int lo = adjust(from);
  int hi = adjust(to);
  for (i = lo; i < hi; i++) {
    pos_table[i] = i * sc_width;
    painted = painted + 1;
  }
  return painted;
}

int main(void) {
  sc_width = 80;
  sc_height = 24;
  exit_status = repaint(0, sc_height);
  return exit_status;
}
