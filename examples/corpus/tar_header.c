/* Header-block checksumming in the style of tar: the flag struct uses
 * bit-fields, which the grammar rejects — the declaration is skipped and
 * the functions that avoid it still analyze. */
#include "corpus_defs.h"

struct posix_flags {
  unsigned int readable : 1;
  unsigned int writable : 1;
  unsigned int exec : 1;
};

int block[BUFSZ];

int checksum(int n) {
  int i;
  int sum = 0;
  for (i = 0; i < n && i < BUFSZ; i++) {
    sum = sum + block[i];
  }
  return sum;
}

int verify(int expected, int n) {
  int got = checksum(n);
  if (got == expected) {
    return 0;
  }
  return 1;
}

int main(void) {
  int i;
  for (i = 0; i < NAMELEN; i++) {
    block[i] = i + 1;
  }
  exit_status = verify(checksum(NAMELEN), NAMELEN);
  return exit_status;
}
