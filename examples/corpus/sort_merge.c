/* Merge pass in the style of sort: clean except for an unterminated
 * string literal in a stray debug line — the lexer closes it at end of
 * line and every function is still analyzed. */
#include "corpus_defs.h"

#define RUNS 4

int runs[RUNS];
int out[BUFSZ];
char *tag = "merge pass;

int pick_min(int a, int b) {
  return MIN(a, b);
}

int merge_two(int lo, int hi) {
  int i = lo;
  int j = hi;
  int k = 0;
  while (i < hi && j < BUFSZ && k < BUFSZ) {
    out[k] = pick_min(i, j);
    i = i + 1;
    j = j + 1;
    k = k + 1;
  }
  return k;
}

int main(void) {
  int r;
  for (r = 0; r < RUNS; r++) {
    runs[r] = r * 16;
  }
  exit_status = merge_two(runs[0], runs[1]);
  return exit_status;
}
