/* Word/line counting in the style of wc — but the file is poisoned: a
 * botched merge left conflict markers behind. The lexer recovers past
 * them, the mangled function is quarantined, and the clean counters are
 * still analyzed end to end. */
#include "corpus_defs.h"

int lines;
int words;
int chars;

int is_space(int c) {
  if (c == 32 || c == 9 || c == 10) {
    return 1;
  }
  return 0;
}

int count_buffer(int n) {
  int i;
  int in_word = 0;
  for (i = 0; i < n; i++) {
    chars = chars + 1;
    if (is_space(i % 11)) {
      in_word = 0;
    } else if (in_word == 0) {
      in_word = 1;
      words = words + 1;
    }
  }
  return words;
}

int report_totals(int fmt) {
<<<<<<< HEAD
  int total = lines + words;
=======
  int total = chars + words;
>>>>>>> feature/recount
  return total * fmt;
}

int main(void) {
  lines = 0;
  words = 0;
  chars = 0;
  exit_status = count_buffer(BUFSZ);
  return exit_status;
}
