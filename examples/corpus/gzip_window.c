/* Sliding-window bookkeeping in the style of gzip's deflate.c: a clean
 * file — parses fully, no diagnostics, outcome "ok". */
#include <stdio.h>
#include "corpus_defs.h"

#define WSIZE 32
#define HSIZE 16

int window[WSIZE];
int head[HSIZE];
int strstart;

int update_hash(int h, int c) {
  int v = (h * 4 + c) % HSIZE;
  if (v < 0) {
    v = -v;
  }
  return v;
}

int insert_string(int h, int pos) {
  int prev;
  if (h < 0 || h >= HSIZE) {
    return -1;
  }
  prev = head[h];
  head[h] = pos;
  return prev;
}

int longest_match(int cur) {
  int len = 0;
  int i;
  for (i = 0; i < WSIZE; i++) {
    if (window[i] == window[cur % WSIZE]) {
      len = len + 1;
    }
  }
  return MIN(len, WSIZE - 1);
}

int main(void) {
  int h = 0;
  int i;
  strstart = 0;
  for (i = 0; i < WSIZE; i++) {
    window[i] = i * 7 % 31;
  }
  for (i = 0; i < WSIZE; i++) {
    h = update_hash(h, window[i]);
    insert_string(h, i);
    strstart = strstart + 1;
  }
  exit_status = longest_match(3);
  return exit_status;
}
