#!/usr/bin/env python3
"""Relational analysis with octagons (Section 4).

Octagons track constraints of the form ±x ± y ≤ c between variables of the
same *pack*. This example shows two properties the interval domain cannot
prove but the packed octagon analysis can:

1. a loop that keeps ``i + j == 10`` invariant,
2. a bound that transfers through ``y = x + 5`` back onto ``x``.

Run:  python examples/octagon_relational.py
"""

from repro import analyze
from repro.analysis.relational import RelContext
from repro.domains.absloc import VarLoc

SOURCE = """
int main(void) {
  int i = 0;
  int j = 10;
  int x = read_sensor();   /* unknown external input */
  int y = 0;
  int safe = 0;

  while (i < 10) {   /* invariant: i + j == 10 */
    i = i + 1;
    j = j - 1;
  }

  if (x >= 0 && x <= 100) {
    y = x + 5;
    if (y <= 50) {
      safe = x;      /* here x <= 45 — provable only relationally */
    }
  }
  return safe + j;
}
"""


def node_id(program, fragment):
    for n in program.cfgs["main"].nodes:
        if fragment in str(n.cmd):
            return n.nid
    raise SystemExit(f"no node {fragment!r}")


def main() -> None:
    oct_run = analyze(SOURCE, domain="octagon", mode="sparse")
    itv_run = analyze(SOURCE, domain="interval", mode="sparse")

    program = oct_run.program
    ctx = RelContext(program, oct_run.pre, oct_run.result.packs)

    print("== variable packs (syntax-directed, Section 6.2) ==")
    for pack in oct_run.result.packs.packs:
        if len(pack) > 1:
            print(f"  {pack}")

    # note: each analyze() call lowers its own Program, so node ids must be
    # looked up per run
    probe = node_id(program, "safe := main::x")
    probe_itv = node_id(itv_run.program, "safe := main::x")
    x_oct = oct_run.result.interval_of(probe, VarLoc("x", "main"), ctx)
    x_itv = itv_run.value_at(probe_itv, VarLoc("x", "main")).itv

    print("\n== property 2: x at `safe = x` (inside y <= 50) ==")
    print(f"  interval domain : x ∈ {x_itv}")
    print(f"  octagon domain  : x ∈ {x_oct}")
    assert x_oct.hi is not None and x_oct.hi <= 45
    assert x_itv.hi is None or x_itv.hi > 45
    print("  the octagon propagated y = x + 5 ∧ y ≤ 50 ⟹ x ≤ 45 ✓")

    probe_j = node_id(program, "return (main::safe + main::j)")
    probe_j_itv = node_id(itv_run.program, "return (main::safe + main::j)")
    j_oct = oct_run.result.interval_of(probe_j, VarLoc("j", "main"), ctx)
    j_itv = itv_run.value_at(probe_j_itv, VarLoc("j", "main")).itv
    print("\n== property 1: j after the i+j==10 loop ==")
    print(f"  interval domain : j ∈ {j_itv}")
    print(f"  octagon domain  : j ∈ {j_oct}")
    if (j_oct.hi is not None) and (j_itv.hi is None or j_itv.hi > j_oct.hi):
        print("  the octagon kept the i/j relation through widening ✓")
    else:
        print("  (both domains widened here — relational gain shows at "
              "the refinement point above)")


if __name__ == "__main__":
    main()
