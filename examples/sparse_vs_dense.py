#!/usr/bin/env python3
"""The headline experiment, in miniature: sparse vs dense analysis cost.

Generates a family of synthetic programs of growing size (the Table 2
workload) and runs all three interval analyzers on each:

* ``vanilla`` — whole states propagated along every control-flow edge,
* ``base``    — + access-based localization at procedure boundaries,
* ``sparse``  — values propagated along data dependencies only.

Also verifies Lemma 2 on the fly: the sparse result equals the dense one
on every location it defines (exactly, in no-widening mode).

Run:  python examples/sparse_vs_dense.py
"""

import time

from repro.analysis.dense import run_dense
from repro.analysis.preanalysis import run_preanalysis
from repro.analysis.sparse import run_sparse
from repro.bench.codegen import WorkloadSpec, generate_source
from repro.ir.program import build_program


def measure(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def main() -> None:
    print(f"{'program':>10} {'LOC':>5} {'nodes':>6} "
          f"{'vanilla':>9} {'base':>9} {'sparse':>9} {'speedup':>8}  sparsity")
    print("-" * 78)

    for n_functions in (6, 12, 20, 32):
        spec = WorkloadSpec(
            name=f"gen-{n_functions}",
            n_functions=n_functions,
            n_globals=4 + n_functions // 2,
            recursion_cycle=max(2, n_functions // 8),
            seed=7,
        )
        source = generate_source(spec)
        program = build_program(source)
        pre = run_preanalysis(program)

        t_vanilla, _ = measure(lambda: run_dense(program, pre))
        t_base, _ = measure(lambda: run_dense(program, pre, localize=True))
        t_sparse, sparse = measure(lambda: run_sparse(program, pre))

        d, u = sparse.defuse.average_sizes()
        speedup = t_vanilla / t_sparse if t_sparse > 0 else float("inf")
        print(f"{spec.name:>10} {source.count(chr(10)):>5} "
              f"{len(program.nodes()):>6} "
              f"{t_vanilla:>8.2f}s {t_base:>8.2f}s {t_sparse:>8.2f}s "
              f"{speedup:>7.1f}x  D̂={d:.1f} Û={u:.1f}")

    print("\n== Lemma 2 check (exact mode: non-strict, no widening) ==")
    spec = WorkloadSpec(
        name="lemma",
        n_functions=6,
        n_globals=4,
        loops_per_function=0,
        recursion_cycle=0,
        unique_callees=True,
        seed=3,
    )
    program = build_program(generate_source(spec))
    pre = run_preanalysis(program)
    dense = run_dense(program, pre, strict=False, widen=False)
    sparse = run_sparse(program, pre, strict=False, widen=False)
    from repro.domains.value import BOT

    checked = mismatches = 0
    for nid in sorted(set(dense.table) | set(sparse.table)):
        for loc in sparse.defuse.d(nid):
            ds, ss = dense.table.get(nid), sparse.table.get(nid)
            dv = ds.get(loc) if ds is not None else BOT
            sv = ss.get(loc) if ss is not None else BOT
            checked += 1
            if dv != sv:
                mismatches += 1
    print(f"compared {checked} (control point, location) pairs: "
          f"{mismatches} mismatches")
    assert mismatches == 0
    print("sparse ≡ dense on every defined location ✓  (Lemma 2)")


if __name__ == "__main__":
    main()
