/* Two sequential loop phases over shared globals. */
int lo;
int hi;
int main(void) {
  int i; int k = 0;
  for (i = 0; i < 40; i++) { k = k + 2; lo = k; }
  for (i = 0; i < 40; i++) { k = k - 1; hi = k; }
  return k;
}
