/* Array writes with a guarded index: the overrun checker stays silent. */
int buf[16];
int main(void) {
  int i; int s = 0;
  for (i = 0; i < 16; i++) {
    buf[i] = i + 1;
    s = s + buf[i];
  }
  return s;
}
