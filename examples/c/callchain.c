/* A small call chain: interprocedural dependency edges and return-site
 * rebinding keep every engine mode busy. */
int depth;
int step(int x) {
  int r = x + 1;
  depth = r;
  return r;
}
int twice(int x) {
  int a = step(x);
  int b = step(a);
  return b;
}
int main(void) {
  int i; int v = 0;
  for (i = 0; i < 30; i++) {
    v = twice(v);
  }
  return v;
}
