/* Nested counting loops: enough widening/narrowing traffic to exercise
 * periodic checkpoints in the batch driver. */
int total;
int main(void) {
  int i; int j; int acc = 0;
  for (i = 0; i < 50; i++) {
    for (j = 0; j < 20; j++) {
      acc = acc + j;
    }
    total = acc;
  }
  return acc;
}
