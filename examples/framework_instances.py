#!/usr/bin/env python3
"""Existing sparse analyses as instances of the framework (Section 3.2).

The paper shows the semi-sparse analysis of Hardekopf & Lin (POPL 2009) is
a *restricted instance*: run the same pipeline with a pre-analysis that
maps every address-taken variable to ⊤ points-to information. This example
runs both instances on a program with address-taken pointers and compares
the dependency structure and final precision.

Run:  python examples/framework_instances.py
"""

from repro.analysis.instances import (
    address_taken_variables,
    compare_instances,
)
from repro.domains.absloc import VarLoc
from repro.ir.pretty import sparsity_report
from repro.ir.program import build_program

SOURCE = """
int config;          /* top-level: address never taken   */
int cache;           /* address-taken via &cache         */
int *slot;           /* address-taken pointer: &slot     */
int **indirect;

void install(void) {
  indirect = &slot;        /* takes slot's address */
  *indirect = &cache;      /* slot = &cache, through the indirection */
}

int lookup(int key) {
  config = key;            /* top-level flow stays precise either way */
  *slot = key * 2;         /* through the address-taken pointer */
  return cache + config;
}

int main(void) {
  install();
  return lookup(21);
}
"""


def main() -> None:
    program = build_program(SOURCE)

    taken = address_taken_variables(program)
    print("address-taken variables (semi-sparse demotes these):")
    for loc in sorted(taken, key=str):
        print(f"  {loc}")

    cmp = compare_instances(program)

    print("\n== dependency structure ==")
    print(f"  full-sparse instance : {cmp.full_deps} dependencies, "
          f"avg |D̂|={cmp.full_avg_d:.2f} |Û|={cmp.full_avg_u:.2f}")
    print(f"  semi-sparse instance : {cmp.semi_deps} dependencies, "
          f"avg |D̂|={cmp.semi_avg_d:.2f} |Û|={cmp.semi_avg_u:.2f}")
    blowup = cmp.semi_deps / max(cmp.full_deps, 1)
    print(f"  → the coarse instance carries {blowup:.1f}× the dependencies")

    print("\n== per-procedure sparsity (full-sparse) ==")
    print(sparsity_report(cmp.full.defuse, program))
    print("\n== per-procedure sparsity (semi-sparse) ==")
    print(sparsity_report(cmp.semi.defuse, program))

    # Both instances remain sound — same final value for the top-level var.
    exit_nid = program.cfgs["lookup"].exit.nid

    def value(result, loc):
        for nid in (exit_nid, *result.graph.preds.get(exit_nid, ())):
            st = result.table.get(nid)
            if st is not None and loc in st:
                return st.get(loc)
        return None

    full_cfg = value(cmp.full, VarLoc("config"))
    semi_cfg = value(cmp.semi, VarLoc("config"))
    print(f"\nconfig at lookup's return: full={full_cfg} semi={semi_cfg}")
    print("\nsame engine, same program — only the D̂/Û approximation "
          "changed. That is the framework knob the paper generalizes.")


if __name__ == "__main__":
    main()
