#!/usr/bin/env python3
"""Quickstart: analyze a C program with the sparse interval analysis.

Run:  python examples/quickstart.py
"""

from repro import analyze

SOURCE = """
int total;

int clamp(int v, int lo, int hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

int main(void) {
  int i;
  total = 0;
  for (i = 0; i < 100; i++) {
    total = total + clamp(i, 10, 20);
  }
  return total;
}
"""


def main() -> None:
    # One call: parse → lower to CFGs → flow-insensitive pre-analysis →
    # semantic def/use sets → data dependencies → sparse fixpoint.
    # A couple of narrowing passes recover loop bounds after widening.
    run = analyze(SOURCE, domain="interval", mode="sparse", narrowing_passes=2)

    print("== value queries ==")
    # clamp's return value is provably within [10, 20]:
    clamp_exit = run.program.cfgs["clamp"].exit.nid
    from repro.domains.absloc import RetLoc

    ret = run.value_at(clamp_exit, RetLoc("clamp"))
    print(f"clamp() returns      : {ret.itv}")

    # the loop counter is bounded by its condition:
    print(f"i at main's exit     : {run.interval_at_exit('main', 'i')}")
    print(f"total at main's exit : {run.interval_at_exit('main', 'total')}")

    print("\n== sparse-analysis internals ==")
    stats = run.result.stats
    print(f"control points        : {len(run.program.nodes())}")
    print(f"data dependencies     : {stats.dep_count} "
          f"(before bypass optimization: {stats.raw_dep_count})")
    d, u = run.result.defuse.average_sizes()
    print(f"avg |D̂(c)| / |Û(c)|  : {d:.2f} / {u:.2f}   "
          "(the sparsity the paper exploits)")
    print(f"fixpoint iterations   : {stats.iterations}")

    print("\n== cross-check against a real execution ==")
    from repro.ir.interp import Interpreter

    interp = Interpreter(run.program, fuel=200_000)
    concrete = interp.run()
    print(f"concrete main() result: {concrete}")
    abstract = run.value_at(
        run.program.cfgs["main"].exit.nid, RetLoc("main")
    ).itv
    print(f"abstract main() result: {abstract}")
    assert abstract.contains(concrete), "soundness!"
    print("the abstract result soundly covers the concrete one ✓")


if __name__ == "__main__":
    main()
