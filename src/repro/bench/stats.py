"""Program characteristics — the columns of Table 1.

LOC, Functions, Statements, Blocks, maxSCC (largest call-graph strongly
connected component) and AbsLocs (abstract locations materialized by the
interval analysis), computed for any source/Program pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.defuse import compute_defuse
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.ir.callgraph import build_callgraph
from repro.ir.cfg import ProcCFG
from repro.ir.program import Program, build_program


@dataclass
class ProgramStats:
    """One Table 1 row."""

    name: str
    loc: int
    functions: int
    statements: int
    blocks: int
    max_scc: int
    abslocs: int

    def row(self) -> tuple:
        return (
            self.name,
            self.loc,
            self.functions,
            self.statements,
            self.blocks,
            self.max_scc,
            self.abslocs,
        )


def count_basic_blocks(cfg: ProcCFG) -> int:
    """Number of maximal straight-line sequences — a node starts a block
    when it is the entry, a join (≥2 preds), or the successor of a branch."""
    leaders: set[int] = set()
    if cfg.entry is not None:
        leaders.add(cfg.entry.nid)
    for node in cfg.nodes:
        preds = cfg.preds.get(node.nid, [])
        if len(preds) >= 2:
            leaders.add(node.nid)
        succs = cfg.succs.get(node.nid, [])
        if len(succs) >= 2:
            leaders.update(succs)
    return max(len(leaders), 1 if cfg.nodes else 0)


def compute_stats(
    name: str,
    source: str,
    program: Program | None = None,
    pre: PreAnalysis | None = None,
) -> ProgramStats:
    """Compute the Table 1 characteristics of one benchmark program."""
    if program is None:
        program = build_program(source)
    if pre is None:
        pre = run_preanalysis(program)
    defuse = compute_defuse(program, pre)

    callgraph = build_callgraph(
        program, resolve=lambda node: pre.site_callees.get(node.nid, ())
    )
    abslocs: set = set(pre.state.locations())
    for locs in defuse.defs.values():
        abslocs.update(locs)
    for locs in defuse.uses.values():
        abslocs.update(locs)

    return ProgramStats(
        name=name,
        loc=source.count("\n"),
        functions=program.num_functions(),
        statements=program.num_statements(),
        blocks=sum(count_basic_blocks(cfg) for cfg in program.cfgs.values()),
        max_scc=callgraph.max_scc_size(),
        abslocs=len(abslocs),
    )
