"""Experiment harness — regenerates the paper's tables.

* ``table1`` — benchmark characteristics (LOC, Functions, Statements,
  Blocks, maxSCC, AbsLocs);
* ``table2`` — interval analysis: ``vanilla`` vs ``base`` (access-based
  localization) vs ``sparse``, with time, peak memory, Dep/Fix split,
  speedups, memory savings and average |D̂(c)|/|Û(c)|;
* ``table3`` — the same comparison for the octagon analyses.

Like the paper's 24-hour limit, analyses get an iteration budget (and the
dense analyzers a size threshold); runs beyond it are reported as ``∞``
and the derived speedups as ``N/A``. Memory is modelled deterministically
from the retained data structures (see ``_estimate_memory_mb``).

Run from the command line::

    python -m repro.bench.harness table1
    python -m repro.bench.harness table2 [--quick]
    python -m repro.bench.harness table3 [--quick]
    python -m repro.bench.harness all --quick

``--json OUT`` additionally writes the raw rows (times, memory, per-phase
breakdowns) as JSON; the write is atomic, so a killed harness never leaves
a truncated results file behind.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from repro.analysis.dense import run_dense
from repro.analysis.preanalysis import run_preanalysis
from repro.analysis.relational import run_rel_dense, run_rel_sparse
from repro.analysis.sparse import run_sparse
from repro.analysis.worklist import AnalysisBudgetExceeded
from repro.bench.codegen import (
    WorkloadSpec,
    default_suite,
    generate_source,
    octagon_suite,
)
from repro.bench.stats import compute_stats
from repro.ir.program import build_program
from repro.telemetry import Telemetry, phase_report

#: iteration budgets, per analysis — the "24h timeout" analog. Vanilla gets
#: the same budget as the others; it just burns it much faster.
DEFAULT_BUDGET = 400_000
QUICK_BUDGET = 25_000


@dataclass
class Measurement:
    """One analyzer's run on one program."""

    time_s: float | None = None  # None = budget exceeded (paper's ∞)
    peak_mb: float | None = None
    extra: dict = field(default_factory=dict)

    @property
    def timed_out(self) -> bool:
        return self.time_s is None

    def phase(self, name: str, default: float = 0.0) -> float:
        """Wall seconds the telemetry registry recorded for one phase."""
        phases = self.extra.get("phases", {})
        return phases.get(name, {}).get("wall_s", default)


#: bytes per abstract-state entry in the memory model (dict slot + AbsValue)
_ENTRY_BYTES = 200


def _estimate_memory_mb(result) -> float:
    """Deterministic memory model: total state entries retained by the
    fixpoint table (the dominant allocation), plus dependency storage.

    tracemalloc would slow the dense analyses several-fold and measure the
    Python allocator rather than the representation the paper compares, so
    the harness models memory from the data-structure sizes instead.
    """
    entries = sum(len(state) for state in result.table.values())
    total = entries * _ENTRY_BYTES
    deps = getattr(result, "deps", None)
    if deps is not None:
        total += len(deps) * 80  # triple + two index slots
    return total / 1e6


def _measure(fn) -> Measurement:
    """Run one analyzer under a fresh telemetry registry.

    ``fn`` receives the registry and forwards it to the analysis; the
    per-phase wall-clock breakdown (the paper's Pre/Dep/Fix columns) then
    comes from one consistent source instead of per-harness timers. Memory
    stays on the deterministic data-structure model (tracemalloc would
    slow dense runs severalfold and measure the Python allocator instead
    of the representation the paper compares).
    """
    tel = Telemetry(enabled=True)
    start = time.perf_counter()
    try:
        result = fn(tel)
    except AnalysisBudgetExceeded:
        return Measurement(None, None)
    elapsed = time.perf_counter() - start
    m = Measurement(elapsed, _estimate_memory_mb(result))
    m.extra["result"] = result
    m.extra["phases"] = phase_report(tel).as_dict()["phases"]
    return m


def _fmt_time(m: Measurement) -> str:
    return "∞" if m.timed_out else f"{m.time_s:8.2f}"

def _fmt_mem(m: Measurement) -> str:
    return "N/A" if m.timed_out else f"{m.peak_mb:7.1f}"


def _speedup(slow: Measurement, fast: Measurement) -> str:
    if slow.timed_out or fast.timed_out or fast.time_s == 0:
        return "N/A"
    return f"{slow.time_s / fast.time_s:5.1f}x"


def _mem_saving(big: Measurement, small: Measurement) -> str:
    if big.timed_out or small.timed_out or not big.peak_mb:
        return "N/A"
    return f"{100 * (1 - small.peak_mb / big.peak_mb):4.0f}%"


# --------------------------------------------------------------------------
# Table 1
# --------------------------------------------------------------------------


def table1(specs: list[WorkloadSpec] | None = None) -> list[tuple]:
    """Benchmark characteristics (Table 1)."""
    specs = specs or default_suite()
    rows = []
    for spec in specs:
        source = generate_source(spec)
        stats = compute_stats(spec.name, source)
        rows.append(stats.row())
    return rows


def print_table1(specs: list[WorkloadSpec] | None = None) -> None:
    header = ("Program", "LOC", "Functions", "Statements", "Blocks", "maxSCC", "AbsLocs")
    rows = table1(specs)
    _print_rows(header, rows)


# --------------------------------------------------------------------------
# Table 2 — interval domain
# --------------------------------------------------------------------------


def table2(
    specs: list[WorkloadSpec] | None = None,
    budget: int = DEFAULT_BUDGET,
    skip_vanilla_above: int = 1_600,
    skip_base_above: int = 2_600,
) -> list[dict]:
    """Interval analysis comparison (Table 2). Returns one dict per
    program with the paper's columns.

    Mirroring the paper's 24-hour timeout pattern (vanilla gives out first,
    then base, sparse survives everywhere), the dense analyzers are marked
    ∞ beyond a size threshold instead of burning hours proving it.
    """
    specs = specs or default_suite()
    rows: list[dict] = []
    for spec in specs:
        source = generate_source(spec)
        program = build_program(source)
        pre = run_preanalysis(program)
        n_nodes = program.num_statements()

        if n_nodes <= skip_vanilla_above:
            vanilla = _measure(
                lambda tel: run_dense(
                    program, pre, max_iterations=budget, telemetry=tel
                )
            )
        else:
            vanilla = Measurement(None, None)
        if n_nodes <= skip_base_above:
            base = _measure(
                lambda tel: run_dense(
                    program, pre, localize=True, max_iterations=budget,
                    telemetry=tel,
                )
            )
        else:
            base = Measurement(None, None)
        sparse = _measure(
            lambda tel: run_sparse(
                program, pre, max_iterations=budget, telemetry=tel
            )
        )

        row = {
            "program": spec.name,
            "loc": source.count("\n"),
            "vanilla": vanilla,
            "base": base,
            "sparse": sparse,
        }
        if not sparse.timed_out:
            res = sparse.extra["result"]
            d, u = res.defuse.average_sizes()
            # Phase columns come from the telemetry registry (time_pre is
            # 0 here — the shared pre-analysis ran outside the measured
            # region, matching the paper's per-analyzer accounting).
            row["dep_s"] = res.stats.time_pre + sparse.phase(
                "dep-gen", res.stats.time_dep
            )
            row["fix_s"] = sparse.phase("fixpoint", res.stats.time_fix)
            row["avg_d"] = d
            row["avg_u"] = u
            row["deps"] = res.stats.dep_count
        rows.append(row)
        print(
            f"  [{spec.name}] vanilla={_fmt_time(vanilla).strip()} "
            f"base={_fmt_time(base).strip()} sparse={_fmt_time(sparse).strip()}",
            file=sys.stderr,
            flush=True,
        )
    return rows


def print_table2(
    specs: list[WorkloadSpec] | None = None, budget: int = DEFAULT_BUDGET
) -> None:
    _render_table2(table2(specs, budget))


def _render_table2(rows: list[dict]) -> None:
    header = (
        "Program", "LOC", "Vanilla(s)", "Base(s)", "Spd.1", "Mem.1",
        "Dep(s)", "Fix(s)", "Sparse(s)", "Spd.2", "Mem.2", "D(c)", "U(c)",
    )
    out = []
    for r in rows:
        sparse, base, vanilla = r["sparse"], r["base"], r["vanilla"]
        total = (
            "∞"
            if sparse.timed_out
            else f"{r['dep_s'] + r['fix_s']:8.2f}"
        )
        out.append(
            (
                r["program"],
                r["loc"],
                _fmt_time(vanilla).strip(),
                _fmt_time(base).strip(),
                _speedup(vanilla, base),
                _mem_saving(vanilla, base),
                "∞" if sparse.timed_out else f"{r['dep_s']:.2f}",
                "∞" if sparse.timed_out else f"{r['fix_s']:.2f}",
                total.strip(),
                _speedup(base, sparse),
                _mem_saving(base, sparse),
                "N/A" if sparse.timed_out else f"{r['avg_d']:.1f}",
                "N/A" if sparse.timed_out else f"{r['avg_u']:.1f}",
            )
        )
    _print_rows(header, out)


# --------------------------------------------------------------------------
# Table 3 — octagon domain
# --------------------------------------------------------------------------


def table3(
    specs: list[WorkloadSpec] | None = None, budget: int = DEFAULT_BUDGET
) -> list[dict]:
    """Octagon analysis comparison (Table 3)."""
    specs = specs or octagon_suite()
    rows: list[dict] = []
    for spec in specs:
        source = generate_source(spec)
        program = build_program(source)
        pre = run_preanalysis(program)

        vanilla = _measure(
            lambda tel: run_rel_dense(
                program, pre, max_iterations=budget, telemetry=tel
            )
        )
        base = _measure(
            lambda tel: run_rel_dense(
                program, pre, localize=True, max_iterations=budget,
                telemetry=tel,
            )
        )
        sparse = _measure(
            lambda tel: run_rel_sparse(
                program, pre, max_iterations=budget, telemetry=tel
            )
        )
        row = {
            "program": spec.name,
            "loc": source.count("\n"),
            "vanilla": vanilla,
            "base": base,
            "sparse": sparse,
        }
        if not sparse.timed_out:
            res = sparse.extra["result"]
            d, u = res.defuse.average_sizes()
            row["dep_s"] = sparse.phase("dep-gen", res.stats.time_dep)
            row["fix_s"] = sparse.phase("fixpoint", res.stats.time_fix)
            row["avg_d"] = d
            row["avg_u"] = u
            row["avg_pack"] = res.packs.average_size()
        rows.append(row)
        print(
            f"  [{spec.name}] vanilla={_fmt_time(vanilla).strip()} "
            f"base={_fmt_time(base).strip()} sparse={_fmt_time(sparse).strip()}",
            file=sys.stderr,
            flush=True,
        )
    return rows


def print_table3(
    specs: list[WorkloadSpec] | None = None, budget: int = DEFAULT_BUDGET
) -> None:
    _render_table3(table3(specs, budget))


def _render_table3(rows: list[dict]) -> None:
    header = (
        "Program", "LOC", "Vanilla(s)", "Base(s)", "Spd.1", "Mem.1",
        "Dep(s)", "Fix(s)", "Sparse(s)", "Spd.2", "Mem.2", "D(c)", "U(c)", "Pack",
    )
    out = []
    for r in rows:
        sparse, base, vanilla = r["sparse"], r["base"], r["vanilla"]
        out.append(
            (
                r["program"],
                r["loc"],
                _fmt_time(vanilla).strip(),
                _fmt_time(base).strip(),
                _speedup(vanilla, base),
                _mem_saving(vanilla, base),
                "∞" if sparse.timed_out else f"{r['dep_s']:.2f}",
                "∞" if sparse.timed_out else f"{r['fix_s']:.2f}",
                _fmt_time(sparse).strip(),
                _speedup(base, sparse),
                _mem_saving(base, sparse),
                "N/A" if sparse.timed_out else f"{r['avg_d']:.1f}",
                "N/A" if sparse.timed_out else f"{r['avg_u']:.1f}",
                "N/A" if sparse.timed_out else f"{r['avg_pack']:.1f}",
            )
        )
    _print_rows(header, out)


# --------------------------------------------------------------------------
# formatting / CLI
# --------------------------------------------------------------------------


def _print_rows(header: tuple, rows: list[tuple]) -> None:
    cols = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(cols[i]) for i, h in enumerate(header))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(cols[i]) for i, c in enumerate(row)))


def _row_jsonable(row) -> dict | list:
    """Strip a table row down to JSON-serializable facts (Measurements
    collapse to time/memory; live result objects are dropped)."""
    if not isinstance(row, dict):
        return list(row)  # table1 rows are plain tuples
    out: dict = {}
    for key, value in row.items():
        if isinstance(value, Measurement):
            out[key] = {
                "time_s": value.time_s,
                "peak_mb": value.peak_mb,
                "timed_out": value.timed_out,
                "phases": value.extra.get("phases", {}),
            }
        else:
            out[key] = value
    return out


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if not argv:
        print(__doc__)
        return 2
    which = argv[0]
    quick = "--quick" in argv
    json_out = None
    if "--json" in argv:
        at = argv.index("--json")
        if at + 1 >= len(argv):
            print("--json needs an output path", file=sys.stderr)
            return 2
        json_out = argv[at + 1]
    budget = QUICK_BUDGET if quick else DEFAULT_BUDGET
    interval_specs = default_suite()[:4] if quick else default_suite()
    oct_specs = octagon_suite()[:3] if quick else octagon_suite()
    results: dict[str, list] = {}
    if which in ("table1", "all"):
        print("== Table 1: benchmark characteristics ==")
        rows = table1(interval_specs)
        results["table1"] = [_row_jsonable(r) for r in rows]
        print_table1(interval_specs)
        print()
    if which in ("table2", "all"):
        print("== Table 2: interval analysis performance ==")
        rows = table2(interval_specs, budget)
        results["table2"] = [_row_jsonable(r) for r in rows]
        _render_table2(rows)
        print()
    if which in ("table3", "all"):
        print("== Table 3: octagon analysis performance ==")
        rows = table3(oct_specs, budget)
        results["table3"] = [_row_jsonable(r) for r in rows]
        _render_table3(rows)
        print()
    if which not in ("table1", "table2", "table3", "all"):
        print(f"unknown table {which!r}")
        return 2
    if json_out is not None:
        # crash-safe: a killed harness never leaves a truncated results file
        from repro.runtime.atomicio import atomic_write_json

        atomic_write_json(json_out, {"quick": quick, **results}, indent=2)
        print(f"results written to {json_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
