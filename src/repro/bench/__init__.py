"""Benchmark workload generation, program statistics, and table harness."""

from repro.bench.codegen import (
    WorkloadSpec,
    default_suite,
    generate_source,
    octagon_suite,
)
from repro.bench.stats import ProgramStats, compute_stats

__all__ = [
    "WorkloadSpec",
    "default_suite",
    "generate_source",
    "octagon_suite",
    "ProgramStats",
    "compute_stats",
]
