"""Synthetic C benchmark generator.

Stands in for the paper's 16 open-source packages (gzip … ghostscript).
The paper's performance story is driven by *structural* parameters, which
the generator exposes directly:

* program size (functions × statements per function),
* global-variable fan-out (how many statements touch globals — this is
  what creates interprocedural value flow and, in the naïve setting,
  spurious dependencies),
* call-graph shape, including a mutual-recursion cycle of configurable
  size (the ``maxSCC`` column of Table 1 that the paper correlates with
  analysis cost),
* pointer/array density (weak updates, points-to work),
* sparsity: the fraction of locations each statement touches.

Generated programs are valid in the supported C subset, deterministic per
seed, loop-bounded (they also run under the concrete interpreter), and
free of undefined behaviour the analyzers would flag spuriously.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class WorkloadSpec:
    """Knobs for one generated benchmark program."""

    name: str
    n_functions: int = 8
    n_globals: int = 6
    n_arrays: int = 2
    array_len: int = 16
    stmts_per_function: int = 10
    loops_per_function: int = 1
    calls_per_function: int = 2
    pointer_ops_per_function: int = 1
    recursion_cycle: int = 0
    global_touch_prob: float = 0.3
    use_structs: bool = True
    funcptr_sites: int = 0
    #: give every function at most one call site program-wide (a call tree
    #: instead of a DAG). Shared callees make the context-insensitive
    #: interprocedural graph cyclic, so abstract chains can be infinite
    #: without widening; tree-shaped programs have finite chains and can be
    #: analyzed in the exact no-widening "Lemma mode".
    unique_callees: bool = False
    seed: int = 1

    def scaled(self, factor: float, name: str | None = None) -> "WorkloadSpec":
        """A copy scaled in size (functions) by ``factor``."""
        return WorkloadSpec(
            name=name or f"{self.name}-x{factor:g}",
            n_functions=max(2, int(self.n_functions * factor)),
            n_globals=max(2, int(self.n_globals * factor)),
            n_arrays=self.n_arrays,
            array_len=self.array_len,
            stmts_per_function=self.stmts_per_function,
            loops_per_function=self.loops_per_function,
            calls_per_function=self.calls_per_function,
            pointer_ops_per_function=self.pointer_ops_per_function,
            recursion_cycle=self.recursion_cycle,
            global_touch_prob=self.global_touch_prob,
            use_structs=self.use_structs,
            funcptr_sites=self.funcptr_sites,
            unique_callees=self.unique_callees,
            seed=self.seed,
        )


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("  " * self.indent + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class CodeGenerator:
    """Generates one benchmark program from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.out = _Emitter()
        self._local_counter = 0
        # Call-tree plan for unique_callees mode: parent index (or "main")
        # → list of callee indices; every function has exactly one caller.
        self._call_plan: dict[object, list[int]] | None = None
        if spec.unique_callees:
            plan: dict[object, list[int]] = {"main": []}
            for i in range(spec.n_functions):
                plan[i] = []
            for i in range(spec.n_functions):
                if i == 0 or self.rng.random() < 0.3:
                    plan["main"].append(i)
                else:
                    parent = self.rng.randrange(0, i)
                    plan[parent].append(i)
            self._call_plan = plan

    # -- naming -------------------------------------------------------------------

    def _global(self) -> str:
        return f"g{self.rng.randrange(self.spec.n_globals)}"

    def _array(self) -> str:
        return f"arr{self.rng.randrange(max(self.spec.n_arrays, 1))}"

    # -- expressions -----------------------------------------------------------------

    def _operand(self, locals_: list[str], depth: int) -> str:
        roll = self.rng.random()
        if roll < 0.35:
            return str(self.rng.randrange(0, 64))
        if roll < 0.35 + self.spec.global_touch_prob:
            return self._global()
        return self.rng.choice(locals_) if locals_ else str(self.rng.randrange(8))

    def _expr(self, locals_: list[str], depth: int = 0) -> str:
        if depth >= 2 or self.rng.random() < 0.4:
            return self._operand(locals_, depth)
        op = self.rng.choice(["+", "-", "*", "+", "-"])
        left = self._expr(locals_, depth + 1)
        right = self._expr(locals_, depth + 1)
        return f"({left} {op} {right})"

    def _cond(self, locals_: list[str]) -> str:
        lhs = self._operand(locals_, 0)
        op = self.rng.choice(["<", ">", "<=", ">=", "==", "!="])
        rhs = str(self.rng.randrange(0, 32))
        return f"{lhs} {op} {rhs}"

    # -- statements --------------------------------------------------------------------

    def _stmt(self, locals_: list[str], targets: list[str] | None = None) -> None:
        """One random statement. ``locals_`` may be read; only ``targets``
        (default: all locals) may be written — loop iterators are excluded
        so generated loops always terminate."""
        targets = targets if targets is not None else locals_
        roll = self.rng.random()
        spec = self.spec
        if roll < 0.45 or not targets:
            target = (
                self._global()
                if self.rng.random() < spec.global_touch_prob or not targets
                else self.rng.choice(targets)
            )
            self.out.emit(f"{target} = {self._expr(locals_)};")
        elif roll < 0.6 and spec.n_arrays:
            arr = self._array()
            idx = self.rng.choice(locals_)
            self.out.emit(
                f"{arr}[({idx} < 0 ? 0 : {idx}) % {spec.array_len}] = "
                f"{self._expr(locals_)};"
            )
        elif roll < 0.75:
            var = self.rng.choice(targets)
            self.out.emit(f"if ({self._cond(locals_)}) {{")
            self.out.indent += 1
            self.out.emit(f"{var} = {self._expr(locals_)};")
            self.out.indent -= 1
            self.out.emit("} else {")
            self.out.indent += 1
            self.out.emit(f"{var} = {self._expr(locals_)};")
            self.out.indent -= 1
            self.out.emit("}")
        else:
            var = self.rng.choice(targets)
            src = self._array() if spec.n_arrays else None
            if src is not None:
                idx = self.rng.randrange(spec.array_len)
                self.out.emit(f"{var} = {src}[{idx}] + {self._expr(locals_)};")
            else:
                self.out.emit(f"{var} = {self._expr(locals_)};")

    def _loop(self, locals_: list[str], tag: int) -> None:
        spec = self.spec
        it = f"it{tag}"
        bound = self.rng.randrange(4, spec.array_len + 4)
        self.out.emit(f"int {it};")
        self.out.emit(f"for ({it} = 0; {it} < {bound}; {it}++) {{")
        self.out.indent += 1
        if spec.n_arrays:
            arr = self._array()
            self.out.emit(
                f"{arr}[{it} % {spec.array_len}] = {self._expr(locals_ + [it])};"
            )
        for _ in range(2):
            self._stmt(locals_ + [it], targets=locals_)
        self.out.indent -= 1
        self.out.emit("}")

    def _pointer_op(self, locals_: list[str], tag: int) -> None:
        target = self._global()
        self.out.emit(f"gp = &{target};")
        self.out.emit(f"*gp = {self._expr(locals_)};")
        if locals_:
            self.out.emit(f"{self.rng.choice(locals_)} = *gp;")

    def _call(self, caller_index: int, locals_: list[str]) -> None:
        spec = self.spec
        if self._call_plan is not None:
            pending = self._call_plan.get(caller_index, [])
            if not pending:
                return
            callee = pending.pop(0)
        else:
            dag_start = spec.recursion_cycle
            candidates = list(
                range(max(caller_index + 1, dag_start), spec.n_functions)
            )
            if not candidates:
                return
            callee = self.rng.choice(candidates)
        a = self._operand(locals_, 0)
        b = self._operand(locals_, 0)
        target = self.rng.choice(locals_) if locals_ else self._global()
        self.out.emit(f"{target} = f{callee}({a}, {b});")

    # -- functions -----------------------------------------------------------------------

    def _function(self, index: int) -> None:
        spec = self.spec
        o = self.out
        o.emit(f"int f{index}(int p0, int p1) {{")
        o.indent += 1
        n_locals = self.rng.randrange(2, 5)
        locals_ = [f"v{i}" for i in range(n_locals)]
        for i, name in enumerate(locals_):
            o.emit(f"int {name} = {self.rng.randrange(0, 16)} + p{i % 2};")
        locals_ += ["p0", "p1"]

        in_cycle = index < spec.recursion_cycle
        if in_cycle:
            nxt = (index + 1) % spec.recursion_cycle
            o.emit("if (p0 > 0) {")
            o.indent += 1
            o.emit(f"v0 = f{nxt}(p0 - 1, p1 + 1);")
            o.indent -= 1
            o.emit("}")

        budget = spec.stmts_per_function
        loops = spec.loops_per_function
        calls = spec.calls_per_function
        ptrs = spec.pointer_ops_per_function
        tag = 0
        while budget > 0:
            roll = self.rng.random()
            if loops > 0 and roll < 0.2:
                self._loop(locals_, tag)
                tag += 1
                loops -= 1
                budget -= 3
            elif calls > 0 and roll < 0.4:
                self._call(index, locals_)
                calls -= 1
                budget -= 1
            elif ptrs > 0 and roll < 0.5:
                self._pointer_op(locals_, tag)
                ptrs -= 1
                budget -= 2
            else:
                self._stmt(locals_)
                budget -= 1
        if self._call_plan is not None:
            # flush any planned calls the statement budget didn't reach
            while self._call_plan.get(index):
                self._call(index, locals_)
        if spec.use_structs and index % 7 == 0:
            o.emit("pt.x = v0; pt.y = v1;")
            o.emit("v0 = pt.x + pt.y;")
        o.emit(f"return v0 + v1;")
        o.indent -= 1
        o.emit("}")
        o.emit()

    def _main(self) -> None:
        spec = self.spec
        o = self.out
        o.emit("int main(void) {")
        o.indent += 1
        o.emit("int acc = 0;")
        o.emit("int i;")
        if self._call_plan is not None:
            roots = list(self._call_plan["main"])
        else:
            roots = list(range(spec.n_functions))
            self.rng.shuffle(roots)
            roots = sorted(roots[: max(3, spec.n_functions // 3)])
        # Call the root functions so everything is reachable.
        for index in roots:
            a = self.rng.randrange(0, 8)
            o.emit(f"acc = acc + f{index}({a}, acc % 32);")
        if spec.funcptr_sites and self._call_plan is None:
            o.emit("for (i = 0; i < 4; i++) {")
            o.indent += 1
            o.emit("acc = acc + dispatch(i % 2, acc % 16);")
            o.indent -= 1
            o.emit("}")
        o.emit("return acc;")
        o.indent -= 1
        o.emit("}")

    def generate(self) -> str:
        spec = self.spec
        o = self.out
        o.emit(f"/* generated benchmark: {spec.name} (seed {spec.seed}) */")
        if spec.use_structs:
            o.emit("struct point { int x; int y; };")
            o.emit("struct point pt;")
        for i in range(spec.n_globals):
            o.emit(f"int g{i} = {i % 10};")
        for i in range(spec.n_arrays):
            o.emit(f"int arr{i}[{spec.array_len}];")
        o.emit("int *gp;")
        o.emit()
        # Forward declarations so any call order parses.
        for i in range(spec.n_functions):
            o.emit(f"int f{i}(int p0, int p1);")
        if spec.funcptr_sites and self._call_plan is None:
            o.emit("int dispatch(int which, int v);")
        o.emit()
        for i in range(spec.n_functions):
            self._function(i)
        if spec.funcptr_sites and self._call_plan is None:
            self._dispatcher()
        self._main()
        return o.source()

    def _dispatcher(self) -> None:
        """A function-pointer dispatch site (exercises the pre-analysis's
        call-graph resolution)."""
        o = self.out
        o.emit("int dispatch(int which, int v) {")
        o.indent += 1
        o.emit("int (*fp)(int, int);")
        o.emit("if (which) { fp = &f0; } else { fp = &f1; }")
        o.emit("return fp(v, v + 1);")
        o.indent -= 1
        o.emit("}")
        o.emit()


def generate_source(spec: WorkloadSpec) -> str:
    """Generate the benchmark program for ``spec``."""
    return CodeGenerator(spec).generate()


# --------------------------------------------------------------------------
# The default suite — a scaled-down analog of Table 1's 16 packages.
# --------------------------------------------------------------------------


def default_suite() -> list[WorkloadSpec]:
    """Ten programs from tiny to large, with the same qualitative spread as
    the paper's benchmarks: small leaf-heavy programs, pointer-heavy
    middles, and large programs with big recursion cycles (the
    nethack/vim/emacs analogs whose maxSCC dominates analysis cost)."""
    return [
        WorkloadSpec("gzip-mini", n_functions=6, n_globals=5, seed=11,
                     recursion_cycle=2, funcptr_sites=0),
        WorkloadSpec("bc-mini", n_functions=10, n_globals=8, seed=12,
                     recursion_cycle=0, funcptr_sites=1),
        WorkloadSpec("tar-mini", n_functions=16, n_globals=10, seed=13,
                     recursion_cycle=3, pointer_ops_per_function=2),
        WorkloadSpec("less-mini", n_functions=22, n_globals=12, seed=14,
                     recursion_cycle=5, global_touch_prob=0.4),
        WorkloadSpec("make-mini", n_functions=28, n_globals=14, seed=15,
                     recursion_cycle=6),
        WorkloadSpec("wget-mini", n_functions=36, n_globals=16, seed=16,
                     recursion_cycle=2, funcptr_sites=1),
        WorkloadSpec("screen-mini", n_functions=48, n_globals=20, seed=17,
                     recursion_cycle=8, pointer_ops_per_function=2),
        WorkloadSpec("sendmail-mini", n_functions=64, n_globals=24, seed=18,
                     recursion_cycle=10, global_touch_prob=0.35),
        WorkloadSpec("nethack-mini", n_functions=84, n_globals=28, seed=19,
                     recursion_cycle=24, global_touch_prob=0.4),
        WorkloadSpec("vim-mini", n_functions=110, n_globals=32, seed=20,
                     recursion_cycle=32, global_touch_prob=0.4),
    ]


def octagon_suite() -> list[WorkloadSpec]:
    """Smaller programs for the octagon analyses (Table 3 runs the paper's
    suite only up to sendmail; octagons are an order of magnitude more
    expensive per operation)."""
    return [
        WorkloadSpec("gzip-oct", n_functions=4, n_globals=4, seed=31,
                     stmts_per_function=8, recursion_cycle=0),
        WorkloadSpec("bc-oct", n_functions=6, n_globals=5, seed=32,
                     stmts_per_function=8, recursion_cycle=2),
        WorkloadSpec("tar-oct", n_functions=9, n_globals=6, seed=33,
                     stmts_per_function=8, recursion_cycle=0),
        WorkloadSpec("less-oct", n_functions=12, n_globals=8, seed=34,
                     stmts_per_function=10, recursion_cycle=3),
        WorkloadSpec("make-oct", n_functions=16, n_globals=10, seed=35,
                     stmts_per_function=10, recursion_cycle=4),
        WorkloadSpec("wget-oct", n_functions=20, n_globals=12, seed=36,
                     stmts_per_function=10, recursion_cycle=4),
        WorkloadSpec("screen-oct", n_functions=28, n_globals=14, seed=38,
                     stmts_per_function=10, recursion_cycle=2),
        WorkloadSpec("sendmail-oct", n_functions=40, n_globals=18, seed=39,
                     stmts_per_function=10, recursion_cycle=3,
                     global_touch_prob=0.35),
    ]
