"""Real-corpus recovery harness (``python -m repro.bench.corpus``).

The paper's Table 1 characterizes its benchmarks (LOC, procedures, ...);
this harness produces the fault-tolerance analog for the vendored corpus
under ``examples/corpus/`` — messy, preprocessor-heavy C in the style of
real GNU utilities, including files with K&R definitions, bit-fields,
merge-conflict markers and unterminated literals. Each file runs through
the batch driver with the mini preprocessor enabled, and the report shows
how much of every file the frontend *salvaged*:

* per file: LOC, analyzed procedures, quarantined functions, recovered
  diagnostics, checker alarms, and the batch outcome (``ok`` /
  ``degraded`` / ``failed``);
* aggregate: file recovery rate (poisoned files that still analyzed) and
  function coverage (analyzed / (analyzed + quarantined)).

``--json OUT`` writes the rows for CI to assert against (atomic write).
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
from dataclasses import dataclass, field

from repro.runtime.atomicio import atomic_write_json
from repro.runtime.pool import BatchJob, JobOutcome, run_batch

#: repo-relative default corpus location (resolved from this file)
DEFAULT_CORPUS = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..",
                 "examples", "corpus")
)


def _loc(path: str) -> int:
    """Non-blank source lines, the usual LOC approximation."""
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            return sum(1 for line in fh if line.strip())
    except OSError:
        return 0


@dataclass
class CorpusRow:
    """One corpus file's recovery/coverage numbers."""

    file: str
    loc: int
    functions: int
    quarantined: list[str]
    diagnostics: int
    alarms: int
    status: str
    error: str | None = None

    def as_dict(self) -> dict:
        return {
            "file": self.file,
            "loc": self.loc,
            "functions": self.functions,
            "quarantined": list(self.quarantined),
            "diagnostics": self.diagnostics,
            "alarms": self.alarms,
            "status": self.status,
            "error": self.error,
        }


@dataclass
class CorpusReport:
    """All rows plus the aggregate recovery/coverage figures."""

    rows: list[CorpusRow]
    elapsed: float = 0.0
    counters: dict = field(default_factory=dict)

    @property
    def analyzed_functions(self) -> int:
        return sum(r.functions for r in self.rows)

    @property
    def quarantined_functions(self) -> int:
        return sum(len(r.quarantined) for r in self.rows)

    @property
    def coverage(self) -> float:
        total = self.analyzed_functions + self.quarantined_functions
        return self.analyzed_functions / total if total else 1.0

    @property
    def recovered_files(self) -> int:
        """Poisoned files (≥1 diagnostic) that still finished."""
        return sum(
            1 for r in self.rows if r.diagnostics and r.status != "failed"
        )

    @property
    def poisoned_files(self) -> int:
        return sum(1 for r in self.rows if r.diagnostics or r.status == "failed")

    @property
    def exit_code(self) -> int:
        return 2 if any(r.status == "failed" for r in self.rows) else 0

    def as_dict(self) -> dict:
        return {
            "rows": [r.as_dict() for r in self.rows],
            "analyzed_functions": self.analyzed_functions,
            "quarantined_functions": self.quarantined_functions,
            "coverage": self.coverage,
            "recovered_files": self.recovered_files,
            "poisoned_files": self.poisoned_files,
            "elapsed_s": self.elapsed,
            "exit_code": self.exit_code,
        }

    def text(self) -> str:
        width = max((len(r.file) for r in self.rows), default=4)
        lines = [
            f"{'file':<{width}} {'LOC':>5} {'procs':>5} {'quar':>4} "
            f"{'diags':>5} {'alarms':>6}  outcome"
        ]
        for r in self.rows:
            note = r.status
            if r.quarantined:
                note += " (" + ", ".join(r.quarantined) + ")"
            if r.error:
                note += f" [{r.error}]"
            lines.append(
                f"{r.file:<{width}} {r.loc:>5} {r.functions:>5} "
                f"{len(r.quarantined):>4} {r.diagnostics:>5} "
                f"{r.alarms:>6}  {note}"
            )
        total = self.analyzed_functions + self.quarantined_functions
        lines.append(
            f"{len(self.rows)} files, {self.recovered_files}/"
            f"{self.poisoned_files} poisoned files recovered, function "
            f"coverage {self.analyzed_functions}/{total} "
            f"({100 * self.coverage:.0f}%)"
        )
        return "\n".join(lines)


def _row_from_outcome(outcome: JobOutcome, loc: int) -> CorpusRow:
    return CorpusRow(
        file=os.path.basename(outcome.path),
        loc=loc,
        functions=outcome.functions,
        quarantined=list(outcome.quarantined),
        diagnostics=outcome.diagnostics,
        alarms=outcome.alarms,
        status=outcome.status,
        error=outcome.error,
    )


def run_corpus(
    files: list[str],
    checkpoint_dir: str,
    *,
    domain: str = "interval",
    mode: str = "sparse",
    max_workers: int | None = None,
    job_timeout: float | None = None,
) -> CorpusReport:
    """Run every corpus file through the batch driver and tabulate."""
    jobs = [
        BatchJob(
            path=path,
            domain=domain,
            mode=mode,
            options={"preprocess_source": True},
        )
        for path in files
    ]
    report = run_batch(
        jobs,
        checkpoint_dir,
        max_workers=max_workers,
        job_timeout=job_timeout,
    )
    rows = [
        _row_from_outcome(outcome, _loc(outcome.path))
        for outcome in report.outcomes
    ]
    return CorpusReport(
        rows=rows, elapsed=report.elapsed, counters=dict(report.counters)
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.corpus",
        description="frontend recovery/coverage report over the vendored "
        "C corpus",
    )
    parser.add_argument(
        "files", nargs="*",
        help=f"corpus files (default: {DEFAULT_CORPUS}/*.c)",
    )
    parser.add_argument(
        "--domain", choices=["interval", "octagon"], default="interval"
    )
    parser.add_argument(
        "--mode", choices=["sparse", "base", "vanilla"], default="sparse"
    )
    parser.add_argument(
        "--checkpoint-dir", default=".repro-corpus", metavar="DIR",
        help="scratch directory for per-job checkpoints and results",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="max concurrent workers",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-file wall-clock timeout",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the rows as JSON (atomic write)",
    )
    args = parser.parse_args(argv)

    files = args.files or sorted(glob.glob(os.path.join(DEFAULT_CORPUS, "*.c")))
    if not files:
        print("error: no corpus files found", file=sys.stderr)
        return 2
    report = run_corpus(
        files,
        args.checkpoint_dir,
        domain=args.domain,
        mode=args.mode,
        max_workers=args.jobs,
        job_timeout=args.timeout,
    )
    print(report.text())
    if args.json is not None:
        atomic_write_json(args.json, report.as_dict(), indent=2)
        print(f"report written to {args.json}", file=sys.stderr)
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
