"""Command-line interface.

Analyze a C file and report analysis facts or checker findings::

    python -m repro analyze file.c                      # overrun check
    python -m repro file.c                              # same (shorthand)
    python -m repro analyze file.c --check divzero
    python -m repro analyze file.c --check nullderef
    python -m repro analyze file.c --domain octagon
    python -m repro analyze file.c --mode vanilla --stats
    python -m repro file.c --metrics                    # per-phase report
    python -m repro file.c --trace out.json             # chrome://tracing
    python -m repro file.c --checkpoint run.ckpt        # crash-safe snapshots
    python -m repro file.c --checkpoint run.ckpt --resume
    python -m repro batch a.c b.c --checkpoint-dir ckpt # multi-process driver
    python -m repro tables table2 --quick               # paper tables
    python -m repro serve file.c                        # query server (JSON
                                                        # lines on stdin/stdout)

Exit codes are a stable contract::

    0    analysis completed, no checker alarms
    1    analysis completed, checker alarms reported
    2    anticipated failure (parse error, budget exhaustion, bad
         checkpoint, missing file) — one-line diagnostic on stderr
    3    unexpected internal crash — traceback on stderr
    130  interrupted by SIGINT  (128 + signal number)
    143  interrupted by SIGTERM (128 + signal number); with --checkpoint
         the final snapshot is flushed before exiting
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.api import analyze
from repro.checkers import run_checker
from repro.frontend.errors import FrontendError
from repro.runtime.budget import Budget
from repro.runtime.errors import AnalysisInterrupted, ReproError
from repro.runtime.interrupt import raising_signal_handlers
from repro.telemetry import Telemetry, phase_report, write_chrome_trace

#: exit-code contract (documented in README.md and DESIGN.md §11)
EXIT_OK = 0
EXIT_ALARMS = 1
EXIT_ERROR = 2
EXIT_INTERNAL = 3


def _one_line_diagnostic(exc: ReproError) -> str:
    """A ``file:line:col: message`` diagnostic for frontend errors (with a
    caret snippet when the offending source line is known), a labelled
    one-liner for everything else in the :class:`ReproError` hierarchy."""
    if isinstance(exc, FrontendError):
        return str(exc)
    return f"error: {exc}"


def _cmd_analyze(args: argparse.Namespace) -> int:
    try:
        with open(args.file) as f:
            source = f.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.store is not None:
        from repro.domains.state import set_store_backend

        set_store_backend(args.store)
    options = {
        "preprocess_source": args.cpp,
        "inline": args.inline,
        "scheduler": args.scheduler,
        "strict_frontend": args.strict_frontend,
        "jobs": args.jobs,
    }
    if args.narrow:
        options["narrowing_passes"] = args.narrow
    if args.budget_seconds is not None or args.max_iterations is not None:
        options["budget"] = Budget(
            max_seconds=args.budget_seconds,
            max_iterations=args.max_iterations,
        )
    if args.checkpoint is not None:
        options["checkpoint_path"] = args.checkpoint
        options["checkpoint_every"] = args.checkpoint_every
        options["resume"] = args.resume
    elif args.resume:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return EXIT_ERROR
    # One registry serves both reporting flags; memory tracking only for
    # --metrics (tracemalloc slows the analysis severalfold).
    tel = None
    if args.metrics or args.trace:
        tel = Telemetry(enabled=True, track_memory=args.metrics)
    try:
        # SIGINT/SIGTERM become AnalysisInterrupted inside the engine, so
        # the abort path flushes a final checkpoint before we exit 128+n.
        with raising_signal_handlers():
            run = analyze(
                source,
                domain=args.domain,
                mode=args.mode,
                filename=args.file,
                on_budget=args.on_budget,
                telemetry=tel,
                **options,
            )
    except AnalysisInterrupted:
        if tel is not None and args.trace:
            write_chrome_trace(tel, args.trace)
            print(f"trace written to {args.trace}", file=sys.stderr)
        raise

    exit_code = EXIT_OK
    fdiags = run.frontend_diagnostics
    if len(fdiags):
        print(fdiags.render(), file=sys.stderr)
        analyzed, quarantined = run.coverage()
        print(
            f"note: recovered from {fdiags.summary()}: "
            f"{analyzed} analyzed, {quarantined} quarantined",
            file=sys.stderr,
        )
        if fdiags.errors():
            # Recovered-with-diagnostics shares the alarm exit path: the
            # run completed but its input was degraded.
            exit_code = EXIT_ALARMS

    if run.diagnostics.degraded_procs:
        print(
            "note: budget-degraded to the pre-analysis in: "
            + ", ".join(run.diagnostics.degraded_procs),
            file=sys.stderr,
        )
    for event in run.diagnostics.events:
        if event.startswith("resumed from checkpoint"):
            print(f"note: {event}", file=sys.stderr)

    if args.stats:
        program = run.program
        print(f"procedures      : {program.num_functions()}")
        print(f"control points  : {program.num_statements()}")
        stats = run.result.stats
        print(f"iterations      : {stats.iterations}")
        if run.result.deps is not None:
            print(f"dependencies    : {stats.dep_count} "
                  f"(raw {stats.raw_dep_count})")
        if run.result.defuse is not None:
            d, u = run.result.defuse.average_sizes()
            print(f"avg |D̂|/|Û|    : {d:.2f} / {u:.2f}")
        sched = run.scheduler_stats
        if sched is not None:
            print(f"scheduler       : {sched.scheduler}")
            print(f"pops            : {sched.pops} over "
                  f"{sched.unique_nodes} nodes")
            print(f"revisits        : {sched.revisits} "
                  f"(max {sched.max_revisits}, "
                  f"rate {sched.revisit_rate:.2f})")
            print(f"inversions      : {sched.inversions}")
            print(f"widening points : {sched.widening_points}")
            total = sched.join_cache_hits + sched.join_cache_misses
            if total:
                print(f"join cache      : {sched.join_cache_hits}/{total} "
                      f"hits ({100 * sched.join_cache_hit_rate:.0f}%)")

    if args.domain == "interval":
        for name in args.check:
            reports = run_checker(name, run.program, run.result, telemetry=tel)
            printed = set()
            print(f"\n== {name} ({len(reports)} checks) ==")
            for r in reports:
                key = (r.line, str(r))
                if key in printed:
                    continue
                printed.add(key)
                print(f"  {r}")
                if "alarm" in str(r).lower() or "null" in str(r).lower():
                    exit_code = max(exit_code, EXIT_ALARMS)
            if name == "overrun" and args.cluster:
                from repro.checkers.cluster import (
                    cluster_alarms,
                    triage_summary,
                )

                clusters = cluster_alarms(run.program, reports)
                if clusters:
                    print()
                    print(triage_summary(clusters))
    elif args.check and args.check != ["overrun"]:
        print("checkers need --domain interval", file=sys.stderr)
        return EXIT_ERROR

    if args.query:
        for q in args.query:
            proc, _, var = q.partition(":")
            try:
                itv = run.interval_at_exit(proc, var)
                print(f"{proc}:{var} at exit ∈ {itv}")
            except KeyError as exc:
                print(f"query {q!r}: {exc}", file=sys.stderr)

    if tel is not None:
        if args.metrics:
            print()
            print(f"== per-phase metrics ({args.file}) ==")
            print(phase_report(tel).text())
        if args.trace:
            write_chrome_trace(tel, args.trace)
            print(f"trace written to {args.trace}", file=sys.stderr)
        tel.close()
    return exit_code


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.runtime.atomicio import atomic_write_json
    from repro.runtime.faults import FaultPlan
    from repro.runtime.pool import BatchJob, run_batch

    faults = None
    if args.fault_kill_at is not None or args.fault_corrupt_checkpoint:
        faults = FaultPlan(
            kill_worker_at=args.fault_kill_at,
            corrupt_checkpoint=args.fault_corrupt_checkpoint,
        )
    options = {}
    if args.cpp:
        options["preprocess_source"] = True
    if args.strict_frontend:
        options["strict_frontend"] = True
    jobs = [
        BatchJob(path=path, domain=args.domain, mode=args.mode,
                 options=dict(options), faults=faults)
        for path in args.files
    ]
    with raising_signal_handlers():
        report = run_batch(
            jobs,
            args.checkpoint_dir,
            max_workers=args.jobs,
            job_timeout=args.timeout,
            max_retries=args.retries,
            heartbeat_timeout=args.heartbeat_timeout,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            seed=args.seed,
        )
    print(report.text())
    if args.report is not None:
        atomic_write_json(args.report, report.as_dict(), indent=2)
        print(f"report written to {args.report}", file=sys.stderr)
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        with open(args.file) as f:
            source = f.read()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    tel = None
    if args.report is not None:
        tel = Telemetry(enabled=True)
    session_options = dict(
        domain=args.domain,
        mode=args.mode,
        strict=not args.exact,
        widen=not args.exact,
        narrowing_passes=args.narrow,
        preprocess_source=args.cpp,
        query_budget_seconds=args.query_budget_seconds,
        query_max_iterations=args.query_max_iterations,
        max_resident_bytes=args.max_resident_bytes,
    )

    if args.supervised:
        return _serve_supervised(args, source, session_options, tel)

    from repro.server.protocol import serve_stdio, serve_unix_socket
    from repro.server.session import ServeSession

    session = ServeSession(source, args.file, telemetry=tel, **session_options)
    if args.preload:
        # Eagerly compute the default combo's global fixpoint so the first
        # query is already a warm read.
        session.resident()
        session._ensure_solved(
            session.resident(),
            frozenset(session.resident().plan.node_ids),
        )
    try:
        # SIGINT/SIGTERM raise AnalysisInterrupted even mid-query; main()
        # maps it to the documented 128+signum exit code.
        with raising_signal_handlers():
            if args.socket is not None:
                serve_unix_socket(
                    session,
                    args.socket,
                    max_request_bytes=args.max_request_bytes,
                )
            else:
                serve_stdio(
                    session,
                    sys.stdin,
                    sys.stdout,
                    max_request_bytes=args.max_request_bytes,
                )
    finally:
        if tel is not None and args.report is not None:
            from repro.telemetry import write_phase_report

            write_phase_report(tel, args.report)
            print(f"phase report written to {args.report}", file=sys.stderr)
    return EXIT_OK


def _serve_supervised(
    args: argparse.Namespace, source: str, session_options: dict, tel
) -> int:
    from repro.server.supervisor import (
        Supervisor,
        SupervisorConfig,
        serve_supervised_stdio,
        serve_supervised_socket,
    )

    config = SupervisorConfig(
        request_deadline=args.request_deadline,
        heartbeat_timeout=args.heartbeat_timeout,
        snapshot_every=args.snapshot_every,
        max_pending=args.max_pending,
        max_restarts=args.max_restarts,
    )
    sup = Supervisor(
        source,
        args.file,
        state_dir=args.state_dir,
        config=config,
        max_request_bytes=args.max_request_bytes,
        preload=args.preload,
        telemetry=tel,
        **session_options,
    )
    sup.start()
    try:
        # SIGINT/SIGTERM raise AnalysisInterrupted in the consumer loop;
        # the handlers below forward the same signal to the worker and
        # reap it before main() exits 128+signum.
        with raising_signal_handlers():
            if args.socket is not None:
                serve_supervised_socket(sup, args.socket)
            else:
                serve_supervised_stdio(sup, sys.stdin, sys.stdout)
    except AnalysisInterrupted as exc:
        sup.stop(exc.signum)
        raise
    finally:
        sup.stop()
        if tel is not None and args.report is not None:
            from repro.telemetry import write_phase_report

            write_phase_report(tel, args.report)
            print(f"phase report written to {args.report}", file=sys.stderr)
    return EXIT_OK


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.bench import harness

    argv = [args.table]
    if args.quick:
        argv.append("--quick")
    if args.json:
        argv.extend(["--json", args.json])
    return harness.main(argv)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sparse global abstract interpretation for C-like "
        "languages (PLDI 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="analyze a C file")
    p_analyze.add_argument("file")
    p_analyze.add_argument(
        "--domain", choices=["interval", "octagon"], default="interval"
    )
    p_analyze.add_argument(
        "--mode", choices=["sparse", "base", "vanilla"], default="sparse"
    )
    p_analyze.add_argument(
        "--check",
        action="append",
        choices=["overrun", "divzero", "nullderef"],
        default=None,
        help="client checker to run (repeatable; default: overrun)",
    )
    p_analyze.add_argument(
        "--query",
        action="append",
        metavar="PROC:VAR",
        help="print a variable's interval at a procedure exit (repeatable)",
    )
    p_analyze.add_argument("--stats", action="store_true")
    p_analyze.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="solve the whole-program fixpoint over SCC shards with N "
        "worker processes (N > 1; tables are byte-identical to the "
        "sequential engines)",
    )
    p_analyze.add_argument(
        "--metrics", action="store_true",
        help="print a Table-2-style per-phase report (frontend, "
        "pre-analysis, dep-gen, fixpoint, narrowing, checkers) with "
        "tracemalloc peak memory",
    )
    p_analyze.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome trace JSON (chrome://tracing) of the run",
    )
    p_analyze.add_argument(
        "--scheduler", choices=["wto", "fifo"], default="wto",
        help="fixpoint visit order: weak topological order (default) or "
        "the FIFO baseline",
    )
    p_analyze.add_argument(
        "--store", choices=["array", "scalar"], default=None,
        help="interval-state storage backend: vectorized numpy arrays "
        "(default) or the scalar dict reference (A/B comparisons)",
    )
    p_analyze.add_argument(
        "--narrow", type=int, default=2, metavar="N",
        help="narrowing passes after widening (default 2)",
    )
    p_analyze.add_argument(
        "--cpp", action="store_true",
        help="run the mini preprocessor (#define/#if/#include) first",
    )
    p_analyze.add_argument(
        "--strict-frontend", action="store_true",
        help="fail fast on the first frontend error instead of recovering "
        "with diagnostics and per-function quarantine",
    )
    p_analyze.add_argument(
        "--inline", action="store_true",
        help="inline small non-recursive callees before analysis "
        "(bounded context sensitivity)",
    )
    p_analyze.add_argument(
        "--cluster", action="store_true",
        help="group overrun alarms into dominance clusters for triage",
    )
    p_analyze.add_argument(
        "--budget-seconds", type=float, default=None, metavar="S",
        help="wall-clock budget for the fixpoint computation",
    )
    p_analyze.add_argument(
        "--max-iterations", type=int, default=None, metavar="N",
        help="iteration budget for the fixpoint computation",
    )
    p_analyze.add_argument(
        "--on-budget", choices=["fail", "degrade"], default="fail",
        help="on budget exhaustion: fail (exit non-zero) or degrade "
        "affected procedures to the sound pre-analysis result",
    )
    p_analyze.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="write crash-safe snapshots of the fixpoint state to FILE "
        "(periodic, plus a final flush on interrupt/budget abort)",
    )
    p_analyze.add_argument(
        "--checkpoint-every", type=int, default=200, metavar="N",
        help="snapshot every N fixpoint iterations (default 200)",
    )
    p_analyze.add_argument(
        "--resume", action="store_true",
        help="resume from the --checkpoint file instead of starting fresh; "
        "converges to the same fixpoint as an uninterrupted run",
    )
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_batch = sub.add_parser(
        "batch",
        help="analyze many files with the fault-tolerant multi-process "
        "driver (timeouts, retry with backoff, resume-from-checkpoint)",
    )
    p_batch.add_argument("files", nargs="+")
    p_batch.add_argument(
        "--domain", choices=["interval", "octagon"], default="interval"
    )
    p_batch.add_argument(
        "--mode", choices=["sparse", "base", "vanilla"], default="sparse"
    )
    p_batch.add_argument(
        "--cpp", action="store_true",
        help="run the mini preprocessor on each file first (needed for "
        "sources that carry #define/#include lines, e.g. examples/corpus)",
    )
    p_batch.add_argument(
        "--strict-frontend", action="store_true",
        help="fail fast on the first frontend error instead of recovering; "
        "poisoned files then count as failed, not degraded",
    )
    p_batch.add_argument(
        "--checkpoint-dir", default=".repro-checkpoints", metavar="DIR",
        help="where per-job checkpoints and results live "
        "(default .repro-checkpoints)",
    )
    p_batch.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="max concurrent workers (default min(4, cpu count))",
    )
    p_batch.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-job wall-clock timeout; timed-out jobs are retried from "
        "their last checkpoint",
    )
    p_batch.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="max retries per job after a crash/timeout (default 2)",
    )
    p_batch.add_argument(
        "--checkpoint-every", type=int, default=5, metavar="N",
        help="worker snapshot period in fixpoint iterations (default 5)",
    )
    p_batch.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="S",
        help="treat a worker as hung when its heartbeat file goes stale "
        "for S seconds",
    )
    p_batch.add_argument(
        "--resume", action="store_true",
        help="let first attempts resume from checkpoints left by a "
        "previous batch run",
    )
    p_batch.add_argument(
        "--seed", type=int, default=0,
        help="PRNG seed for retry backoff jitter (default 0)",
    )
    p_batch.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the per-job outcome report as JSON (atomic write)",
    )
    p_batch.add_argument(
        "--fault-kill-at", type=int, default=None, metavar="N",
        help="testing: SIGKILL each worker at fixpoint iteration N "
        "(first attempt only)",
    )
    p_batch.add_argument(
        "--fault-corrupt-checkpoint", action="store_true",
        help="testing: corrupt each job's checkpoint before its first "
        "retry to exercise the fail-closed restore path",
    )
    p_batch.set_defaults(fn=_cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="long-running query server: load once, answer point queries "
        "demand-driven, reanalyze incrementally on edit (line-oriented "
        "JSON on stdin/stdout or a Unix socket)",
    )
    p_serve.add_argument("file")
    p_serve.add_argument(
        "--domain", choices=["interval", "octagon"], default="interval"
    )
    p_serve.add_argument(
        "--mode", choices=["sparse", "base", "vanilla"], default="sparse"
    )
    p_serve.add_argument(
        "--cpp", action="store_true",
        help="run the mini preprocessor (#define/#if/#include) first",
    )
    p_serve.add_argument(
        "--exact", action="store_true",
        help="exact mode (strict=False, widen=False): order-independent "
        "least fixpoints, the setting under which cone-restricted solves "
        "are provably identical to global ones",
    )
    p_serve.add_argument(
        "--narrow", type=int, default=0, metavar="N",
        help="narrowing passes after widening (default 0; narrowing "
        "disables cone solving — every query uses the cached global solve)",
    )
    p_serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="serve on a Unix domain socket instead of stdin/stdout",
    )
    p_serve.add_argument(
        "--max-request-bytes", type=int, default=1 << 20, metavar="N",
        help="reject request lines larger than N bytes (default 1 MiB)",
    )
    p_serve.add_argument(
        "--query-budget-seconds", type=float, default=None, metavar="S",
        help="per-query wall-clock budget for cone solves; exceeding it "
        "degrades that query to the global-solve fallback",
    )
    p_serve.add_argument(
        "--query-max-iterations", type=int, default=None, metavar="N",
        help="per-query iteration budget for cone solves (same fallback)",
    )
    p_serve.add_argument(
        "--preload", action="store_true",
        help="solve the default combo's global fixpoint at startup so the "
        "first query is already a warm read",
    )
    p_serve.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the served-queries phase report as JSON at shutdown",
    )
    p_serve.add_argument(
        "--supervised", action="store_true",
        help="run the session in a supervised worker child: crashes and "
        "hangs are detected, the worker is respawned with backoff and "
        "restored from its latest snapshot, and the in-flight request is "
        "answered with a one-line retry error instead of the server dying",
    )
    p_serve.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="supervised: where the durable source record and resident "
        "snapshots live (default: a private temporary directory)",
    )
    p_serve.add_argument(
        "--request-deadline", type=float, default=60.0, metavar="S",
        help="supervised: hard per-request wall-clock ceiling; a worker "
        "that exceeds it is killed and respawned (default 60)",
    )
    p_serve.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="S",
        help="supervised: treat the worker as hung when its heartbeat "
        "goes stale for S seconds mid-request",
    )
    p_serve.add_argument(
        "--snapshot-every", type=int, default=16, metavar="N",
        help="supervised: auto-snapshot resident state every N requests "
        "(edits always snapshot; default 16)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="supervised: admission-control cap; requests beyond N queued "
        "ones are shed immediately with an 'overloaded' error (default 64)",
    )
    p_serve.add_argument(
        "--max-restarts", type=int, default=8, metavar="N",
        help="supervised: consecutive worker startup failures before the "
        "supervisor gives up and answers 'unavailable' (default 8)",
    )
    p_serve.add_argument(
        "--max-resident-bytes", type=int, default=None, metavar="N",
        help="evict least-recently-used per-combo resident analyses when "
        "their estimated footprint exceeds N bytes (queries on evicted "
        "combos fall back to a lazy re-solve)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_tables = sub.add_parser("tables", help="regenerate the paper's tables")
    p_tables.add_argument("table", choices=["table1", "table2", "table3", "all"])
    p_tables.add_argument("--quick", action="store_true")
    p_tables.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the table rows as JSON (atomic write)",
    )
    p_tables.set_defaults(fn=_cmd_tables)

    if argv is None:
        argv = sys.argv[1:]
    # Shorthand: ``python -m repro file.c …`` == ``python -m repro analyze
    # file.c …`` — anything that is not a subcommand or a flag is a file.
    if argv and not argv[0].startswith("-") and argv[0] not in (
        "analyze", "batch", "tables", "serve"
    ):
        argv = ["analyze", *argv]
    args = parser.parse_args(argv)
    if getattr(args, "check", None) is None and args.command == "analyze":
        args.check = ["overrun"]
    try:
        if os.environ.get("REPRO_INTERNAL_CRASH"):
            raise RuntimeError("injected internal crash (REPRO_INTERNAL_CRASH)")
        return args.fn(args)
    except AnalysisInterrupted as exc:
        # Graceful shutdown: the engine's abort path already flushed a final
        # checkpoint (when --checkpoint is active). Conventional 128+signum.
        print(f"interrupted: {exc}", file=sys.stderr)
        return 128 + exc.signum
    except ReproError as exc:
        # One-line diagnostic instead of a traceback: parse errors point at
        # file:line:col, budget exhaustion and engine failures are labelled.
        print(_one_line_diagnostic(exc), file=sys.stderr)
        return EXIT_ERROR
    except ValueError as exc:
        # Option conflicts (e.g. --jobs with an incompatible knob) are user
        # errors, not internal bugs.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except Exception:
        import traceback

        traceback.print_exc()
        print("internal error: this is a bug, please report it",
              file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":
    raise SystemExit(main())
