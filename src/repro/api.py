"""High-level public API.

One-call entry points for the common workflows::

    from repro import analyze

    result = analyze(source, domain="interval", mode="sparse")
    result.interval_at_exit("main", "x")     # value query
    result.overrun_reports()                 # buffer-overrun checker

``domain`` selects the abstract domain (``"interval"`` non-relational or
``"octagon"`` packed relational); ``mode`` selects the engine
(``"sparse"``, ``"base"`` with access-based localization, or ``"vanilla"``).

Resilience (see :mod:`repro.runtime`): ``budget`` caps the fixpoint work,
``on_budget="degrade"`` trades per-procedure precision for guaranteed
completion (falling back to the pre-analysis state, sound by Lemma 2), and
``fallback=("sparse", "base", "vanilla")`` is a whole-run engine ladder —
each rung gets a slice of the budget, and the terminal pseudo-engine
``"pre"`` always succeeds by answering every query from the pre-analysis.
What actually happened is recorded on ``run.diagnostics``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.dense import build_interproc_graph, run_dense
from repro.analysis.engine import FixpointResult, FixpointStats
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.relational import (
    PackState,
    RelContext,
    run_rel_dense,
    run_rel_sparse,
)
from repro.analysis.sparse import run_sparse
from repro.checkers.overrun import AccessReport, check_overruns
from repro.domains.absloc import AbsLoc, VarLoc
from repro.domains.interval import Interval
from repro.domains.value import AbsValue
from repro.frontend.errors import DiagnosticBag
from repro.ir.program import Program, build_program
from repro.runtime.budget import Budget
from repro.runtime.degrade import Diagnostics, preanalysis_table
from repro.runtime.errors import AnalysisError, BudgetExceeded
from repro.runtime.faults import FaultInjector
from repro.telemetry.core import NULL_TELEMETRY, Telemetry

#: cache sentinel — ``None`` is a legitimate lookup result
_MISS = object()

#: sparse-only engine options that must not reach the dense drivers
_SPARSE_ONLY_OPTIONS = ("method", "bypass")


@dataclass
class AnalysisRun:
    """A completed analysis with convenience queries.

    Sparse results only materialize a location's value where it is
    *defined* (Lemma 1's scope) — queries at arbitrary points therefore
    walk backward to the reaching definitions: the value at ``c`` is the
    join of the nearest ancestor states that carry the location (values
    flow unchanged along definition-free paths).

    ``diagnostics`` records what the resilience runtime did: degraded
    procedures, the fallback engine used (if any), timings and iteration
    counts."""

    program: Program
    pre: PreAnalysis
    domain: str
    mode: str
    result: FixpointResult
    diagnostics: Diagnostics = field(default_factory=Diagnostics)
    #: the telemetry registry the run reported into (the shared no-op
    #: singleton unless ``analyze(..., telemetry=...)`` was given one)
    telemetry: Telemetry = field(default=NULL_TELEMETRY, repr=False)
    #: recovered frontend problems (lex/parse/lowering errors plus
    #: quarantine notes); empty under ``strict_frontend=True`` or when the
    #: input parsed cleanly
    frontend_diagnostics: DiagnosticBag = field(default_factory=DiagnosticBag)
    #: memo for :meth:`_reaching_lookup` — repeated checker queries walk the
    #: same predecessor chains over and over; one entry per (node, key)
    _lookup_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # -- queries ---------------------------------------------------------------

    @property
    def scheduler_stats(self):
        """The main fixpoint's :class:`~repro.analysis.schedule.SchedulerStats`
        (None for pre-analysis-only results)."""
        return getattr(self.result, "scheduler_stats", None)

    @property
    def quarantined(self) -> dict[str, str]:
        """Functions replaced by havoc stubs, with their soundness notes."""
        return self.program.quarantined

    def coverage(self) -> tuple[int, int]:
        """``(analyzed, quarantined)`` function counts for this run."""
        return (
            len(self.program.analyzed_functions()),
            len(self.program.quarantined),
        )

    def _reaching_lookup(self, nid: int, key) -> object | None:
        """Join of the nearest states (backward over the control graph)
        that carry ``key``; None when no path defines it. Memoized per
        ``(nid, key)`` on the run object."""
        cache_key = (nid, key)
        hit = self._lookup_cache.get(cache_key, _MISS)
        if hit is not _MISS:
            return hit
        preds = self.result.graph.preds
        table = self.result.table
        found = None
        seen = {nid}
        frontier = [nid]
        while frontier:
            new_frontier = []
            for node in frontier:
                state = table.get(node)
                if state is not None and key in state:
                    value = state.get(key)
                    found = value if found is None else found.join(value)
                    continue  # the definition shadows anything above
                for p in preds.get(node, ()):
                    if p not in seen:
                        seen.add(p)
                        new_frontier.append(p)
            frontier = new_frontier
        self._lookup_cache[cache_key] = found
        return found

    def value_at(self, nid: int, loc: AbsLoc) -> AbsValue:
        """Abstract value of ``loc`` at control point ``nid`` (interval
        domain only)."""
        if self.domain != "interval":
            raise ValueError("value_at is an interval-domain query")
        state = self.result.table.get(nid)
        if state is not None and loc in state:
            return state.get(loc)
        found = self._reaching_lookup(nid, loc)
        return found if found is not None else AbsValue.bottom()

    def interval_of(self, nid: int, var: str, proc: str | None = None) -> Interval:
        """The numeric interval of a variable at a control point."""
        loc = VarLoc(var, proc)
        if self.domain == "interval":
            return self.value_at(nid, loc).itv
        ctx = RelContext(self.program, self.pre, self.result.packs)
        out = Interval.top()
        for pack in ctx.packs.packs_of(loc):
            state = self.result.table.get(nid)
            if state is not None and pack in state:
                oct_ = state.get(pack)
            else:
                oct_ = self._reaching_lookup(nid, pack)
            if oct_ is not None:
                out = out.meet(oct_.project(pack.index(loc)))
        return out

    def interval_at_exit(self, proc: str, var: str) -> Interval:
        """The interval of ``proc``'s local ``var`` (or a global when the
        name is not a local) at the procedure's exit."""
        cfg = self.program.cfgs.get(proc)
        if cfg is None or cfg.exit is None:
            raise KeyError(f"no procedure {proc!r}")
        owner: str | None = proc
        info = self.program.proc_infos.get(proc)
        if info is not None and var not in info.var_types:
            owner = None
        return self.interval_of(cfg.exit.nid, var, owner)

    def overrun_reports(self) -> list[AccessReport]:
        """Run the buffer-overrun checker over this result."""
        if self.domain != "interval":
            raise ValueError("the overrun checker needs the interval domain")
        from repro.checkers import run_checker

        return run_checker(
            "overrun", self.program, self.result, telemetry=self.telemetry
        )


@dataclass
class QueryResult:
    """One answer from a :class:`repro.server.ServeSession` point query.

    ``solve`` records how the answer was produced — ``"resident"`` (pure
    table read), ``"cone"`` (demand-driven restricted solve),
    ``"global"`` (whole-program solve, now cached), or
    ``"global-fallback"`` (a cone attempt blew its per-query budget and
    degraded to the global solve). Whatever the path, the value is
    byte-identical to a fresh ``analyze()`` of the current program text.
    """

    kind: str
    domain: str
    mode: str
    solve: str
    generation: int
    proc: str | None = None
    var: str | None = None
    nid: int | None = None
    line: int | None = None
    interval: Interval | None = None
    reports: list[AccessReport] | None = None
    #: control points the engine actually popped for this answer
    visited: int = 0
    elapsed: float = 0.0

    def as_dict(self) -> dict:
        """A JSON-ready rendering (the serve protocol's response body)."""
        out: dict = {
            "kind": self.kind,
            "domain": self.domain,
            "mode": self.mode,
            "solve": self.solve,
            "generation": self.generation,
            "visited": self.visited,
            "elapsed_ms": round(self.elapsed * 1000.0, 3),
        }
        if self.proc is not None:
            out["proc"] = self.proc
        if self.var is not None:
            out["var"] = self.var
        if self.nid is not None:
            out["nid"] = self.nid
        if self.line is not None:
            out["line"] = self.line
        if self.kind == "interval":
            itv = self.interval if self.interval is not None else Interval.bottom()
            out["interval"] = {
                "lo": itv.lo,
                "hi": itv.hi,
                "bottom": itv.is_bottom(),
                "repr": str(itv),
            }
        if self.reports is not None:
            out["reports"] = [
                {
                    "nid": r.nid,
                    "line": r.line,
                    "proc": r.proc,
                    "access": str(r.access),
                    "verdict": getattr(r.verdict, "value", str(r.verdict)),
                    "offset": str(r.offset),
                    "size": str(r.size),
                }
                for r in self.reports
            ]
        return out


def serve_session(
    source: str,
    filename: str = "<serve>",
    **options,
):
    """Create a :class:`repro.server.ServeSession` — the resident-state
    query/edit server behind ``repro serve``. Options mirror the session
    constructor (``domain``, ``mode``, ``strict``, ``widen``,
    ``narrowing_passes``, ``preprocess_source``, ``query_budget_seconds``,
    ``query_max_iterations``, ``cone_threshold``, ``max_resident_bytes`` —
    the LRU eviction budget for resident per-combo state — and
    ``telemetry``)."""
    from repro.server.session import ServeSession

    return ServeSession(source, filename, **options)


def supervised_session(
    source: str,
    filename: str = "<serve>",
    *,
    config=None,
    state_dir: str | None = None,
    **options,
):
    """Create (without starting) a :class:`repro.server.Supervisor` — the
    crash-recovering runtime behind ``repro serve --supervised``. The
    session lives in a worker child; crashes, hangs past the per-request
    deadline, and lost heartbeats are answered with ``retry`` errors while
    the worker is respawned (with backoff) and restored from its latest
    snapshot. ``options`` are the :func:`serve_session` options; ``config``
    is a :class:`repro.server.SupervisorConfig`. Call ``.start()`` before
    ``.ask()`` and ``.stop()`` when done."""
    from repro.server.supervisor import Supervisor

    return Supervisor(
        source, filename, config=config, state_dir=state_dir, **options
    )


def _run_engine(
    program: Program,
    pre: PreAnalysis,
    domain: str,
    mode: str,
    options: dict,
) -> FixpointResult:
    """Dispatch one engine×domain combination (one rung of the ladder)."""
    if mode == "pre":
        # Terminal fallback: answer everything from the pre-analysis state.
        table = preanalysis_table(program, pre, domain)
        graph = build_interproc_graph(program, pre.site_callees, localized=False)
        diagnostics = Diagnostics(
            degraded_procs=list(program.procedures()),
            events=["whole run answered from the pre-analysis state"],
        )
        if domain == "interval":
            return FixpointResult(
                table,
                FixpointStats(),
                pre=pre,
                graph=graph,
                diagnostics=diagnostics,
            )
        from repro.domains.packs import build_packs

        return FixpointResult(
            table,
            FixpointStats(),
            pre=pre,
            graph=graph,
            packs=build_packs(program),
            diagnostics=diagnostics,
            bottom=PackState,
        )
    if domain == "interval":
        if mode == "sparse":
            return run_sparse(program, pre, **options)
        dense_options = {
            k: v for k, v in options.items() if k not in _SPARSE_ONLY_OPTIONS
        }
        if mode == "base":
            return run_dense(program, pre, localize=True, **dense_options)
        if mode == "vanilla":
            return run_dense(program, pre, **dense_options)
        raise ValueError(f"unknown mode {mode!r}")
    if domain == "octagon":
        if mode == "sparse":
            return run_rel_sparse(program, pre, **options)
        dense_options = {
            k: v for k, v in options.items() if k not in _SPARSE_ONLY_OPTIONS
        }
        if mode == "base":
            return run_rel_dense(program, pre, localize=True, **dense_options)
        if mode == "vanilla":
            return run_rel_dense(program, pre, **dense_options)
        raise ValueError(f"unknown mode {mode!r}")
    raise ValueError(f"unknown domain {domain!r}")


def analyze(
    source: str,
    domain: str = "interval",
    mode: str = "sparse",
    filename: str = "<input>",
    preprocess_source: bool = False,
    inline: bool = False,
    budget: Budget | None = None,
    budget_seconds: float | None = None,
    on_budget: str = "fail",
    fallback: tuple[str, ...] | None = None,
    faults=None,
    watchdog: bool = True,
    telemetry=None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 200,
    resume: bool = False,
    strict_frontend: bool = False,
    jobs: int = 1,
    **options,
) -> AnalysisRun:
    """Parse, lower, and analyze C-subset ``source``.

    ``preprocess_source`` runs the mini preprocessor first; ``inline``
    duplicates small non-recursive callees into their call sites (bounded
    context sensitivity). Remaining ``options`` are forwarded to the
    underlying engine (``strict``, ``widen``, ``narrowing_passes``,
    ``widening_thresholds``, ``max_iterations``, ``method``, ``bypass``,
    ``scheduler`` — ``"wto"`` or the ``"fifo"`` baseline).

    ``jobs > 1`` routes the run through the SCC-sharded driver
    (:func:`repro.analysis.shards.run_sharded`) with a process-pool
    executor — tables are byte-identical to the sequential engines. The
    sharded driver owns scheduling end to end, so it is incompatible with
    ``fallback``, checkpointing, fault injection, budgets, and the
    ``fifo`` scheduler; combining them raises :class:`ValueError`.

    Resilience knobs:

    * ``budget`` / ``budget_seconds`` / ``max_iterations`` — a unified
      :class:`repro.runtime.Budget` on the main fixpoint (the pre-analysis,
      being the degradation safety net, is not charged against it);
    * ``on_budget`` — ``"fail"`` raises :class:`BudgetExceeded` (the paper's
      ∞ entries); ``"degrade"`` fills unconverged procedures from the
      pre-analysis state and completes the run;
    * ``fallback`` — an engine ladder, e.g. ``("sparse", "base", "pre")``:
      each rung gets ``budget.split(len(fallback))`` and the first to finish
      wins; the pseudo-engine ``"pre"`` cannot fail;
    * ``faults`` — a :class:`repro.runtime.faults.FaultPlan` for
      deterministic failure injection (testing);
    * ``watchdog`` — verify every degraded state stays ⊑ the pre-analysis
      bound.

    ``telemetry`` attaches a :class:`repro.telemetry.Telemetry` registry
    (or ``True`` for a fresh one, reachable as ``run.telemetry``): every
    phase — frontend, pre-analysis, dep-gen, fixpoint, narrowing — reports
    spans and counters into it, at no cost when omitted.

    Checkpointing (see :mod:`repro.runtime.checkpoint`): with
    ``checkpoint_path`` set, the engine atomically snapshots its in-flight
    state every ``checkpoint_every`` iterations and once more on any abort
    (budget exhaustion, injected crash, SIGINT/SIGTERM). ``resume=True``
    restores that snapshot — after validating format version, content
    digest, and a configuration fingerprint, failing closed with a
    :class:`~repro.runtime.errors.CheckpointError` otherwise — and the run
    converges to the same fixpoint as an uninterrupted one. Incompatible
    with ``fallback`` (a ladder re-runs stages; a snapshot belongs to
    exactly one engine configuration).

    Frontend fault tolerance (ISSUE 6): by default malformed input is
    *recovered* — lex/parse/lowering errors become positioned caret
    diagnostics on ``run.frontend_diagnostics``, functions whose bodies
    cannot be parsed or lowered are quarantined behind sound havoc stubs
    (``run.quarantined``), and every clean function is still analyzed. A
    file with **zero** recoverable functions raises
    :class:`~repro.frontend.errors.FrontendError` (one hard failure,
    carrying the first diagnostic). ``strict_frontend=True`` opts back
    into historical fail-fast parsing.
    """
    if on_budget not in ("fail", "degrade"):
        raise ValueError(f"on_budget must be 'fail' or 'degrade', not {on_budget!r}")
    tel = Telemetry.coerce(telemetry)
    bag = DiagnosticBag() if not strict_frontend else None
    with tel.span("frontend", file=filename) as front_span:
        if preprocess_source:
            from repro.frontend.preprocessor import preprocess

            source = preprocess(source, filename, diagnostics=bag)
        if inline:
            from repro.frontend import parse
            from repro.frontend.inliner import inline_unit
            from repro.ir.program import ProgramBuilder

            unit, _count = inline_unit(parse(source, filename, bag))
            program = ProgramBuilder(unit, diagnostics=bag).build()
        else:
            program = build_program(
                source, filename, telemetry=tel, diagnostics=bag
            )
        front_span.set(
            procedures=program.num_functions(),
            control_points=program.num_statements(),
        )
    if bag is not None and bag.errors() and not program.analyzed_functions():
        # Recovery found nothing analyzable: this is the one hard-failure
        # case of the recovery contract (everything else degrades).
        raise bag.to_error(f"no recoverable functions in {filename}")
    pre = run_preanalysis(program, telemetry=tel)

    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs > 1:
        shard_options = dict(options)
        if shard_options.pop("scheduler", "wto") != "wto":
            raise ValueError(
                "jobs > 1 requires the wto scheduler (priority ceilings "
                "are defined by WTO priorities)"
            )
        for knob, active in (
            ("fallback", bool(fallback)),
            ("checkpoint_path/resume", checkpoint_path is not None or resume),
            ("faults", faults is not None),
            ("budget", budget is not None or budget_seconds is not None),
            ("max_iterations", "max_iterations" in shard_options),
            ('on_budget != "fail"', on_budget != "fail"),
        ):
            if active:
                raise ValueError(
                    f"jobs > 1 is incompatible with {knob} (the sharded "
                    "driver owns scheduling end to end)"
                )
        from repro.analysis.shards import run_sharded

        result = run_sharded(
            program,
            pre,
            domain,
            mode,
            jobs=jobs,
            telemetry=tel,
            **shard_options,
        )
        return AnalysisRun(
            program,
            pre,
            domain,
            mode,
            result,
            result.diagnostics,
            telemetry=tel,
            frontend_diagnostics=bag if bag is not None else DiagnosticBag(),
        )

    resolved_budget = Budget.coerce(
        budget,
        max_iterations=options.pop("max_iterations", None),
        max_seconds=budget_seconds,
    )
    injector = FaultInjector.coerce(faults)

    checkpointer = None
    resume_payload = None
    if checkpoint_path is not None:
        if fallback:
            raise ValueError(
                "checkpointing is incompatible with a fallback engine ladder"
            )
        from repro.runtime.checkpoint import (
            Checkpointer,
            config_fingerprint,
            load_checkpoint,
        )

        fingerprint = config_fingerprint(domain, mode, options, program)
        checkpointer = Checkpointer(
            checkpoint_path,
            every=checkpoint_every,
            fingerprint=fingerprint,
            telemetry=tel,
            heartbeat=True,
        )
        if resume:
            resume_payload = load_checkpoint(
                checkpoint_path, expect_fingerprint=fingerprint
            )
    elif resume:
        raise ValueError("resume=True requires checkpoint_path")

    stages = tuple(fallback) if fallback else (mode,)
    stage_budget = (
        resolved_budget.split(len(stages)) if resolved_budget is not None else None
    )
    engine_options = dict(options)
    if stage_budget is not None:
        engine_options["budget"] = stage_budget
    engine_options["on_budget"] = on_budget
    engine_options["watchdog"] = watchdog
    if tel.enabled:
        engine_options["telemetry"] = tel
    if injector is not None:
        engine_options["faults"] = injector
    if checkpointer is not None:
        engine_options["checkpoint"] = checkpointer
    if resume_payload is not None:
        engine_options["resume_from"] = resume_payload

    attempts: list[tuple[str, str, float, str | None]] = []
    last_exc: Exception | None = None
    for stage in stages:
        start = time.perf_counter()
        try:
            stage_options = (
                {} if stage == "pre" else engine_options
            )
            result = _run_engine(program, pre, domain, stage, stage_options)
        except (BudgetExceeded, AnalysisError) as exc:
            outcome = "budget" if isinstance(exc, BudgetExceeded) else "error"
            attempts.append((stage, outcome, time.perf_counter() - start, str(exc)))
            last_exc = exc
            continue
        diagnostics = result.diagnostics
        if diagnostics is None:
            diagnostics = Diagnostics(budget=stage_budget)
        for prior_stage, outcome, seconds, error in attempts:
            diagnostics.record_attempt(prior_stage, outcome, seconds, error=error)
        diagnostics.record_attempt(
            stage, "ok", time.perf_counter() - start, diagnostics.iterations
        )
        if stage != stages[0]:
            diagnostics.fallback_used = stage
        if resume_payload is not None:
            diagnostics.events.append(
                "resumed from checkpoint at iteration "
                f"{resume_payload['iterations']}"
            )
        return AnalysisRun(
            program,
            pre,
            domain,
            mode,
            result,
            diagnostics,
            telemetry=tel,
            frontend_diagnostics=bag if bag is not None else DiagnosticBag(),
        )
    assert last_exc is not None
    raise last_exc
