"""High-level public API.

One-call entry points for the common workflows::

    from repro import analyze

    result = analyze(source, domain="interval", mode="sparse")
    result.interval_at_exit("main", "x")     # value query
    result.overrun_reports()                 # buffer-overrun checker

``domain`` selects the abstract domain (``"interval"`` non-relational or
``"octagon"`` packed relational); ``mode`` selects the engine
(``"sparse"``, ``"base"`` with access-based localization, or ``"vanilla"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dense import DenseResult, run_dense
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.relational import (
    RelContext,
    RelResult,
    run_rel_dense,
    run_rel_sparse,
)
from repro.analysis.sparse import SparseResult, run_sparse
from repro.checkers.overrun import AccessReport, check_overruns
from repro.domains.absloc import AbsLoc, VarLoc
from repro.domains.interval import Interval
from repro.domains.value import AbsValue
from repro.ir.program import Program, build_program


@dataclass
class AnalysisRun:
    """A completed analysis with convenience queries.

    Sparse results only materialize a location's value where it is
    *defined* (Lemma 1's scope) — queries at arbitrary points therefore
    walk backward to the reaching definitions: the value at ``c`` is the
    join of the nearest ancestor states that carry the location (values
    flow unchanged along definition-free paths)."""

    program: Program
    pre: PreAnalysis
    domain: str
    mode: str
    result: DenseResult | SparseResult | RelResult

    # -- queries ---------------------------------------------------------------

    def _reaching_lookup(self, nid: int, key) -> object | None:
        """Join of the nearest states (backward over the control graph)
        that carry ``key``; None when no path defines it."""
        preds = self.result.graph.preds
        table = self.result.table
        found = None
        seen = {nid}
        frontier = [nid]
        while frontier:
            new_frontier = []
            for node in frontier:
                state = table.get(node)
                if state is not None and key in state:
                    value = state.get(key)
                    found = value if found is None else found.join(value)
                    continue  # the definition shadows anything above
                for p in preds.get(node, ()):
                    if p not in seen:
                        seen.add(p)
                        new_frontier.append(p)
            frontier = new_frontier
        return found

    def value_at(self, nid: int, loc: AbsLoc) -> AbsValue:
        """Abstract value of ``loc`` at control point ``nid`` (interval
        domain only)."""
        if self.domain != "interval":
            raise ValueError("value_at is an interval-domain query")
        state = self.result.table.get(nid)
        if state is not None and loc in state:
            return state.get(loc)
        found = self._reaching_lookup(nid, loc)
        return found if found is not None else AbsValue.bottom()

    def interval_of(self, nid: int, var: str, proc: str | None = None) -> Interval:
        """The numeric interval of a variable at a control point."""
        loc = VarLoc(var, proc)
        if self.domain == "interval":
            return self.value_at(nid, loc).itv
        ctx = RelContext(self.program, self.pre, self.result.packs)
        out = Interval.top()
        for pack in ctx.packs.packs_of(loc):
            state = self.result.table.get(nid)
            if state is not None and pack in state:
                oct_ = state.get(pack)
            else:
                oct_ = self._reaching_lookup(nid, pack)
            if oct_ is not None:
                out = out.meet(oct_.project(pack.index(loc)))
        return out

    def interval_at_exit(self, proc: str, var: str) -> Interval:
        """The interval of ``proc``'s local ``var`` (or a global when the
        name is not a local) at the procedure's exit."""
        cfg = self.program.cfgs.get(proc)
        if cfg is None or cfg.exit is None:
            raise KeyError(f"no procedure {proc!r}")
        owner: str | None = proc
        info = self.program.proc_infos.get(proc)
        if info is not None and var not in info.var_types:
            owner = None
        return self.interval_of(cfg.exit.nid, var, owner)

    def overrun_reports(self) -> list[AccessReport]:
        """Run the buffer-overrun checker over this result."""
        if self.domain != "interval":
            raise ValueError("the overrun checker needs the interval domain")
        return check_overruns(self.program, self.result)


def analyze(
    source: str,
    domain: str = "interval",
    mode: str = "sparse",
    filename: str = "<input>",
    preprocess_source: bool = False,
    inline: bool = False,
    **options,
) -> AnalysisRun:
    """Parse, lower, and analyze C-subset ``source``.

    ``preprocess_source`` runs the mini preprocessor first; ``inline``
    duplicates small non-recursive callees into their call sites (bounded
    context sensitivity). Remaining ``options`` are forwarded to the
    underlying engine (``strict``, ``widen``, ``narrowing_passes``,
    ``widening_thresholds``, ``max_iterations``, ``method``, ``bypass``).
    """
    if preprocess_source:
        from repro.frontend.preprocessor import preprocess

        source = preprocess(source, filename)
    if inline:
        from repro.frontend import parse
        from repro.frontend.inliner import inline_unit
        from repro.ir.program import ProgramBuilder

        unit, _count = inline_unit(parse(source, filename))
        program = ProgramBuilder(unit).build()
    else:
        program = build_program(source, filename)
    pre = run_preanalysis(program)
    if domain == "interval":
        if mode == "sparse":
            result = run_sparse(program, pre, **options)
        elif mode == "base":
            result = run_dense(program, pre, localize=True, **options)
        elif mode == "vanilla":
            result = run_dense(program, pre, **options)
        else:
            raise ValueError(f"unknown mode {mode!r}")
    elif domain == "octagon":
        if mode == "sparse":
            result = run_rel_sparse(program, pre, **options)
        elif mode == "base":
            result = run_rel_dense(program, pre, localize=True, **options)
        elif mode == "vanilla":
            result = run_rel_dense(program, pre, **options)
        else:
            raise ValueError(f"unknown mode {mode!r}")
    else:
        raise ValueError(f"unknown domain {domain!r}")
    return AnalysisRun(program, pre, domain, mode, result)
