"""A miniature C preprocessor.

The analyzers expect preprocessed input (the paper measures programs
"after preprocessing and macro expansion"), but real-world snippets carry
their own small macro layer. This module handles the common subset so such
code can be fed to :func:`repro.frontend.parse` directly:

* object-like macros: ``#define N 64``;
* function-like macros with simple textual substitution:
  ``#define MIN(a, b) ((a) < (b) ? (a) : (b))``;
* ``#undef``;
* conditional sections: ``#if 0/1``, ``#ifdef``/``#ifndef``/``#else``/
  ``#endif`` (conditions restricted to literals, ``defined(X)`` and
  object-macro names expanding to literals);
* quoted local includes — ``#include "file.h"`` — are **resolved and
  spliced in**, relative to the including file (then any ``include_dirs``),
  with cycle detection and a diagnostic on missing headers. GNU-style
  linemarkers (``# 1 "file.h"``) bracket the spliced text so the lexer
  keeps reporting exact line:column positions in the right file;
* angle-bracket includes (``#include <stdio.h>``) are dropped (system
  headers are modelled by the analyzer's unknown-function semantics).

It is deliberately *not* a full CPP: no token pasting, stringizing,
variadic macros, or arithmetic conditional expressions beyond a constant
fold of ``&& || !`` over the forms above.

Error recovery: with a :class:`DiagnosticBag` attached, malformed
directives, unbalanced conditionals, and missing/cyclic includes are
recorded as positioned diagnostics and the offending line is dropped,
instead of raising on the first problem.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

from repro.frontend.errors import DiagnosticBag, FrontendError, Position


class PreprocessError(FrontendError):
    """Malformed directive or unbalanced conditional."""


#: bound on nested ``#include`` depth (defends against unbounded chains)
_MAX_INCLUDE_DEPTH = 32

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_DEFINE_OBJ = re.compile(rf"#\s*define\s+({_IDENT})(?:\s+(.*))?$")
_DEFINE_FUN = re.compile(rf"#\s*define\s+({_IDENT})\(([^)]*)\)\s*(.*)$")
_UNDEF = re.compile(rf"#\s*undef\s+({_IDENT})\s*$")
_IFDEF = re.compile(rf"#\s*ifdef\s+({_IDENT})\s*$")
_IFNDEF = re.compile(rf"#\s*ifndef\s+({_IDENT})\s*$")
_IF = re.compile(r"#\s*if\s+(.*)$")
_ELSE = re.compile(r"#\s*else\b")
_ELIF = re.compile(r"#\s*elif\s+(.*)$")
_ENDIF = re.compile(r"#\s*endif\b")
_INCLUDE = re.compile(r"#\s*include\b")
_INCLUDE_QUOTED = re.compile(r"#\s*include\s+\"([^\"]+)\"")
_DEFINED = re.compile(rf"defined\s*\(\s*({_IDENT})\s*\)|defined\s+({_IDENT})")


@dataclass
class Macro:
    name: str
    body: str
    params: list[str] | None = None  # None = object-like


class Preprocessor:
    """Expands the supported directive subset over a source string.

    With ``diagnostics`` set, preprocessing errors are recorded there and
    the offending line is dropped; without it they raise
    :class:`PreprocessError` as before. ``include_dirs`` are extra search
    roots for quoted includes, tried after the including file's directory.
    """

    def __init__(
        self,
        defines: dict[str, str] | None = None,
        diagnostics: DiagnosticBag | None = None,
        include_dirs: tuple[str, ...] | list[str] = (),
    ) -> None:
        self.macros: dict[str, Macro] = {}
        for name, body in (defines or {}).items():
            self.macros[name] = Macro(name, body)
        self._diags = diagnostics
        self._include_dirs = tuple(include_dirs)
        # absolute paths of files currently being processed (cycle check)
        self._include_stack: list[str] = []

    def _error(self, message: str, pos: Position, source_line: str | None = None) -> None:
        """Raise in strict mode, record and continue in recovery mode."""
        exc = PreprocessError(message, pos, source_line)
        if self._diags is None:
            raise exc
        self._diags.record_exception(exc, "preprocess")

    # -- directives ---------------------------------------------------------------

    def process(self, source: str, filename: str = "<input>") -> str:
        return "\n".join(self._process_lines(source, filename)) + "\n"

    def _process_lines(self, source: str, filename: str) -> list[str]:
        real = os.path.abspath(filename) if not filename.startswith("<") else None
        if real is not None:
            self._include_stack.append(real)
        try:
            return self._process_lines_inner(source, filename)
        finally:
            if real is not None:
                self._include_stack.pop()

    def _process_lines_inner(self, source: str, filename: str) -> list[str]:
        out: list[str] = []
        # Stack of (taken_now, any_branch_taken) for nested conditionals.
        cond_stack: list[tuple[bool, bool]] = []

        def active() -> bool:
            return all(taken for taken, _ in cond_stack)

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw
            stripped = line.lstrip()
            pos = Position(lineno, 1, filename)
            if stripped.startswith("#"):
                if m := _ENDIF.match(stripped):
                    if not cond_stack:
                        self._error("#endif without #if", pos, raw)
                    else:
                        cond_stack.pop()
                elif m := _ELSE.match(stripped):
                    if not cond_stack:
                        self._error("#else without #if", pos, raw)
                    else:
                        taken, ever = cond_stack[-1]
                        cond_stack[-1] = (not ever, True)
                elif m := _ELIF.match(stripped):
                    if not cond_stack:
                        self._error("#elif without #if", pos, raw)
                    else:
                        taken, ever = cond_stack[-1]
                        now = not ever and self._eval_condition(m.group(1), pos)
                        cond_stack[-1] = (now, ever or now)
                elif m := _IFDEF.match(stripped):
                    taken = m.group(1) in self.macros
                    cond_stack.append((taken and active(), taken))
                elif m := _IFNDEF.match(stripped):
                    taken = m.group(1) not in self.macros
                    cond_stack.append((taken and active(), taken))
                elif m := _IF.match(stripped):
                    taken = self._eval_condition(m.group(1), pos)
                    cond_stack.append((taken and active(), taken))
                elif not active():
                    pass  # other directives inside a dead branch
                elif m := _INCLUDE_QUOTED.match(stripped):
                    spliced = self._splice_include(m.group(1), filename, lineno, raw)
                    if spliced is not None:
                        out.extend(spliced)
                        continue
                elif _INCLUDE.match(stripped):
                    pass  # system headers are modelled, not read
                elif m := _DEFINE_FUN.match(stripped):
                    name, params, body = m.groups()
                    plist = [p.strip() for p in params.split(",")] if params.strip() else []
                    self.macros[name] = Macro(name, body.strip(), plist)
                elif m := _DEFINE_OBJ.match(stripped):
                    name, body = m.group(1), (m.group(2) or "").strip()
                    self.macros[name] = Macro(name, body)
                elif m := _UNDEF.match(stripped):
                    self.macros.pop(m.group(1), None)
                else:
                    self._error(
                        f"unsupported directive: {stripped.split()[0]}", pos, raw
                    )
                out.append("")  # keep line numbers aligned
                continue
            if not active():
                out.append("")
                continue
            try:
                out.append(self._expand(line, pos))
            except PreprocessError as exc:
                if self._diags is None:
                    raise
                self._diags.record_exception(exc, "preprocess")
                out.append("")
        if cond_stack:
            self._error("unterminated conditional", Position(1, 1, filename))
        return out

    # -- includes -------------------------------------------------------------------

    def _resolve_include(self, name: str, including_file: str) -> str | None:
        candidates: list[str] = []
        if os.path.isabs(name):
            candidates.append(name)
        if not including_file.startswith("<"):
            base = os.path.dirname(os.path.abspath(including_file))
            candidates.append(os.path.join(base, name))
        candidates.extend(os.path.join(d, name) for d in self._include_dirs)
        for cand in candidates:
            if os.path.isfile(cand):
                return os.path.abspath(cand)
        return None

    def _splice_include(
        self, name: str, filename: str, lineno: int, raw: str
    ) -> list[str] | None:
        """Resolve and preprocess ``#include "name"``.

        Returns the spliced lines (bracketed by linemarkers so token
        positions stay exact), or ``None`` if the include could not be
        read — the caller then emits a blank placeholder line.
        """
        pos = Position(lineno, 1, filename)
        resolved = self._resolve_include(name, filename)
        if resolved is None:
            self._error(f'include file not found: "{name}"', pos, raw)
            return None
        if resolved in self._include_stack:
            self._error(f'circular include of "{name}"', pos, raw)
            return None
        if len(self._include_stack) >= _MAX_INCLUDE_DEPTH:
            self._error("includes nested too deeply", pos, raw)
            return None
        try:
            with open(resolved, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as exc:
            self._error(f'cannot read include file "{name}": {exc}', pos, raw)
            return None
        spliced = [f'# 1 "{resolved}"']
        spliced.extend(self._process_lines(text, resolved))
        # restore position tracking in the including file
        spliced.append(f'# {lineno + 1} "{filename}"')
        return spliced

    # -- expansion ------------------------------------------------------------------

    def _eval_condition(self, text: str, pos: Position) -> bool:
        """Constant-fold the restricted condition grammar."""
        expr = _DEFINED.sub(
            lambda m: "1" if (m.group(1) or m.group(2)) in self.macros else "0",
            text,
        )
        expr = self._expand(expr, pos)
        expr = expr.replace("&&", " and ").replace("||", " or ")
        expr = re.sub(r"!(?!=)", " not ", expr)
        # remaining identifiers are undefined macros: 0 per C semantics
        expr = re.sub(_IDENT, lambda m: m.group(0) if m.group(0) in ("and", "or", "not") else "0", expr)
        try:
            return bool(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307
        except Exception as exc:
            if self._diags is None:
                raise PreprocessError(
                    f"cannot evaluate condition {text!r}", pos
                ) from exc
            self._error(f"cannot evaluate condition {text!r}", pos)
            return False  # recovery: treat as false, skip the branch

    def _expand(self, line: str, pos: Position, depth: int = 0) -> str:
        if depth > 16:
            raise PreprocessError("macro expansion too deep (recursive?)", pos)
        changed = False

        def expand_obj(m: re.Match) -> str:
            nonlocal changed
            name = m.group(0)
            macro = self.macros.get(name)
            if macro is None or macro.params is not None:
                return name
            changed = True
            return macro.body

        result = []
        i = 0
        while i < len(line):
            m = re.match(_IDENT, line[i:])
            if not m:
                result.append(line[i])
                i += 1
                continue
            name = m.group(0)
            macro = self.macros.get(name)
            after = i + len(name)
            if macro is None:
                result.append(name)
                i = after
                continue
            if macro.params is None:
                result.append(macro.body)
                changed = True
                i = after
                continue
            # function-like: need an argument list
            j = after
            while j < len(line) and line[j] in " \t":
                j += 1
            if j >= len(line) or line[j] != "(":
                result.append(name)
                i = after
                continue
            args, end = self._parse_args(line, j, pos)
            if len(args) != len(macro.params) and not (
                len(macro.params) == 0 and args == [""]
            ):
                raise PreprocessError(
                    f"macro {name} expects {len(macro.params)} args, "
                    f"got {len(args)}",
                    pos,
                )
            body = macro.body
            for param, arg in zip(macro.params, args):
                body = re.sub(
                    rf"\b{re.escape(param)}\b", arg.strip(), body
                )
            result.append(body)
            changed = True
            i = end
        text = "".join(result)
        if changed:
            return self._expand(text, pos, depth + 1)
        return text

    @staticmethod
    def _parse_args(line: str, open_paren: int, pos: Position) -> tuple[list[str], int]:
        depth = 0
        args: list[str] = []
        current: list[str] = []
        i = open_paren
        while i < len(line):
            ch = line[i]
            if ch == "(":
                depth += 1
                if depth > 1:
                    current.append(ch)
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current))
                    return args, i + 1
                current.append(ch)
            elif ch == "," and depth == 1:
                args.append("".join(current))
                current = []
            else:
                current.append(ch)
            i += 1
        raise PreprocessError("unterminated macro argument list", pos)


def preprocess(
    source: str,
    filename: str = "<input>",
    defines: dict[str, str] | None = None,
    diagnostics: DiagnosticBag | None = None,
    include_dirs: tuple[str, ...] | list[str] = (),
) -> str:
    """Preprocess ``source`` with optional predefined macros.

    With ``diagnostics``, preprocessing errors are recorded there instead
    of raised. Quoted includes resolve relative to ``filename``'s
    directory, then each of ``include_dirs``.
    """
    return Preprocessor(defines, diagnostics, include_dirs).process(source, filename)
