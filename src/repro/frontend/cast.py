"""Abstract syntax tree for the C subset.

Node classes are small frozen-ish dataclasses; each carries a source
:class:`Position`. The tree is deliberately close to the concrete syntax —
desugaring (e.g. ``a[i]`` into pointer arithmetic, ``for`` into ``while``)
happens during IR lowering, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.ctypes import CType, StructLayout
from repro.frontend.errors import Position


@dataclass
class Node:
    """Common base carrying the source position."""

    pos: Position = field(default_factory=Position, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class Ident(Expr):
    name: str


@dataclass
class BinOp(Expr):
    """Binary operator application; ``op`` is the C spelling (``+``, ``<=``,
    ``&&``, ...)."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    """Unary operator: ``-``, ``+``, ``!``, ``~``, ``&``, ``*``."""

    op: str
    operand: Expr


@dataclass
class IncDec(Expr):
    """``++``/``--`` in prefix or postfix position."""

    op: str  # "++" or "--"
    operand: Expr
    prefix: bool


@dataclass
class Assign(Expr):
    """Assignment expression; ``op`` is ``=`` or a compound form (``+=``)."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Call(Expr):
    func: Expr
    args: list[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class FieldAccess(Expr):
    """``base.field`` (``arrow`` False) or ``base->field`` (``arrow`` True)."""

    base: Expr
    fieldname: str
    arrow: bool


@dataclass
class Cast(Expr):
    to_type: CType
    operand: Expr


@dataclass
class SizeOf(Expr):
    """``sizeof``; either of a type or of an expression."""

    of_type: CType | None = None
    of_expr: Expr | None = None


@dataclass
class CommaExpr(Expr):
    parts: list[Expr]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class DeclStmt(Stmt):
    """A local declaration: possibly several declarators with initializers."""

    decls: list[VarDecl]


@dataclass
class Compound(Stmt):
    body: list[Stmt]


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Stmt | None
    cond: Expr | None
    step: Expr | None
    body: Stmt


@dataclass
class Switch(Stmt):
    scrutinee: Expr
    cases: list[SwitchCase]


@dataclass
class SwitchCase(Node):
    """One ``case``/``default`` arm; ``value`` None means ``default``.
    Fallthrough is preserved by the lowering."""

    value: Expr | None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Goto(Stmt):
    label: str


@dataclass
class Labeled(Stmt):
    label: str
    stmt: Stmt


@dataclass
class EmptyStmt(Stmt):
    pass


# --------------------------------------------------------------------------
# Declarations / top level
# --------------------------------------------------------------------------


@dataclass
class VarDecl(Node):
    name: str
    ctype: CType
    init: Expr | None = None
    is_static: bool = False


@dataclass
class ParamDecl(Node):
    name: str
    ctype: CType


@dataclass
class FuncDef(Node):
    name: str
    ret_type: CType
    params: list[ParamDecl]
    body: Compound
    variadic: bool = False
    is_static: bool = False
    #: body failed to parse (or lower) under error recovery — ``body`` is
    #: empty and IR lowering substitutes a sound havoc stub
    quarantined: bool = False


@dataclass
class FuncDecl(Node):
    """A prototype without a body (external function)."""

    name: str
    ret_type: CType
    params: list[ParamDecl]
    variadic: bool = False


@dataclass
class TranslationUnit(Node):
    """A parsed source file: globals, struct layouts, functions."""

    globals: list[VarDecl] = field(default_factory=list)
    structs: dict[str, StructLayout] = field(default_factory=dict)
    functions: list[FuncDef] = field(default_factory=list)
    prototypes: list[FuncDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDef | None:
        for f in self.functions:
            if f.name == name:
                return f
        return None
