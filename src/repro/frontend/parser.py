"""Recursive-descent parser for the C subset.

The grammar covers the language the analyzer handles:

* top level: struct definitions, typedefs, global variable declarations,
  function prototypes and definitions;
* statements: compound, ``if``/``else``, ``while``, ``do``, ``for``,
  ``switch`` (with fallthrough), ``break``, ``continue``, ``return``,
  ``goto``/labels, expression statements, local declarations;
* expressions: the full C operator precedence ladder minus bit-field,
  compound-literal and designated-initializer forms.

Type names are the builtin specifiers, ``struct TAG`` and names introduced
by ``typedef`` — the classic lexer-feedback problem is solved by tracking
typedef names in the parser state.

Panic-mode error recovery (ISSUE 6): constructed with a
:class:`DiagnosticBag`, the parser records every :class:`ParseError` as a
positioned diagnostic and keeps going instead of raising on the first one.

* **Top level** — a malformed declaration synchronizes forward to the next
  ``;`` or ``}`` at brace depth zero (or the next token that can start a
  declaration) and parsing resumes there.
* **Function bodies** — dropping individual statements from a body would
  be *unsound* (the analysis would reason about a program that skips side
  effects), so an unparseable body **quarantines the whole function**: the
  braces are skipped in balance, and the function is kept as a
  ``FuncDef`` with ``quarantined=True`` and an empty body. IR lowering
  replaces it with an explicit havoc stub (globals ⊤, return ⊤) so every
  call boundary stays sound, and a note is recorded in the bag.

Without a bag the historical fail-fast behaviour is unchanged.
"""

from __future__ import annotations

from repro.frontend import cast as A
from repro.frontend.ctypes import (
    INT,
    VOID,
    ArrayType,
    CType,
    FuncType,
    IntType,
    PointerType,
    StructLayout,
    StructType,
)
from repro.frontend.errors import DiagnosticBag, ParseError, Position
from repro.frontend.lexer import _LINEMARKER, Token, TokenKind, tokenize


def _source_line_map(
    lines: list[str], filename: str
) -> dict[tuple[str, int], int]:
    """Map ``(filename, line)`` positions to raw indices into ``lines``.

    The preprocessor splices ``#include`` bodies bracketed by GNU
    linemarkers, so a token's reported position no longer equals its
    physical index in the text being parsed; this walks the lines once,
    tracking the markers, so caret diagnostics can recover the text —
    including lines that physically live in an included header.
    """
    mapping: dict[tuple[str, int], int] = {}
    cur_file, cur_line = filename, 1
    for idx, text in enumerate(lines):
        m = _LINEMARKER.match(text)
        if m is not None:
            cur_line = int(m.group(1))
            if m.group(2) is not None:
                cur_file = m.group(2)
            continue
        mapping.setdefault((cur_file, cur_line), idx)
        cur_line += 1
    return mapping

_TYPE_KEYWORDS = frozenset(
    {
        "int",
        "char",
        "long",
        "short",
        "unsigned",
        "signed",
        "float",
        "double",
        "void",
        "struct",
        "union",
        "enum",
        "const",
        "volatile",
    }
)

_STORAGE_KEYWORDS = frozenset({"static", "extern", "register", "auto"})

_ASSIGN_OPS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
)

#: combined statement/expression nesting depth bound — deep enough for any
#: realistic C, shallow enough that fuzzer-made ``((((...`` towers raise a
#: clean :class:`ParseError` instead of blowing the Python stack
_MAX_NEST = 64


class Parser:
    """Parses a token stream into a :class:`TranslationUnit`.

    With ``diagnostics`` set, parse errors are recorded and recovered from
    (panic-mode synchronization at top level, per-function quarantine for
    bodies); without it they raise :class:`ParseError` as before.
    ``source_lines`` (the raw input split on newlines) enables caret
    rendering on every diagnostic.
    """

    def __init__(
        self,
        tokens: list[Token],
        diagnostics: DiagnosticBag | None = None,
        source_lines: list[str] | None = None,
        filename: str = "<input>",
    ) -> None:
        self._toks = tokens
        self._i = 0
        self._typedefs: dict[str, CType] = {}
        self._structs: dict[str, StructLayout] = {}
        self._enum_consts: dict[str, int] = {}
        self._diags = diagnostics
        self._source_lines = source_lines
        self._filename = filename
        self._depth = 0
        self._line_map: dict[tuple[str, int], int] | None = None

    # -- token stream helpers ------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        j = min(self._i + offset, len(self._toks) - 1)
        return self._toks[j]

    def _next(self) -> Token:
        tok = self._toks[self._i]
        if tok.kind is not TokenKind.EOF:
            self._i += 1
        return tok

    def _at(self, text: str) -> bool:
        tok = self._peek()
        return tok.text == text and tok.kind in (TokenKind.PUNCT, TokenKind.KEYWORD)

    def _accept(self, text: str) -> Token | None:
        if self._at(text):
            return self._next()
        return None

    def _line_text(self, pos: Position) -> str | None:
        if self._source_lines is None:
            return None
        if self._line_map is None:
            self._line_map = _source_line_map(self._source_lines, self._filename)
        idx = self._line_map.get((pos.filename, pos.line))
        return self._source_lines[idx] if idx is not None else None

    def _error(self, message: str, pos: Position) -> ParseError:
        """Build (not raise) a caret-capable :class:`ParseError`."""
        return ParseError(message, pos, self._line_text(pos))

    def _expect(self, text: str) -> Token:
        tok = self._peek()
        if not self._at(text):
            raise self._error(f"expected {text!r}, found {tok.text!r}", tok.pos)
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise self._error(
                f"expected identifier, found {tok.text!r}", tok.pos
            )
        return self._next()

    def _pos(self) -> Position:
        return self._peek().pos

    def _enter(self) -> None:
        self._depth += 1
        if self._depth > _MAX_NEST:
            raise self._error("construct nested too deeply", self._pos())

    def _leave(self) -> None:
        self._depth -= 1

    # -- type detection -------------------------------------------------------

    def _starts_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind is TokenKind.KEYWORD and tok.text in (
            _TYPE_KEYWORDS | _STORAGE_KEYWORDS | {"typedef"}
        ):
            return True
        return tok.kind is TokenKind.IDENT and tok.text in self._typedefs

    # -- top level --------------------------------------------------------------

    def parse_translation_unit(self) -> A.TranslationUnit:
        unit = A.TranslationUnit(pos=self._pos())
        unit.structs = self._structs
        while self._peek().kind is not TokenKind.EOF:
            start = self._i
            self._depth = 0
            if self._diags is None:
                self._parse_external_decl(unit)
                continue
            try:
                self._parse_external_decl(unit)
            except ParseError as exc:
                self._diags.record_exception(exc, "parse")
                self._synchronize(start)
        return unit

    def _synchronize(self, start: int) -> None:
        """Panic-mode recovery: skip to the next plausible declaration.

        Consumes forward from the error point, tracking brace depth, until
        just past a ``;`` or ``}`` at depth zero, or just before a token
        that can start a top-level declaration — whichever comes first. At
        least one token is always consumed (relative to ``start``) so
        recovery makes progress.
        """
        depth = 0
        if self._i == start:
            tok = self._next()  # forced progress — but honour what we ate
            if tok.is_punct("{"):
                depth = 1
            elif tok.is_punct("}") or tok.is_punct(";"):
                return  # already a synchronization point
        while self._peek().kind is not TokenKind.EOF:
            tok = self._peek()
            if depth == 0 and self._i > start + 1 and self._starts_type():
                return
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                if depth == 0:
                    self._next()
                    return
                depth -= 1
            elif tok.is_punct(";") and depth == 0:
                self._next()
                return
            self._next()

    def _skip_balanced_braces(self) -> None:
        """Consume a ``{``-opened block, balancing nested braces (for
        quarantined function bodies). Stops at EOF if unbalanced."""
        self._expect("{")
        depth = 1
        while depth and self._peek().kind is not TokenKind.EOF:
            tok = self._next()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1

    def _parse_external_decl(self, unit: A.TranslationUnit) -> None:
        pos = self._pos()
        if self._accept(";"):
            return
        is_typedef = bool(self._accept("typedef"))
        storage = self._parse_storage()
        base = self._parse_type_specifier()
        if self._accept(";"):
            # bare "struct S { ... };" or "enum {...};" definition
            return
        if is_typedef:
            while True:
                name, ctype = self._parse_declarator(base)
                self._typedefs[name] = ctype
                if not self._accept(","):
                    break
            self._expect(";")
            return
        first = True
        while True:
            name, ctype = self._parse_declarator(base)
            if first and isinstance(ctype, FuncType) and self._at("{"):
                # Capture params before the body: local declarators inside
                # the body reuse the declarator machinery and would clobber
                # the pending-parameter slot.
                params = self._pending_params or []
                body_start = self._i
                quarantined = False
                if self._diags is None:
                    body = self._parse_compound()
                else:
                    try:
                        body = self._parse_compound()
                    except ParseError as exc:
                        self._diags.record_exception(exc, "parse")
                        # Soundness: a body with statements dropped would
                        # analyze a different program — quarantine instead.
                        self._i = body_start
                        self._skip_balanced_braces()
                        body = A.Compound([], pos=pos)
                        quarantined = True
                        self._diags.note(
                            f"function {name!r} quarantined: body failed to "
                            "parse; calls are modelled by a havoc stub "
                            "(globals and return value assumed unknown)",
                            pos,
                        )
                unit.functions.append(
                    A.FuncDef(
                        name=name,
                        ret_type=ctype.ret,
                        params=params,
                        body=body,
                        variadic=ctype.variadic,
                        is_static="static" in storage,
                        quarantined=quarantined,
                        pos=pos,
                    )
                )
                return
            if isinstance(ctype, FuncType):
                unit.prototypes.append(
                    A.FuncDecl(
                        name=name,
                        ret_type=ctype.ret,
                        params=self._pending_params or [],
                        variadic=ctype.variadic,
                        pos=pos,
                    )
                )
            else:
                init = None
                if self._accept("="):
                    init = self._parse_initializer()
                unit.globals.append(
                    A.VarDecl(
                        name=name,
                        ctype=ctype,
                        init=init,
                        is_static="static" in storage,
                        pos=pos,
                    )
                )
            first = False
            if not self._accept(","):
                break
        self._expect(";")

    def _parse_storage(self) -> set[str]:
        storage: set[str] = set()
        while self._peek().text in _STORAGE_KEYWORDS:
            storage.add(self._next().text)
        return storage

    # -- type specifiers -----------------------------------------------------

    def _parse_type_specifier(self) -> CType:
        """Parse the base type specifier (before declarators)."""
        tok = self._peek()
        # qualifiers are skipped
        while tok.text in ("const", "volatile") or tok.text in _STORAGE_KEYWORDS:
            self._next()
            tok = self._peek()
        if tok.text == "struct" or tok.text == "union":
            return self._parse_struct_specifier()
        if tok.text == "enum":
            return self._parse_enum_specifier()
        if tok.kind is TokenKind.IDENT and tok.text in self._typedefs:
            self._next()
            return self._typedefs[tok.text]
        names: list[str] = []
        while self._peek().text in (
            "int",
            "char",
            "long",
            "short",
            "unsigned",
            "signed",
            "float",
            "double",
            "void",
            "const",
            "volatile",
        ):
            names.append(self._next().text)
        names = [n for n in names if n not in ("const", "volatile")]
        if not names:
            raise self._error(
                f"expected type specifier, found {tok.text!r}", tok.pos
            )
        if names == ["void"]:
            return VOID
        return IntType(" ".join(names))

    def _parse_struct_specifier(self) -> CType:
        self._next()  # struct / union
        tag_tok = self._peek()
        if tag_tok.kind is TokenKind.IDENT:
            self._next()
            tag = tag_tok.text
        else:
            tag = f"__anon_{tag_tok.pos.line}_{tag_tok.pos.column}"
        if self._accept("{"):
            layout = StructLayout(tag)
            self._structs[tag] = layout
            while not self._accept("}"):
                fbase = self._parse_type_specifier()
                while True:
                    fname, ftype = self._parse_declarator(fbase)
                    layout.fields.append((fname, ftype))
                    if not self._accept(","):
                        break
                self._expect(";")
        return StructType(tag)

    def _parse_enum_specifier(self) -> CType:
        self._next()  # enum
        if self._peek().kind is TokenKind.IDENT:
            self._next()
        if self._accept("{"):
            next_val = 0
            while not self._accept("}"):
                name = self._expect_ident().text
                if self._accept("="):
                    next_val = self._parse_const_int()
                self._enum_consts[name] = next_val
                next_val += 1
                if not self._accept(","):
                    self._expect("}")
                    break
        return INT

    def _parse_const_int(self) -> int:
        """Parse a constant expression and fold it to an int."""
        expr = self._parse_conditional()
        value = fold_const(expr, self._enum_consts)
        if value is None:
            raise self._error("expected integer constant expression", expr.pos)
        return value

    # -- declarators -----------------------------------------------------------

    def _parse_declarator(self, base: CType) -> tuple[str, CType]:
        """Parse ``*`` prefixes, a name, and array/function suffixes.

        Function declarators stash their parameter list in
        ``self._pending_params`` (used by the caller for function defs).
        """
        self._pending_params: list[A.ParamDecl] | None = None
        ty = base
        while self._accept("*"):
            while self._peek().text in ("const", "volatile"):
                self._next()
            ty = PointerType(ty)
        if self._accept("("):
            # Parenthesized declarator, e.g. function pointers: (*fp)(...)
            name, inner = self._parse_declarator(INT)  # placeholder base
            self._expect(")")
            suffixed = self._parse_declarator_suffix(ty)
            # Substitute: the inner declarator wraps the suffixed type.
            return name, _substitute_base(inner, suffixed)
        name_tok = self._expect_ident()
        ty = self._parse_declarator_suffix(ty)
        return name_tok.text, ty

    def _parse_declarator_suffix(self, ty: CType) -> CType:
        if self._at("("):
            self._next()
            params: list[A.ParamDecl] = []
            variadic = False
            if not self._at(")"):
                while True:
                    if self._accept("..."):
                        variadic = True
                        break
                    ppos = self._pos()
                    pbase = self._parse_type_specifier()
                    if isinstance(pbase, (IntType,)) or not self._at(")"):
                        pass
                    if self._peek().kind is TokenKind.IDENT or self._at("*") or self._at("("):
                        pname, ptype = self._parse_declarator(pbase)
                    else:
                        pname, ptype = "", pbase
                    if not (isinstance(ptype, type(VOID)) and pname == ""):
                        params.append(A.ParamDecl(name=pname, ctype=ptype, pos=ppos))
                    if not self._accept(","):
                        break
            self._expect(")")
            params = [p for p in params if not isinstance(p.ctype, type(VOID))]
            self._pending_params = params
            return FuncType(ty, tuple(p.ctype for p in params), variadic)
        dims: list[int | None] = []
        while self._accept("["):
            if self._at("]"):
                dims.append(None)
            else:
                dims.append(self._parse_const_int())
            self._expect("]")
        for length in reversed(dims):
            ty = ArrayType(ty, length)
        return ty

    def _parse_initializer(self) -> A.Expr:
        if self._at("{"):
            pos = self._pos()
            self._next()
            parts: list[A.Expr] = []
            while not self._accept("}"):
                parts.append(self._parse_initializer())
                if not self._accept(","):
                    self._expect("}")
                    break
            return A.CommaExpr(parts, pos=pos)
        return self._parse_assignment()

    # -- statements ---------------------------------------------------------------

    def _parse_compound(self) -> A.Compound:
        pos = self._pos()
        self._expect("{")
        body: list[A.Stmt] = []
        while not self._accept("}"):
            body.append(self._parse_statement())
        return A.Compound(body, pos=pos)

    def _parse_statement(self) -> A.Stmt:
        self._enter()
        try:
            return self._parse_statement_inner()
        finally:
            self._leave()

    def _parse_statement_inner(self) -> A.Stmt:
        pos = self._pos()
        tok = self._peek()
        if self._at("{"):
            return self._parse_compound()
        if self._accept(";"):
            return A.EmptyStmt(pos=pos)
        if tok.kind is TokenKind.KEYWORD:
            handler = {
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do,
                "for": self._parse_for,
                "switch": self._parse_switch,
                "return": self._parse_return,
                "goto": self._parse_goto,
            }.get(tok.text)
            if handler is not None:
                return handler()
            if tok.text == "break":
                self._next()
                self._expect(";")
                return A.Break(pos=pos)
            if tok.text == "continue":
                self._next()
                self._expect(";")
                return A.Continue(pos=pos)
        if (
            tok.kind is TokenKind.IDENT
            and self._peek(1).is_punct(":")
            and not self._peek(2).is_punct(":")
        ):
            self._next()
            self._next()
            return A.Labeled(tok.text, self._parse_statement(), pos=pos)
        if self._starts_type():
            return self._parse_decl_stmt()
        expr = self._parse_expr()
        self._expect(";")
        return A.ExprStmt(expr, pos=pos)

    def _parse_decl_stmt(self) -> A.DeclStmt:
        pos = self._pos()
        storage = self._parse_storage()
        base = self._parse_type_specifier()
        decls: list[A.VarDecl] = []
        if not self._at(";"):
            while True:
                name, ctype = self._parse_declarator(base)
                init = None
                if self._accept("="):
                    init = self._parse_initializer()
                decls.append(
                    A.VarDecl(
                        name=name,
                        ctype=ctype,
                        init=init,
                        is_static="static" in storage,
                        pos=pos,
                    )
                )
                if not self._accept(","):
                    break
        self._expect(";")
        return A.DeclStmt(decls, pos=pos)

    def _parse_if(self) -> A.Stmt:
        pos = self._pos()
        self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then = self._parse_statement()
        otherwise = None
        if self._accept("else"):
            otherwise = self._parse_statement()
        return A.If(cond, then, otherwise, pos=pos)

    def _parse_while(self) -> A.Stmt:
        pos = self._pos()
        self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._parse_statement()
        return A.While(cond, body, pos=pos)

    def _parse_do(self) -> A.Stmt:
        pos = self._pos()
        self._expect("do")
        body = self._parse_statement()
        self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        self._expect(";")
        return A.DoWhile(body, cond, pos=pos)

    def _parse_for(self) -> A.Stmt:
        pos = self._pos()
        self._expect("for")
        self._expect("(")
        init: A.Stmt | None = None
        if not self._at(";"):
            if self._starts_type():
                init = self._parse_decl_stmt()
            else:
                init = A.ExprStmt(self._parse_expr(), pos=pos)
                self._expect(";")
        else:
            self._next()
        cond = None if self._at(";") else self._parse_expr()
        self._expect(";")
        step = None if self._at(")") else self._parse_expr()
        self._expect(")")
        body = self._parse_statement()
        return A.For(init, cond, step, body, pos=pos)

    def _parse_switch(self) -> A.Stmt:
        pos = self._pos()
        self._expect("switch")
        self._expect("(")
        scrutinee = self._parse_expr()
        self._expect(")")
        self._expect("{")
        cases: list[A.SwitchCase] = []
        current: A.SwitchCase | None = None
        while not self._accept("}"):
            if self._at("case"):
                cpos = self._pos()
                self._next()
                value = self._parse_conditional()
                self._expect(":")
                current = A.SwitchCase(value, [], pos=cpos)
                cases.append(current)
            elif self._at("default"):
                cpos = self._pos()
                self._next()
                self._expect(":")
                current = A.SwitchCase(None, [], pos=cpos)
                cases.append(current)
            else:
                if current is None:
                    raise self._error("statement before first case label", self._pos())
                current.body.append(self._parse_statement())
        return A.Switch(scrutinee, cases, pos=pos)

    def _parse_return(self) -> A.Stmt:
        pos = self._pos()
        self._expect("return")
        value = None if self._at(";") else self._parse_expr()
        self._expect(";")
        return A.Return(value, pos=pos)

    def _parse_goto(self) -> A.Stmt:
        pos = self._pos()
        self._expect("goto")
        label = self._expect_ident().text
        self._expect(";")
        return A.Goto(label, pos=pos)

    # -- expressions (precedence ladder) --------------------------------------

    def _parse_expr(self) -> A.Expr:
        pos = self._pos()
        first = self._parse_assignment()
        if not self._at(","):
            return first
        parts = [first]
        while self._accept(","):
            parts.append(self._parse_assignment())
        return A.CommaExpr(parts, pos=pos)

    def _parse_assignment(self) -> A.Expr:
        pos = self._pos()
        left = self._parse_conditional()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._next()
            right = self._parse_assignment()
            return A.Assign(tok.text, left, right, pos=pos)
        return left

    def _parse_conditional(self) -> A.Expr:
        pos = self._pos()
        cond = self._parse_binary(0)
        if self._accept("?"):
            then = self._parse_expr()
            self._expect(":")
            otherwise = self._parse_conditional()
            return A.Conditional(cond, then, otherwise, pos=pos)
        return cond

    _BINARY_LEVELS: list[tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> A.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_cast()
        ops = self._BINARY_LEVELS[level]
        pos = self._pos()
        left = self._parse_binary(level + 1)
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.PUNCT and tok.text in ops:
                # Don't treat '&' before a type keyword oddly; binary ops are
                # only valid where an operand follows, which parsing handles.
                self._next()
                right = self._parse_binary(level + 1)
                left = A.BinOp(tok.text, left, right, pos=pos)
            else:
                return left

    def _parse_cast(self) -> A.Expr:
        # Every structurally recursive expression path (parenthesized
        # subexpressions, casts, unary chains) re-enters here, so this is
        # the one place the expression nesting guard has to live.
        self._enter()
        try:
            pos = self._pos()
            if self._at("(") and self._starts_type(1):
                self._next()
                ty = self._parse_abstract_type()
                self._expect(")")
                operand = self._parse_cast()
                return A.Cast(ty, operand, pos=pos)
            return self._parse_unary()
        finally:
            self._leave()

    def _parse_abstract_type(self) -> CType:
        base = self._parse_type_specifier()
        ty = base
        while self._accept("*"):
            ty = PointerType(ty)
        while self._accept("["):
            length = None if self._at("]") else self._parse_const_int()
            self._expect("]")
            ty = ArrayType(ty, length)
        return ty

    def _parse_unary(self) -> A.Expr:
        pos = self._pos()
        tok = self._peek()
        if tok.text in ("++", "--") and tok.kind is TokenKind.PUNCT:
            self._next()
            operand = self._parse_unary()
            return A.IncDec(tok.text, operand, prefix=True, pos=pos)
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "+", "!", "~", "&", "*"):
            self._next()
            operand = self._parse_cast()
            return A.UnOp(tok.text, operand, pos=pos)
        if tok.is_keyword("sizeof"):
            self._next()
            if self._at("(") and self._starts_type(1):
                self._next()
                ty = self._parse_abstract_type()
                self._expect(")")
                return A.SizeOf(of_type=ty, pos=pos)
            operand = self._parse_unary()
            return A.SizeOf(of_expr=operand, pos=pos)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            pos = self._pos()
            if self._accept("("):
                args: list[A.Expr] = []
                if not self._at(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept(","):
                            break
                self._expect(")")
                expr = A.Call(expr, args, pos=pos)
            elif self._accept("["):
                index = self._parse_expr()
                self._expect("]")
                expr = A.Index(expr, index, pos=pos)
            elif self._accept("."):
                name = self._expect_ident().text
                expr = A.FieldAccess(expr, name, arrow=False, pos=pos)
            elif self._accept("->"):
                name = self._expect_ident().text
                expr = A.FieldAccess(expr, name, arrow=True, pos=pos)
            elif self._at("++") or self._at("--"):
                op = self._next().text
                expr = A.IncDec(op, expr, prefix=False, pos=pos)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self._peek()
        pos = tok.pos
        if tok.kind is TokenKind.NUMBER:
            self._next()
            if isinstance(tok.value, float):
                return A.FloatLit(tok.value, pos=pos)
            return A.IntLit(int(tok.value), pos=pos)
        if tok.kind is TokenKind.CHAR:
            self._next()
            return A.IntLit(int(tok.value), pos=pos)
        if tok.kind is TokenKind.STRING:
            self._next()
            parts = [str(tok.value)]
            while self._peek().kind is TokenKind.STRING:
                parts.append(str(self._next().value))
            return A.StrLit("".join(parts), pos=pos)
        if tok.kind is TokenKind.IDENT:
            self._next()
            if tok.text in self._enum_consts:
                return A.IntLit(self._enum_consts[tok.text], pos=pos)
            return A.Ident(tok.text, pos=pos)
        if self._accept("("):
            expr = self._parse_expr()
            self._expect(")")
            return expr
        raise self._error(f"expected expression, found {tok.text!r}", pos)


def _substitute_base(inner: CType, new_base: CType) -> CType:
    """Replace the placeholder base (INT) at the core of ``inner`` with
    ``new_base`` — used for parenthesized declarators like ``(*fp)(int)``."""
    if inner == INT:
        return new_base
    if isinstance(inner, PointerType):
        return PointerType(_substitute_base(inner.pointee, new_base))
    if isinstance(inner, ArrayType):
        return ArrayType(_substitute_base(inner.element, new_base), inner.length)
    if isinstance(inner, FuncType):
        return FuncType(
            _substitute_base(inner.ret, new_base), inner.params, inner.variadic
        )
    return inner


def fold_const(expr: A.Expr, env: dict[str, int] | None = None) -> int | None:
    """Best-effort constant folding for array sizes and case labels."""
    env = env or {}
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.Ident):
        return env.get(expr.name)
    if isinstance(expr, A.UnOp):
        v = fold_const(expr.operand, env)
        if v is None:
            return None
        return {"-": -v, "+": v, "!": int(not v), "~": ~v}.get(expr.op)
    if isinstance(expr, A.SizeOf):
        return 1  # abstract unit size; the analysis is unit-agnostic
    if isinstance(expr, A.BinOp):
        lhs = fold_const(expr.left, env)
        rhs = fold_const(expr.right, env)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lambda: lhs + rhs,
                "-": lambda: lhs - rhs,
                "*": lambda: lhs * rhs,
                "/": lambda: lhs // rhs if rhs else None,
                "%": lambda: lhs % rhs if rhs else None,
                "<<": lambda: lhs << rhs,
                ">>": lambda: lhs >> rhs,
                "&": lambda: lhs & rhs,
                "|": lambda: lhs | rhs,
                "^": lambda: lhs ^ rhs,
            }[expr.op]()
        except KeyError:
            return None
    return None


def parse(
    source: str,
    filename: str = "<input>",
    diagnostics: DiagnosticBag | None = None,
) -> A.TranslationUnit:
    """Parse C-subset ``source`` into a :class:`TranslationUnit`.

    With ``diagnostics``, both the lexer and the parser run in panic-mode
    recovery: all errors land in the bag (with caret snippets) and the
    returned unit contains every function that could be salvaged —
    unparseable bodies appear as quarantined ``FuncDef`` stubs.
    """
    tokens = tokenize(source, filename, diagnostics)
    parser = Parser(tokens, diagnostics, source.split("\n"), filename)
    try:
        return parser.parse_translation_unit()
    except RecursionError:
        # Defence in depth behind the _MAX_NEST guard: whatever overflows
        # the interpreter stack becomes an ordinary frontend error.
        exc = ParseError("input nested too deeply to parse", Position(1, 1, filename))
        if diagnostics is None:
            raise exc from None
        diagnostics.record_exception(exc, "parse")
        return A.TranslationUnit(pos=Position(1, 1, filename))
