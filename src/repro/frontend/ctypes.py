"""A small C type system for the supported subset.

Types matter to the analyzer mostly for three things: distinguishing scalars
from pointers/arrays/structs (which decide abstract-location shapes),
computing array extents for the buffer-overrun checker, and resolving struct
field references. All numeric types collapse onto :class:`IntType`, matching
the paper's value domain ``V = Z + L``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class CType:
    """Base class for C types. Instances are immutable and comparable."""

    def is_scalar(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False

    def is_struct(self) -> bool:
        return False


@dataclass(frozen=True)
class IntType(CType):
    """Any integral/floating scalar (int, char, long, double, ...)."""

    name: str = "int"

    def is_scalar(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VoidType(CType):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType

    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    """Array with optionally-known constant length (None = unsized)."""

    element: CType
    length: int | None = None

    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.element}[{n}]"


@dataclass(frozen=True)
class StructType(CType):
    """Reference to a struct by tag; field layout lives in the program's
    struct table so recursive structs need no special casing."""

    tag: str

    def is_struct(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"struct {self.tag}"


@dataclass(frozen=True)
class FuncType(CType):
    ret: CType
    params: tuple[CType, ...] = ()
    variadic: bool = False

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        if self.variadic:
            ps = f"{ps}, ..." if ps else "..."
        return f"{self.ret}({ps})"


@dataclass
class StructLayout:
    """Field names and types of a defined struct, in declaration order."""

    tag: str
    fields: list[tuple[str, CType]] = field(default_factory=list)

    def field_type(self, name: str) -> CType | None:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None

    def field_names(self) -> list[str]:
        return [fname for fname, _ in self.fields]


INT = IntType("int")
CHAR = IntType("char")
VOID = VoidType()


def strip_arrays(ty: CType) -> CType:
    """Decay an array type to a pointer to its element type (C semantics)."""
    if isinstance(ty, ArrayType):
        return PointerType(ty.element)
    return ty
