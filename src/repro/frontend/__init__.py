"""C-subset frontend: lexer, parser, AST, the small C type system, the
mini preprocessor, and the AST inliner."""

from repro.frontend.errors import FrontendError, LexError, ParseError, Position
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import parse


def preprocess(source: str, filename: str = "<input>", defines=None) -> str:
    """Shorthand for :func:`repro.frontend.preprocessor.preprocess`
    (imported lazily; most callers feed already-preprocessed code)."""
    from repro.frontend.preprocessor import preprocess as _pp

    return _pp(source, filename, defines)


__all__ = [
    "FrontendError",
    "LexError",
    "ParseError",
    "Position",
    "Token",
    "TokenKind",
    "tokenize",
    "parse",
    "preprocess",
]
