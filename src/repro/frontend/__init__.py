"""C-subset frontend: lexer, parser, AST, the small C type system, the
mini preprocessor, and the AST inliner.

Error recovery: every stage accepts an optional
:class:`~repro.frontend.errors.DiagnosticBag`; with one attached, malformed
input is recorded as positioned caret diagnostics and processing continues
(panic-mode synchronization at top level, per-function quarantine for
unparseable bodies) instead of raising on the first problem.
"""

from repro.frontend.errors import (
    Diagnostic,
    DiagnosticBag,
    FrontendError,
    LexError,
    ParseError,
    Position,
    caret_snippet,
)
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.parser import parse


def preprocess(source: str, filename: str = "<input>", defines=None,
               diagnostics=None, include_dirs=()) -> str:
    """Shorthand for :func:`repro.frontend.preprocessor.preprocess`
    (imported lazily; most callers feed already-preprocessed code)."""
    from repro.frontend.preprocessor import preprocess as _pp

    return _pp(source, filename, defines,
               diagnostics=diagnostics, include_dirs=include_dirs)


__all__ = [
    "Diagnostic",
    "DiagnosticBag",
    "FrontendError",
    "LexError",
    "ParseError",
    "Position",
    "Token",
    "TokenKind",
    "caret_snippet",
    "tokenize",
    "parse",
    "preprocess",
]
