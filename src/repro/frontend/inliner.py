"""AST-level function inlining.

Context-insensitive analysis merges every call site of a procedure; the
classical low-tech countermeasure is to *duplicate* small callees into
their call sites before analysis — each copy then gets its own abstract
locations, i.e. bounded context sensitivity by cloning. This pass
implements it on the AST:

* a call ``x = f(a, b)`` to an inlinable function becomes a block that
  binds renamed parameter copies, executes a renamed body copy, and
  assigns the returned expression to a fresh result variable;
* ``return e`` inside the copy becomes ``__ret = e; goto __out;`` —
  multiple returns are supported via a synthetic exit label;
* inlinable = defined, non-recursive, non-variadic, statement count under
  a threshold, and not address-taken (no ``&f``/function-pointer use).

The pass is semantics-preserving (checked against the concrete
interpreter in tests) and composes with every analyzer — an ablation in
``benchmarks/bench_inlining.py`` measures the precision/cost trade.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.frontend import cast as A
from repro.frontend.ctypes import FuncType
from repro.ir.callgraph import CallGraph

#: default body-size cap (statements) for inlining
DEFAULT_MAX_STMTS = 12
#: maximum rounds (nested inlining depth)
DEFAULT_MAX_DEPTH = 2


def _count_stmts(stmt: A.Stmt) -> int:
    total = 1
    if isinstance(stmt, A.Compound):
        return sum(_count_stmts(s) for s in stmt.body)
    for attr in ("then", "otherwise", "body", "stmt", "init"):
        child = getattr(stmt, attr, None)
        if isinstance(child, A.Stmt):
            total += _count_stmts(child)
    if isinstance(stmt, A.Switch):
        for case in stmt.cases:
            total += sum(_count_stmts(s) for s in case.body)
    return total


def _function_addresses_taken(unit: A.TranslationUnit) -> set[str]:
    """Functions referenced other than as a direct call target."""
    names = {f.name for f in unit.functions}
    taken: set[str] = set()

    def walk_expr(e: A.Expr | None, call_target: bool = False) -> None:
        if e is None:
            return
        if isinstance(e, A.Ident):
            if e.name in names and not call_target:
                taken.add(e.name)
        elif isinstance(e, A.Call):
            walk_expr(e.func, call_target=isinstance(e.func, A.Ident))
            for a in e.args:
                walk_expr(a)
        elif isinstance(e, A.BinOp):
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, (A.UnOp,)):
            walk_expr(e.operand)
        elif isinstance(e, A.IncDec):
            walk_expr(e.operand)
        elif isinstance(e, A.Assign):
            walk_expr(e.target)
            walk_expr(e.value)
        elif isinstance(e, A.Conditional):
            walk_expr(e.cond)
            walk_expr(e.then)
            walk_expr(e.otherwise)
        elif isinstance(e, A.Index):
            walk_expr(e.base)
            walk_expr(e.index)
        elif isinstance(e, A.FieldAccess):
            walk_expr(e.base)
        elif isinstance(e, A.Cast):
            walk_expr(e.operand)
        elif isinstance(e, A.CommaExpr):
            for p in e.parts:
                walk_expr(p)

    def walk_stmt(s: A.Stmt | None) -> None:
        if s is None:
            return
        if isinstance(s, A.Compound):
            for child in s.body:
                walk_stmt(child)
        elif isinstance(s, A.ExprStmt):
            walk_expr(s.expr)
        elif isinstance(s, A.DeclStmt):
            for d in s.decls:
                walk_expr(d.init)
        elif isinstance(s, A.If):
            walk_expr(s.cond)
            walk_stmt(s.then)
            walk_stmt(s.otherwise)
        elif isinstance(s, (A.While, A.DoWhile)):
            walk_expr(s.cond)
            walk_stmt(s.body)
        elif isinstance(s, A.For):
            walk_stmt(s.init)
            walk_expr(s.cond)
            walk_expr(s.step)
            walk_stmt(s.body)
        elif isinstance(s, A.Switch):
            walk_expr(s.scrutinee)
            for case in s.cases:
                for child in case.body:
                    walk_stmt(child)
        elif isinstance(s, A.Return):
            walk_expr(s.value)
        elif isinstance(s, A.Labeled):
            walk_stmt(s.stmt)

    for fn in unit.functions:
        walk_stmt(fn.body)
    for g in unit.globals:
        walk_expr(g.init)
    return taken


def _direct_call_graph(unit: A.TranslationUnit) -> dict[str, set[str]]:
    names = {f.name for f in unit.functions}
    graph: dict[str, set[str]] = {f.name: set() for f in unit.functions}

    def collect(e: A.Expr | None, out: set[str]) -> None:
        if e is None:
            return
        if isinstance(e, A.Call) and isinstance(e.func, A.Ident):
            if e.func.name in names:
                out.add(e.func.name)
        for attr in ("left", "right", "operand", "target", "value", "cond",
                     "then", "otherwise", "base", "index", "func"):
            child = getattr(e, attr, None)
            if isinstance(child, A.Expr):
                collect(child, out)
        for attr in ("args", "parts"):
            for child in getattr(e, attr, []) or []:
                collect(child, out)

    def walk(s: A.Stmt | None, out: set[str]) -> None:
        if s is None:
            return
        for attr in ("expr", "cond", "step", "scrutinee", "value"):
            child = getattr(s, attr, None)
            if isinstance(child, A.Expr):
                collect(child, out)
        for attr in ("then", "otherwise", "body", "stmt", "init"):
            child = getattr(s, attr, None)
            if isinstance(child, A.Stmt):
                walk(child, out)
        if isinstance(s, A.Compound):
            for child in s.body:
                walk(child, out)
        if isinstance(s, A.Switch):
            for case in s.cases:
                for child in case.body:
                    walk(child, out)
        if isinstance(s, A.DeclStmt):
            for d in s.decls:
                collect(d.init, out)

    for fn in unit.functions:
        walk(fn.body, graph[fn.name])
    return graph


def _recursive_functions(call_graph: dict[str, set[str]]) -> set[str]:
    cg = CallGraph()
    for caller, callees in call_graph.items():
        cg.callees[caller] = set(callees)
        for callee in callees:
            cg.callers.setdefault(callee, set()).add(caller)
    return cg.recursive_procs()


@dataclass
class Inliner:
    """Performs bounded inlining over a translation unit (in place on a
    deep copy — the input unit is never mutated)."""

    max_stmts: int = DEFAULT_MAX_STMTS
    max_depth: int = DEFAULT_MAX_DEPTH
    inlined_calls: int = 0
    _counter: int = 0
    _unit: A.TranslationUnit = field(default=None, repr=False)  # type: ignore

    def run(self, unit: A.TranslationUnit) -> A.TranslationUnit:
        unit = copy.deepcopy(unit)
        self._unit = unit
        for _round in range(self.max_depth):
            taken = _function_addresses_taken(unit)
            recursive = _recursive_functions(_direct_call_graph(unit))
            candidates = {
                f.name: f
                for f in unit.functions
                if f.name not in taken
                and f.name not in recursive
                and not f.variadic
                # a quarantined body is an *empty placeholder*, not the real
                # code — inlining it would silently erase the havoc stub
                and not f.quarantined
                and _count_stmts(f.body) <= self.max_stmts
            }
            if not candidates:
                break
            before = self.inlined_calls
            for fn in unit.functions:
                fn.body = self._inline_in_stmt(fn.body, candidates, fn.name)
            if self.inlined_calls == before:
                break
        return unit

    # -- statement rewriting -------------------------------------------------------

    def _inline_in_stmt(self, stmt, candidates, current):
        if isinstance(stmt, A.Compound):
            new_body = []
            for s in stmt.body:
                new_body.extend(self._rewrite(s, candidates, current))
            stmt.body = new_body
            return stmt
        rewritten = self._rewrite(stmt, candidates, current)
        if len(rewritten) == 1:
            return rewritten[0]
        return A.Compound(rewritten, pos=stmt.pos)

    def _rewrite(self, stmt, candidates, current) -> list[A.Stmt]:
        """Rewrite one statement; returns replacement statements."""
        prefix: list[A.Stmt] = []

        def lift_calls(e: A.Expr | None) -> A.Expr | None:
            """Replace inlinable calls inside ``e`` with result variables,
            emitting the inlined bodies into ``prefix``."""
            if e is None:
                return None
            if (
                isinstance(e, A.Call)
                and isinstance(e.func, A.Ident)
                and e.func.name in candidates
                and e.func.name != current
            ):
                args = [lift_calls(a) for a in e.args]
                result = self._expand_call(
                    candidates[e.func.name], args, prefix, e.pos
                )
                self.inlined_calls += 1
                return result
            for attr in ("left", "right", "operand", "target", "value",
                         "cond", "then", "otherwise", "base", "index"):
                child = getattr(e, attr, None)
                if isinstance(child, A.Expr):
                    setattr(e, attr, lift_calls(child))
            if isinstance(e, A.Call):
                e.args = [lift_calls(a) for a in e.args]
            if isinstance(e, A.CommaExpr):
                e.parts = [lift_calls(p) for p in e.parts]
            return e

        if isinstance(stmt, A.ExprStmt):
            stmt.expr = lift_calls(stmt.expr)
        elif isinstance(stmt, A.DeclStmt):
            for d in stmt.decls:
                d.init = lift_calls(d.init)
        elif isinstance(stmt, A.Return):
            stmt.value = lift_calls(stmt.value)
        elif isinstance(stmt, A.If):
            stmt.cond = lift_calls(stmt.cond)
            stmt.then = self._inline_in_stmt(stmt.then, candidates, current)
            if stmt.otherwise is not None:
                stmt.otherwise = self._inline_in_stmt(
                    stmt.otherwise, candidates, current
                )
        elif isinstance(stmt, A.While):
            # Calls in loop conditions stay put (would change trip
            # semantics if lifted once); bodies are fair game.
            stmt.body = self._inline_in_stmt(stmt.body, candidates, current)
        elif isinstance(stmt, A.DoWhile):
            stmt.body = self._inline_in_stmt(stmt.body, candidates, current)
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                init_rewritten = self._rewrite(stmt.init, candidates, current)
                if len(init_rewritten) == 1:
                    stmt.init = init_rewritten[0]
                else:
                    stmt.init = A.Compound(init_rewritten, pos=stmt.pos)
            stmt.body = self._inline_in_stmt(stmt.body, candidates, current)
        elif isinstance(stmt, A.Switch):
            stmt.scrutinee = lift_calls(stmt.scrutinee)
            for case in stmt.cases:
                new_body: list[A.Stmt] = []
                for s in case.body:
                    new_body.extend(self._rewrite(s, candidates, current))
                case.body = new_body
        elif isinstance(stmt, A.Compound):
            stmt = self._inline_in_stmt(stmt, candidates, current)
        elif isinstance(stmt, A.Labeled):
            stmt.stmt = self._inline_in_stmt(stmt.stmt, candidates, current)
        return prefix + [stmt]

    # -- call expansion ---------------------------------------------------------------

    def _expand_call(
        self,
        callee: A.FuncDef,
        args: list[A.Expr],
        prefix: list[A.Stmt],
        pos,
    ) -> A.Expr:
        self._counter += 1
        tag = f"__inl{self._counter}_{callee.name}"
        rename = {p.name: f"{tag}_{p.name}" for p in callee.params}
        ret_var = f"{tag}_ret"
        out_label = f"{tag}_out"

        # parameter bindings
        decls = []
        for param, arg in zip(callee.params, args):
            decls.append(
                A.VarDecl(
                    name=rename[param.name],
                    ctype=param.ctype,
                    init=arg,
                    pos=pos,
                )
            )
        prefix.append(A.DeclStmt(decls, pos=pos))
        prefix.append(
            A.DeclStmt(
                [A.VarDecl(name=ret_var, ctype=callee.ret_type, init=A.IntLit(0, pos=pos), pos=pos)],
                pos=pos,
            )
        )

        body = copy.deepcopy(callee.body)
        self._rename_and_redirect(body, rename, ret_var, out_label)
        prefix.append(body)
        prefix.append(A.Labeled(out_label, A.EmptyStmt(pos=pos), pos=pos))
        return A.Ident(ret_var, pos=pos)

    def _rename_and_redirect(self, stmt, rename, ret_var, out_label) -> None:
        """In the body copy: rename parameters/locals, and turn returns
        into ``ret_var = e; goto out``."""

        def rn_expr(e):
            if e is None:
                return None
            if isinstance(e, A.Ident):
                if e.name in rename:
                    e.name = rename[e.name]
                return e
            for attr in ("left", "right", "operand", "target", "value",
                         "cond", "then", "otherwise", "base", "index",
                         "func"):
                child = getattr(e, attr, None)
                if isinstance(child, A.Expr):
                    setattr(e, attr, rn_expr(child))
            for attr in ("args", "parts"):
                children = getattr(e, attr, None)
                if children:
                    setattr(e, attr, [rn_expr(c) for c in children])
            return e

        def rn_stmt(s):
            if isinstance(s, A.Compound):
                new_body = []
                for child in s.body:
                    new_body.extend(as_list(child))
                s.body = new_body
                return s
            return s

        def as_list(s) -> list:
            if isinstance(s, A.Return):
                assigns: list[A.Stmt] = []
                if s.value is not None:
                    assigns.append(
                        A.ExprStmt(
                            A.Assign(
                                "=",
                                A.Ident(ret_var, pos=s.pos),
                                rn_expr(s.value),
                                pos=s.pos,
                            ),
                            pos=s.pos,
                        )
                    )
                assigns.append(A.Goto(out_label, pos=s.pos))
                return assigns
            if isinstance(s, A.DeclStmt):
                for d in s.decls:
                    # locals of the copy get fresh names too
                    fresh = f"{ret_var}_{d.name}"
                    rename[d.name] = fresh
                    d.name = fresh
                    d.init = rn_expr(d.init)
                return [s]
            if isinstance(s, A.ExprStmt):
                s.expr = rn_expr(s.expr)
                return [s]
            if isinstance(s, A.If):
                s.cond = rn_expr(s.cond)
                s.then = wrap(s.then)
                if s.otherwise is not None:
                    s.otherwise = wrap(s.otherwise)
                return [s]
            if isinstance(s, (A.While, A.DoWhile)):
                s.cond = rn_expr(s.cond)
                s.body = wrap(s.body)
                return [s]
            if isinstance(s, A.For):
                if s.init is not None:
                    s.init = wrap_one(s.init)
                s.cond = rn_expr(s.cond)
                s.step = rn_expr(s.step)
                s.body = wrap(s.body)
                return [s]
            if isinstance(s, A.Switch):
                s.scrutinee = rn_expr(s.scrutinee)
                for case in s.cases:
                    new_body = []
                    for child in case.body:
                        new_body.extend(as_list(child))
                    case.body = new_body
                return [s]
            if isinstance(s, A.Compound):
                new_body = []
                for child in s.body:
                    new_body.extend(as_list(child))
                s.body = new_body
                return [s]
            if isinstance(s, A.Labeled):
                s.stmt = wrap_one(s.stmt)
                return [s]
            return [s]

        def wrap(s):
            parts = as_list(s)
            if len(parts) == 1:
                return parts[0]
            return A.Compound(parts, pos=s.pos)

        def wrap_one(s):
            return wrap(s)

        if isinstance(stmt, A.Compound):
            new_body = []
            for child in stmt.body:
                new_body.extend(as_list(child))
            stmt.body = new_body


def inline_unit(
    unit: A.TranslationUnit,
    max_stmts: int = DEFAULT_MAX_STMTS,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> tuple[A.TranslationUnit, int]:
    """Inline small non-recursive callees; returns (new unit, #calls
    inlined). The input unit is not modified."""
    inliner = Inliner(max_stmts=max_stmts, max_depth=max_depth)
    new_unit = inliner.run(unit)
    return new_unit, inliner.inlined_calls
