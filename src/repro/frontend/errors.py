"""Diagnostics for the C-subset frontend.

All frontend failures are reported through :class:`FrontendError` (or one of
its subclasses) carrying a source :class:`Position` so callers can point at
the offending token. ``FrontendError`` is part of the package-wide
:class:`repro.runtime.errors.ReproError` hierarchy, so ``except ReproError``
catches frontend and analysis failures alike.

Fault tolerance (ISSUE 6): the frontend no longer has to die on the first
malformed construct. Callers that pass a :class:`DiagnosticBag` into the
lexer/parser/preprocessor get *panic-mode recovery* — every error is
recorded as a positioned :class:`Diagnostic` (rendered with the offending
source line and a ``^`` caret) and the frontend keeps going, so one bad
declaration no longer kills a whole translation unit. Without a bag the
historical fail-fast behaviour is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.errors import ReproError


@dataclass(frozen=True, order=True)
class Position:
    """A location in a source file: 1-based line and column."""

    line: int = 1
    column: int = 1
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


def caret_snippet(source_line: str, column: int) -> str:
    """Render ``source_line`` with a ``^`` caret under ``column`` (1-based).

    Tabs in the prefix are preserved in the caret line so the marker stays
    visually aligned in terminals that expand tabs.
    """
    prefix = source_line[: max(column - 1, 0)]
    pad = "".join("\t" if ch == "\t" else " " for ch in prefix)
    return f"  {source_line}\n  {pad}^"


class FrontendError(ReproError):
    """Base class for all lexing/parsing/typing errors.

    When the offending ``source_line`` is known, ``str(exc)`` renders a
    caret diagnostic::

        file.c:3:13: error: expected ';', found '}'
          int x = 1 }
                    ^
    """

    def __init__(
        self,
        message: str,
        pos: Position | None = None,
        source_line: str | None = None,
    ) -> None:
        self.message = message
        self.pos = pos or Position()
        self.source_line = source_line
        super().__init__(f"{self.pos}: {message}")

    def __str__(self) -> str:
        head = f"{self.pos}: error: {self.message}"
        if self.source_line is None:
            return head
        return head + "\n" + caret_snippet(self.source_line, self.pos.column)


class LexError(FrontendError):
    """An invalid character sequence was encountered while tokenizing."""


class ParseError(FrontendError):
    """The token stream does not match the C-subset grammar."""


class LoweringError(FrontendError):
    """A well-formed AST uses a construct the IR lowering does not support."""


@dataclass(frozen=True)
class Diagnostic:
    """One recovered frontend problem: where, what, and how bad.

    ``severity`` is ``"error"`` for recovered lex/parse/preprocess/lowering
    failures and ``"note"`` for informational records (e.g. the soundness
    note attached when a function is quarantined). ``kind`` names the stage
    that produced it (``lex``, ``parse``, ``preprocess``, ``lowering``,
    ``quarantine``).
    """

    message: str
    pos: Position = field(default_factory=Position)
    kind: str = "parse"
    severity: str = "error"
    source_line: str | None = None

    def __str__(self) -> str:
        head = f"{self.pos}: {self.severity}: {self.message}"
        if self.source_line is None or self.severity != "error":
            return head
        return head + "\n" + caret_snippet(self.source_line, self.pos.column)


class DiagnosticBag:
    """An accumulator for recovered frontend diagnostics.

    Passing a bag into the lexer/parser/preprocessor switches them from
    fail-fast to panic-mode recovery: problems are appended here (in source
    order) instead of raised, and processing continues past them.
    """

    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []

    # -- recording -----------------------------------------------------------

    def add(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def error(
        self,
        message: str,
        pos: Position | None = None,
        kind: str = "parse",
        source_line: str | None = None,
    ) -> Diagnostic:
        return self.add(
            Diagnostic(message, pos or Position(), kind, "error", source_line)
        )

    def note(
        self,
        message: str,
        pos: Position | None = None,
        kind: str = "quarantine",
    ) -> Diagnostic:
        return self.add(Diagnostic(message, pos or Position(), kind, "note"))

    def record_exception(self, exc: FrontendError, kind: str) -> Diagnostic:
        """Record a caught :class:`FrontendError` as a diagnostic."""
        return self.add(
            Diagnostic(exc.message, exc.pos, kind, "error", exc.source_line)
        )

    # -- queries -------------------------------------------------------------

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    def notes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "note"]

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.errors())

    def render(self) -> str:
        """All diagnostics, caret snippets included, one block per entry."""
        return "\n".join(str(d) for d in self.diagnostics)

    def summary(self) -> str:
        errors = len(self.errors())
        notes = len(self.notes())
        parts = [f"{errors} error{'s' if errors != 1 else ''}"]
        if notes:
            parts.append(f"{notes} note{'s' if notes != 1 else ''}")
        return ", ".join(parts)

    def to_error(self, context: str = "") -> FrontendError:
        """Collapse the bag into one raisable :class:`FrontendError`.

        Used for the hard-failure path (a file with zero recoverable
        functions): the first error's position and source line lead, and
        the total count is appended so nothing is silently dropped.
        """
        errors = self.errors()
        if not errors:
            return FrontendError(context or "frontend failed")
        first = errors[0]
        message = first.message
        if context:
            message = f"{context}: {message}"
        if len(errors) > 1:
            message += f" (+{len(errors) - 1} more diagnostics)"
        return FrontendError(message, first.pos, first.source_line)
