"""Diagnostics for the C-subset frontend.

All frontend failures are reported through :class:`FrontendError` (or one of
its subclasses) carrying a source :class:`Position` so callers can point at
the offending token. ``FrontendError`` is part of the package-wide
:class:`repro.runtime.errors.ReproError` hierarchy, so ``except ReproError``
catches frontend and analysis failures alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.errors import ReproError


@dataclass(frozen=True, order=True)
class Position:
    """A location in a source file: 1-based line and column."""

    line: int = 1
    column: int = 1
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class FrontendError(ReproError):
    """Base class for all lexing/parsing/typing errors."""

    def __init__(self, message: str, pos: Position | None = None) -> None:
        self.message = message
        self.pos = pos or Position()
        super().__init__(f"{self.pos}: {message}")


class LexError(FrontendError):
    """An invalid character sequence was encountered while tokenizing."""


class ParseError(FrontendError):
    """The token stream does not match the C-subset grammar."""


class LoweringError(FrontendError):
    """A well-formed AST uses a construct the IR lowering does not support."""
