"""Hand-written lexer for the C subset.

The lexer produces a flat list of :class:`Token` objects. It understands:

* integer literals (decimal, hex, octal, with ``u``/``l`` suffixes),
* character and string literals with the usual escapes,
* all C operators and punctuation used by the grammar,
* keywords of the supported subset,
* ``//`` and ``/* */`` comments (skipped),
* preprocessor lines (a leading ``#`` skips to end of line) — benchmark
  sources are expected to be pre-expanded, mirroring the paper's setup where
  programs are analyzed "after preprocessing and macro expansion". GNU-style
  linemarkers (``# 12 "file.h"``) *are* interpreted: they reset the
  line/filename the lexer stamps onto subsequent tokens, which is how the
  mini preprocessor keeps positions exact across ``#include`` expansion.

Error recovery: constructed with a :class:`DiagnosticBag`, the lexer
records malformed input as positioned diagnostics and keeps scanning
(skipping the offending character, or closing an unterminated literal at
the end of its line) instead of raising on the first problem. Without a
bag the historical fail-fast behaviour is unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto

from repro.frontend.errors import DiagnosticBag, LexError, Position


class TokenKind(Enum):
    """Classification of a lexed token."""

    IDENT = auto()
    NUMBER = auto()
    CHAR = auto()
    STRING = auto()
    KEYWORD = auto()
    PUNCT = auto()
    EOF = auto()


KEYWORDS = frozenset(
    {
        "int",
        "char",
        "long",
        "short",
        "unsigned",
        "signed",
        "float",
        "double",
        "void",
        "struct",
        "union",
        "enum",
        "typedef",
        "static",
        "extern",
        "const",
        "volatile",
        "register",
        "auto",
        "if",
        "else",
        "while",
        "for",
        "do",
        "switch",
        "case",
        "default",
        "break",
        "continue",
        "return",
        "goto",
        "sizeof",
    }
)

# Longest-match-first operator table.
_PUNCTS_3 = ("<<=", ">>=", "...")
_PUNCTS_2 = (
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "^=",
    "|=",
)
_PUNCTS_1 = "+-*/%&|^~!<>=?:;,.(){}[]"

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}

#: GNU linemarker / ``#line`` directive: ``# 12 "file"`` or ``#line 12``.
_LINEMARKER = re.compile(r"#\s*(?:line\s+)?(\d+)(?:\s+\"([^\"]*)\")?")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the literal text for identifiers/punctuation and the
    decoded value for numbers/characters/strings.
    """

    kind: TokenKind
    text: str
    pos: Position
    value: object = None

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.pos})"


class Lexer:
    """Tokenizes a source string into a list of :class:`Token`.

    With ``diagnostics`` set, lexical errors are recorded and recovered
    from; without it they raise :class:`LexError` as before.
    """

    def __init__(
        self,
        source: str,
        filename: str = "<input>",
        diagnostics: DiagnosticBag | None = None,
    ) -> None:
        self._src = source
        self._filename = filename
        self._i = 0
        self._line = 1
        self._col = 1
        self._diags = diagnostics
        self._lines = source.split("\n")

    # -- low-level cursor helpers ------------------------------------------

    def _pos(self) -> Position:
        return Position(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        j = self._i + offset
        return self._src[j] if j < len(self._src) else ""

    def _advance(self, n: int = 1) -> str:
        taken = self._src[self._i : self._i + n]
        for ch in taken:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._i += n
        return taken

    def _at_end(self) -> bool:
        return self._i >= len(self._src)

    def _line_text(self, pos: Position) -> str | None:
        """The raw source line at ``pos`` (for caret diagnostics).

        Only valid while the lexer is still inside the file it started on
        (a linemarker retargets positions into another file whose text we
        do not have).
        """
        if pos.filename != self._filename:
            return None
        index = pos.line - 1
        # a linemarker may have shifted line numbers away from raw indices
        if pos.filename == self._marker_file and self._marker_delta:
            index -= self._marker_delta
        if 0 <= index < len(self._lines):
            return self._lines[index]
        return None

    #: line-number shift introduced by the last linemarker (see _line_text)
    _marker_delta: int = 0
    _marker_file: str = ""

    def _error(self, message: str, pos: Position) -> None:
        """Raise in strict mode, record and continue in recovery mode."""
        exc = LexError(message, pos, self._line_text(pos))
        if self._diags is None:
            raise exc
        self._diags.record_exception(exc, "lex")

    # -- token scanners -----------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return tokens ending with an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self._at_end():
                tokens.append(Token(TokenKind.EOF, "", self._pos()))
                return tokens
            tok = self._next_token()
            if tok is not None:
                tokens.append(tok)

    def _skip_trivia(self) -> None:
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._at_end():
                        self._error("unterminated block comment", start)
                        return
                    self._advance()
                self._advance(2)
            elif ch == "#" and self._col == 1:
                self._skip_directive_line()
            else:
                return

    def _skip_directive_line(self) -> None:
        """Skip a ``#`` line, honouring continuations and linemarkers."""
        start = self._i
        while not self._at_end():
            if self._peek() == "\\" and self._peek(1) == "\n":
                self._advance(2)
            elif self._peek() == "\n":
                break
            else:
                self._advance()
        text = self._src[start : self._i]
        saw_newline = not self._at_end()
        if saw_newline:
            self._advance()  # consume the newline
        m = _LINEMARKER.match(text)
        if m is not None:
            # ``# N "file"``: the *next* line is line N of ``file``. The
            # delta must be against the *physical* next line (markers are
            # rare, so counting newlines here is fine), not the possibly
            # already-marker-shifted line counter.
            raw_next_line = self._src.count("\n", 0, self._i) + 1
            self._line = int(m.group(1))
            if m.group(2) is not None:
                self._filename = m.group(2)
            self._marker_file = self._filename
            self._marker_delta = self._line - raw_next_line

    def _next_token(self) -> Token | None:
        pos = self._pos()
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._scan_number(pos)
        if ch.isalpha() or ch == "_":
            return self._scan_ident(pos)
        if ch == "'":
            return self._scan_char(pos)
        if ch == '"':
            return self._scan_string(pos)
        return self._scan_punct(pos)

    def _scan_number(self, pos: Position) -> Token:
        start = self._i
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self._src[start : self._i]
            if text in ("0x", "0X"):
                self._error("invalid hex literal", pos)
                return Token(TokenKind.NUMBER, text, pos, 0)
            value: object = int(text, 16)
        else:
            is_float = False
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1).isdigit():
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
            text = self._src[start : self._i]
            if is_float:
                value = float(text)
            elif len(text) > 1 and text[0] == "0":
                try:
                    value = int(text, 8)
                except ValueError:
                    self._error(f"invalid octal literal {text!r}", pos)
                    value = 0
            else:
                value = int(text)
        # Integer suffixes are accepted and ignored. (Note: membership
        # tests must exclude the empty string _peek returns at EOF.)
        while self._peek() and self._peek() in "uUlL":
            self._advance()
        full = self._src[start : self._i]
        return Token(TokenKind.NUMBER, full, pos, value)

    def _scan_ident(self, pos: Position) -> Token:
        start = self._i
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._src[start : self._i]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, pos, text)

    def _scan_escape(self, pos: Position) -> str:
        self._advance()  # backslash
        ch = self._peek()
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            if not digits:
                self._error("invalid hex escape", pos)
                return "?"
            return chr(int(digits, 16) & 0xFF)
        if ch.isdigit():
            digits = ""
            while self._peek().isdigit() and len(digits) < 3:
                digits += self._advance()
            return chr(int(digits, 8) & 0xFF)
        if ch in _ESCAPES:
            self._advance()
            return _ESCAPES[ch]
        self._error(f"unknown escape sequence '\\{ch}'", pos)
        # recovery: treat the escaped character literally
        if not self._at_end() and ch != "\n":
            self._advance()
            return ch
        return "?"

    def _scan_char(self, pos: Position) -> Token:
        self._advance()  # opening quote
        if self._peek() == "\\":
            value = self._scan_escape(pos)
        else:
            if self._at_end() or self._peek() == "\n":
                self._error("unterminated character literal", pos)
                return Token(TokenKind.CHAR, "'", pos, 0)
            value = self._advance()
        if self._peek() != "'":
            self._error("unterminated character literal", pos)
            return Token(TokenKind.CHAR, f"'{value}", pos, ord(value))
        self._advance()
        return Token(TokenKind.CHAR, f"'{value}'", pos, ord(value))

    def _scan_string(self, pos: Position) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._at_end() or self._peek() == "\n":
                self._error("unterminated string literal", pos)
                break
            if self._peek() == '"':
                self._advance()
                break
            if self._peek() == "\\":
                chars.append(self._scan_escape(pos))
            else:
                chars.append(self._advance())
        value = "".join(chars)
        return Token(TokenKind.STRING, f'"{value}"', pos, value)

    def _scan_punct(self, pos: Position) -> Token | None:
        for table in (_PUNCTS_3, _PUNCTS_2):
            for p in table:
                if self._src.startswith(p, self._i):
                    self._advance(len(p))
                    return Token(TokenKind.PUNCT, p, pos)
        ch = self._peek()
        if ch in _PUNCTS_1:
            self._advance()
            return Token(TokenKind.PUNCT, ch, pos)
        self._error(f"unexpected character {ch!r}", pos)
        self._advance()  # recovery: drop the offending character
        return None


def tokenize(
    source: str,
    filename: str = "<input>",
    diagnostics: DiagnosticBag | None = None,
) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list.

    With ``diagnostics``, lexical errors are recorded there and skipped
    instead of raised.
    """
    return Lexer(source, filename, diagnostics).tokenize()
