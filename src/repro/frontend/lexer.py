"""Hand-written lexer for the C subset.

The lexer produces a flat list of :class:`Token` objects. It understands:

* integer literals (decimal, hex, octal, with ``u``/``l`` suffixes),
* character and string literals with the usual escapes,
* all C operators and punctuation used by the grammar,
* keywords of the supported subset,
* ``//`` and ``/* */`` comments (skipped),
* preprocessor lines (a leading ``#`` skips to end of line) — benchmark
  sources are expected to be pre-expanded, mirroring the paper's setup where
  programs are analyzed "after preprocessing and macro expansion".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.frontend.errors import LexError, Position


class TokenKind(Enum):
    """Classification of a lexed token."""

    IDENT = auto()
    NUMBER = auto()
    CHAR = auto()
    STRING = auto()
    KEYWORD = auto()
    PUNCT = auto()
    EOF = auto()


KEYWORDS = frozenset(
    {
        "int",
        "char",
        "long",
        "short",
        "unsigned",
        "signed",
        "float",
        "double",
        "void",
        "struct",
        "union",
        "enum",
        "typedef",
        "static",
        "extern",
        "const",
        "volatile",
        "register",
        "auto",
        "if",
        "else",
        "while",
        "for",
        "do",
        "switch",
        "case",
        "default",
        "break",
        "continue",
        "return",
        "goto",
        "sizeof",
    }
)

# Longest-match-first operator table.
_PUNCTS_3 = ("<<=", ">>=", "...")
_PUNCTS_2 = (
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "^=",
    "|=",
)
_PUNCTS_1 = "+-*/%&|^~!<>=?:;,.(){}[]"

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the literal text for identifiers/punctuation and the
    decoded value for numbers/characters/strings.
    """

    kind: TokenKind
    text: str
    pos: Position
    value: object = None

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.pos})"


class Lexer:
    """Tokenizes a source string into a list of :class:`Token`."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self._src = source
        self._filename = filename
        self._i = 0
        self._line = 1
        self._col = 1

    # -- low-level cursor helpers ------------------------------------------

    def _pos(self) -> Position:
        return Position(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        j = self._i + offset
        return self._src[j] if j < len(self._src) else ""

    def _advance(self, n: int = 1) -> str:
        taken = self._src[self._i : self._i + n]
        for ch in taken:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._i += n
        return taken

    def _at_end(self) -> bool:
        return self._i >= len(self._src)

    # -- token scanners -----------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return tokens ending with an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self._at_end():
                tokens.append(Token(TokenKind.EOF, "", self._pos()))
                return tokens
            tokens.append(self._next_token())

    def _skip_trivia(self) -> None:
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._at_end():
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            elif ch == "#" and self._col == 1:
                # Preprocessor line: skip, honouring line continuations.
                while not self._at_end():
                    if self._peek() == "\\" and self._peek(1) == "\n":
                        self._advance(2)
                    elif self._peek() == "\n":
                        self._advance()
                        break
                    else:
                        self._advance()
            else:
                return

    def _next_token(self) -> Token:
        pos = self._pos()
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._scan_number(pos)
        if ch.isalpha() or ch == "_":
            return self._scan_ident(pos)
        if ch == "'":
            return self._scan_char(pos)
        if ch == '"':
            return self._scan_string(pos)
        return self._scan_punct(pos)

    def _scan_number(self, pos: Position) -> Token:
        start = self._i
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self._src[start : self._i]
            value: object = int(text, 16)
        else:
            is_float = False
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1).isdigit():
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
            text = self._src[start : self._i]
            if is_float:
                value = float(text)
            elif len(text) > 1 and text[0] == "0":
                value = int(text, 8)
            else:
                value = int(text)
        # Integer suffixes are accepted and ignored. (Note: membership
        # tests must exclude the empty string _peek returns at EOF.)
        while self._peek() and self._peek() in "uUlL":
            self._advance()
        full = self._src[start : self._i]
        return Token(TokenKind.NUMBER, full, pos, value)

    def _scan_ident(self, pos: Position) -> Token:
        start = self._i
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._src[start : self._i]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, pos, text)

    def _scan_escape(self, pos: Position) -> str:
        self._advance()  # backslash
        ch = self._peek()
        if ch == "x":
            self._advance()
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            if not digits:
                raise LexError("invalid hex escape", pos)
            return chr(int(digits, 16) & 0xFF)
        if ch.isdigit():
            digits = ""
            while self._peek().isdigit() and len(digits) < 3:
                digits += self._advance()
            return chr(int(digits, 8) & 0xFF)
        if ch in _ESCAPES:
            self._advance()
            return _ESCAPES[ch]
        raise LexError(f"unknown escape sequence '\\{ch}'", pos)

    def _scan_char(self, pos: Position) -> Token:
        self._advance()  # opening quote
        if self._peek() == "\\":
            value = self._scan_escape(pos)
        else:
            if self._at_end() or self._peek() == "\n":
                raise LexError("unterminated character literal", pos)
            value = self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", pos)
        self._advance()
        return Token(TokenKind.CHAR, f"'{value}'", pos, ord(value))

    def _scan_string(self, pos: Position) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self._at_end() or self._peek() == "\n":
                raise LexError("unterminated string literal", pos)
            if self._peek() == '"':
                self._advance()
                break
            if self._peek() == "\\":
                chars.append(self._scan_escape(pos))
            else:
                chars.append(self._advance())
        value = "".join(chars)
        return Token(TokenKind.STRING, f'"{value}"', pos, value)

    def _scan_punct(self, pos: Position) -> Token:
        for table in (_PUNCTS_3, _PUNCTS_2):
            for p in table:
                if self._src.startswith(p, self._i):
                    self._advance(len(p))
                    return Token(TokenKind.PUNCT, p, pos)
        ch = self._peek()
        if ch in _PUNCTS_1:
            self._advance()
            return Token(TokenKind.PUNCT, ch, pos)
        raise LexError(f"unexpected character {ch!r}", pos)


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
