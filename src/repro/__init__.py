"""repro — sparse global abstract interpretation for C-like languages.

A full reimplementation of Oh, Heo, Lee, Lee, Yi,
"Design and Implementation of Sparse Global Analyses for C-like Languages"
(PLDI 2012): a C-subset frontend and IR, interval and packed-octagon
abstract domains, dense (vanilla / access-localized) and *sparse* global
analyzers built on semantically derived def/use sets and precision-
preserving data dependencies, a BDD-backed dependency store, a
buffer-overrun checker, and a benchmark harness reproducing the paper's
tables.

Quick start::

    from repro import analyze

    run = analyze('''
        int main(void) {
            int i; int s = 0;
            for (i = 0; i < 10; i++) { s = s + i; }
            return s;
        }
    ''')
    print(run.interval_at_exit("main", "s"))
"""

from repro.analysis.dense import run_dense
from repro.analysis.preanalysis import run_preanalysis
from repro.analysis.relational import run_rel_dense, run_rel_sparse
from repro.analysis.sparse import run_sparse
from repro.api import AnalysisRun, QueryResult, analyze, serve_session
from repro.checkers.overrun import check_overruns
from repro.domains.interval import Interval
from repro.frontend import parse
from repro.ir.program import Program, build_program
from repro.runtime import (
    AnalysisError,
    Budget,
    BudgetExceeded,
    Diagnostics,
    FaultPlan,
    ReproError,
)
from repro.telemetry import Telemetry, chrome_trace, phase_report

__version__ = "1.1.0"

__all__ = [
    "analyze",
    "AnalysisRun",
    "QueryResult",
    "serve_session",
    "parse",
    "build_program",
    "Program",
    "run_preanalysis",
    "run_dense",
    "run_sparse",
    "run_rel_dense",
    "run_rel_sparse",
    "check_overruns",
    "Interval",
    "Budget",
    "Diagnostics",
    "FaultPlan",
    "ReproError",
    "AnalysisError",
    "BudgetExceeded",
    "Telemetry",
    "chrome_trace",
    "phase_report",
    "__version__",
]
