"""Call graph construction and SCC analysis.

The call graph starts from direct (named) calls; function-pointer call sites
are resolved by the flow-insensitive pre-analysis (Section 5: "we use the
flow-insensitive analysis to prior resolve function pointers"). ``maxSCC``
— the size of the largest strongly connected component — is the Table 1
metric the paper correlates with analysis cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.ir.cfg import Node
from repro.ir.commands import CCall
from repro.ir.program import Program


@dataclass
class CallGraph:
    """Procedure-level call graph with per-site callee sets."""

    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)
    site_callees: dict[int, tuple[str, ...]] = field(default_factory=dict)

    def add_call(self, site: Node, callee: str) -> None:
        caller = site.proc
        self.callees.setdefault(caller, set()).add(callee)
        self.callers.setdefault(callee, set()).add(caller)
        existing = self.site_callees.get(site.nid, ())
        if callee not in existing:
            self.site_callees[site.nid] = existing + (callee,)

    def callees_of_site(self, nid: int) -> tuple[str, ...]:
        return self.site_callees.get(nid, ())

    def sccs(self) -> list[list[str]]:
        """Tarjan's algorithm, iterative; returns SCCs in reverse
        topological order."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        out: list[list[str]] = []
        counter = [0]
        procs = set(self.callees) | set(self.callers)

        for root in sorted(procs):
            if root in index:
                continue
            work: list[tuple[str, Iterable[str]]] = [
                (root, iter(sorted(self.callees.get(root, ()))))
            ]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                v, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(self.callees.get(w, ())))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])
                if low[v] == index[v]:
                    scc: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == v:
                            break
                    out.append(scc)
        return out

    def max_scc_size(self) -> int:
        sccs = self.sccs()
        return max((len(s) for s in sccs), default=0)

    def recursive_procs(self) -> set[str]:
        """Procedures that participate in recursion (SCC of size > 1, or a
        self-loop)."""
        out: set[str] = set()
        for scc in self.sccs():
            if len(scc) > 1:
                out.update(scc)
            elif scc[0] in self.callees.get(scc[0], ()):
                out.add(scc[0])
        return out


def build_callgraph(
    program: Program,
    resolve: Callable[[Node], Iterable[str]] | None = None,
) -> CallGraph:
    """Build the call graph.

    ``resolve`` maps an (indirect) call node to candidate callee names; when
    None only direct calls are used. Unknown callees (externals) are simply
    absent — the analyses model them as havoc.
    """
    graph = CallGraph()
    defined = program.defined_functions()
    for proc in program.procedures():
        graph.callees.setdefault(proc, set())
    for node in program.nodes():
        cmd = node.cmd
        if not isinstance(cmd, CCall):
            continue
        if cmd.static_callee is not None and cmd.static_callee in defined:
            graph.add_call(node, cmd.static_callee)
        elif resolve is not None:
            for callee in resolve(node):
                if callee in defined:
                    graph.add_call(node, callee)
    return graph
