"""Call graph construction and SCC analysis.

The call graph starts from direct (named) calls; function-pointer call sites
are resolved by the flow-insensitive pre-analysis (Section 5: "we use the
flow-insensitive analysis to prior resolve function pointers"). ``maxSCC``
— the size of the largest strongly connected component — is the Table 1
metric the paper correlates with analysis cost.

:meth:`CallGraph.condense` collapses the graph to its SCC DAG — the shard
structure of the parallel pipeline (``repro.analysis.shards``): every
control-flow cycle of the interprocedural graph, loop or recursion, lies
entirely within one SCC, so cross-shard propagation is acyclic in the
call-graph sense and the SCCs can be scheduled bottom-up by a ready set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.ir.cfg import Node
from repro.ir.commands import CCall
from repro.ir.program import Program


@dataclass
class SCCDag:
    """The call graph condensed to its DAG of strongly connected
    components.

    Shards (= SCCs) are numbered in *topological* order — callers before
    callees — so ``range(len(dag))`` is already a bottom-up-compatible
    processing order and ``succs[s]`` only ever points to shards numbered
    higher than ``s``. The numbering is deterministic: Tarjan visits
    procedures in sorted order, so the same program always condenses to the
    same shard ids.
    """

    #: shard id → member procedures (sorted names)
    members: tuple[tuple[str, ...], ...]
    #: procedure → shard id
    shard_of: dict[str, int]
    #: shard id → callee shards (caller→callee orientation, deduplicated)
    succs: tuple[tuple[int, ...], ...]
    #: shard id → caller shards
    preds: tuple[tuple[int, ...], ...]

    def __len__(self) -> int:
        return len(self.members)

    def topo_order(self) -> range:
        """Shard ids, callers before callees."""
        return range(len(self.members))

    def ready_set(self, dirty: Iterable[int]) -> list[int]:
        """The shards from ``dirty`` that are safe to run now: those with no
        *dirty* caller shard. Running only these avoids re-solving a callee
        against caller summaries that are themselves about to change; the
        topologically smallest dirty shard always qualifies, so progress is
        guaranteed on any non-empty dirty set."""
        dirty = set(dirty)
        return sorted(
            s for s in dirty if not any(p in dirty for p in self.preds[s])
        )


@dataclass
class CallGraph:
    """Procedure-level call graph with per-site callee sets."""

    callees: dict[str, set[str]] = field(default_factory=dict)
    callers: dict[str, set[str]] = field(default_factory=dict)
    site_callees: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: memoized :meth:`sccs` result; edge mutations through :meth:`add_call`
    #: invalidate it (``max_scc_size``/``recursive_procs``/``condense`` all
    #: reuse one Tarjan run instead of recomputing per call)
    _scc_cache: list[list[str]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def add_call(self, site: Node, callee: str) -> None:
        caller = site.proc
        self.callees.setdefault(caller, set()).add(callee)
        self.callers.setdefault(callee, set()).add(caller)
        existing = self.site_callees.get(site.nid, ())
        if callee not in existing:
            self.site_callees[site.nid] = existing + (callee,)
        self._scc_cache = None

    def invalidate(self) -> None:
        """Drop the memoized SCC decomposition (for callers that mutate the
        adjacency sets directly instead of via :meth:`add_call`)."""
        self._scc_cache = None

    def callees_of_site(self, nid: int) -> tuple[str, ...]:
        return self.site_callees.get(nid, ())

    def sccs(self) -> list[list[str]]:
        """Tarjan's algorithm, iterative; returns SCCs in reverse
        topological order. Memoized — treat the result as read-only."""
        if self._scc_cache is not None:
            return self._scc_cache
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        out: list[list[str]] = []
        counter = [0]
        procs = set(self.callees) | set(self.callers)

        for root in sorted(procs):
            if root in index:
                continue
            work: list[tuple[str, Iterable[str]]] = [
                (root, iter(sorted(self.callees.get(root, ()))))
            ]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                v, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(sorted(self.callees.get(w, ())))))
                        advanced = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])
                if low[v] == index[v]:
                    scc: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == v:
                            break
                    out.append(scc)
        self._scc_cache = out
        return out

    def max_scc_size(self) -> int:
        sccs = self.sccs()
        return max((len(s) for s in sccs), default=0)

    def recursive_procs(self) -> set[str]:
        """Procedures that participate in recursion (SCC of size > 1, or a
        self-loop)."""
        out: set[str] = set()
        for scc in self.sccs():
            if len(scc) > 1:
                out.update(scc)
            elif scc[0] in self.callees.get(scc[0], ()):
                out.add(scc[0])
        return out

    def condense(self) -> SCCDag:
        """Condense to the SCC DAG. Tarjan emits components callees-first
        (reverse topological), so reversing gives the callers-first shard
        numbering documented on :class:`SCCDag`."""
        components = list(reversed(self.sccs()))
        members = tuple(tuple(sorted(scc)) for scc in components)
        shard_of: dict[str, int] = {}
        for sid, procs in enumerate(members):
            for proc in procs:
                shard_of[proc] = sid
        succ_sets: list[set[int]] = [set() for _ in members]
        for caller, callees in self.callees.items():
            src = shard_of.get(caller)
            if src is None:
                continue
            for callee in callees:
                dst = shard_of.get(callee)
                if dst is not None and dst != src:
                    succ_sets[src].add(dst)
        pred_sets: list[set[int]] = [set() for _ in members]
        for src, dsts in enumerate(succ_sets):
            for dst in dsts:
                pred_sets[dst].add(src)
        return SCCDag(
            members=members,
            shard_of=shard_of,
            succs=tuple(tuple(sorted(s)) for s in succ_sets),
            preds=tuple(tuple(sorted(p)) for p in pred_sets),
        )


def build_callgraph(
    program: Program,
    resolve: Callable[[Node], Iterable[str]] | None = None,
) -> CallGraph:
    """Build the call graph.

    ``resolve`` maps an (indirect) call node to candidate callee names; when
    None only direct calls are used. Unknown callees (externals) are simply
    absent — the analyses model them as havoc.
    """
    graph = CallGraph()
    defined = program.defined_functions()
    for proc in program.procedures():
        graph.callees.setdefault(proc, set())
    for node in program.nodes():
        cmd = node.cmd
        if not isinstance(cmd, CCall):
            continue
        if cmd.static_callee is not None and cmd.static_callee in defined:
            graph.add_call(node, cmd.static_callee)
        elif resolve is not None:
            for callee in resolve(node):
                if callee in defined:
                    graph.add_call(node, callee)
    return graph
