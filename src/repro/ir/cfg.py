"""Control-flow graphs.

A :class:`Node` is one *control point* in the paper's sense: it carries a
single command. :class:`ProcCFG` is the intraprocedural graph of one
procedure; :class:`repro.ir.program.Program` stitches procedure CFGs together
with interprocedural call/return edges into the global analysis graph.

Node ids are globally unique integers assigned by the shared
:class:`NodeFactory`, so a whole program is the tuple ⟨C, ↪⟩ of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.commands import Command, CSkip


@dataclass
class Node:
    """One control point: a globally-unique id, its procedure, a command."""

    nid: int
    proc: str
    cmd: Command
    line: int = 0

    def __hash__(self) -> int:
        return self.nid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.nid == self.nid

    def __repr__(self) -> str:
        return f"<{self.nid}:{self.proc}: {self.cmd}>"


class NodeFactory:
    """Allocates nodes with program-wide unique ids."""

    def __init__(self) -> None:
        self._next = 0
        self.nodes: dict[int, Node] = {}

    def make(self, proc: str, cmd: Command, line: int = 0) -> Node:
        node = Node(self._next, proc, cmd, line)
        self._next += 1
        self.nodes[node.nid] = node
        return node


class ProcCFG:
    """The intraprocedural CFG of one procedure.

    ``entry`` and ``exit`` are dedicated marker nodes; every return statement
    is wired to ``exit``. Edges are stored both ways for O(1) preds/succs.
    """

    def __init__(self, name: str, factory: NodeFactory) -> None:
        self.name = name
        self._factory = factory
        self.nodes: list[Node] = []
        self.succs: dict[int, list[int]] = {}
        self.preds: dict[int, list[int]] = {}
        self.entry: Node | None = None
        self.exit: Node | None = None

    def add_node(self, cmd: Command, line: int = 0) -> Node:
        node = self._factory.make(self.name, cmd, line)
        self.nodes.append(node)
        self.succs[node.nid] = []
        self.preds[node.nid] = []
        return node

    def add_edge(self, src: Node, dst: Node) -> None:
        if dst.nid not in self.succs[src.nid]:
            self.succs[src.nid].append(dst.nid)
            self.preds[dst.nid].append(src.nid)

    def node(self, nid: int) -> Node:
        return self._factory.nodes[nid]

    def successors(self, node: Node) -> list[Node]:
        return [self.node(n) for n in self.succs[node.nid]]

    def predecessors(self, node: Node) -> list[Node]:
        return [self.node(n) for n in self.preds[node.nid]]

    def remove_unreachable(self) -> int:
        """Drop nodes unreachable from entry (dead branches after lowering).
        Returns the number of removed nodes."""
        assert self.entry is not None
        seen: set[int] = set()
        stack = [self.entry.nid]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(s for s in self.succs[nid] if s not in seen)
        if self.exit is not None:
            seen.add(self.exit.nid)
        dead = [n for n in self.nodes if n.nid not in seen]
        for n in dead:
            for s in self.succs.pop(n.nid, ()):
                if s in self.preds:
                    self.preds[s] = [p for p in self.preds[s] if p != n.nid]
            for p in self.preds.pop(n.nid, ()):
                if p in self.succs:
                    self.succs[p] = [s for s in self.succs[p] if s != n.nid]
        self.nodes = [n for n in self.nodes if n.nid in seen]
        return len(dead)

    def compress_skips(self) -> int:
        """Splice out interior ``skip`` nodes with a single successor.

        Entry/exit markers and branch targets are kept so the graph shape
        stays faithful; this mirrors basic-block formation in the paper's
        intermediate representation. Returns the number of removed nodes.
        """
        removed = 0
        changed = True
        while changed:
            changed = False
            for n in list(self.nodes):
                if n is self.entry or n is self.exit:
                    continue
                if not isinstance(n.cmd, CSkip):
                    continue
                succs = self.succs.get(n.nid)
                preds = self.preds.get(n.nid)
                if succs is None or preds is None or len(succs) != 1:
                    continue
                if not preds:
                    continue
                (succ,) = succs
                if succ == n.nid:
                    continue
                for p in preds:
                    self.succs[p] = [
                        succ if s == n.nid else s for s in self.succs[p]
                    ]
                    # dedupe
                    seen: list[int] = []
                    for s in self.succs[p]:
                        if s not in seen:
                            seen.append(s)
                    self.succs[p] = seen
                new_preds = [p for p in self.preds[succ] if p != n.nid]
                for p in preds:
                    if p not in new_preds:
                        new_preds.append(p)
                self.preds[succ] = new_preds
                del self.succs[n.nid]
                del self.preds[n.nid]
                self.nodes.remove(n)
                removed += 1
                changed = True
        return removed

    def to_dot(self) -> str:
        """Graphviz rendering for debugging."""
        lines = [f'digraph "{self.name}" {{']
        for n in self.nodes:
            label = str(n.cmd).replace('"', "'")
            lines.append(f'  n{n.nid} [label="{n.nid}: {label}"];')
        for src, dsts in self.succs.items():
            for dst in dsts:
                lines.append(f"  n{src} -> n{dst};")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ProcCFG {self.name}: {len(self.nodes)} nodes>"


@dataclass
class Edge:
    """A labelled interprocedural edge."""

    src: int
    dst: int
    kind: str = "flow"  # flow | call | ret
