"""A concrete interpreter for the IR.

Executes lowered programs with real integer/pointer values. Its purpose is
*testing soundness*: every concrete state observed at a control point must
be over-approximated by the abstract state the analyzers compute there
(``repro.testing`` uses this for property-based soundness checks), and
``examples`` use it to show analysis findings against real executions.

The machine model matches the abstraction:

* scalars are unbounded Python ints;
* pointers are ``(block, offset)`` pairs; a block is a variable cell, a
  struct field, or an allocation (array) with per-index cells;
* struct fields of a variable/allocation are separate cells keyed like the
  analyzer's ``FieldLoc``;
* reading uninitialized memory raises (test programs initialize).

Execution is bounded by ``fuel`` (node visits) so looping programs can be
sampled; hitting the limit raises :class:`OutOfFuel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.domains.absloc import AbsLoc, AllocLoc, FieldLoc, FuncLoc, RetLoc, VarLoc
from repro.ir.cfg import Node
from repro.ir.commands import (
    CAlloc,
    CAssume,
    CCall,
    CEntry,
    CExit,
    CRetBind,
    CReturn,
    CSet,
    CSkip,
    DerefLv,
    EAddrOf,
    EBinOp,
    ELval,
    ENum,
    EStrAddr,
    EUnknown,
    EUnOp,
    Expr,
    FieldLv,
    IndexLv,
    Lval,
    VarLv,
)
from repro.ir.program import INIT_PROC, Program


class InterpError(Exception):
    """Runtime error during concrete execution (bad deref, uninit read)."""


class OutOfFuel(InterpError):
    """The execution budget was exhausted (looping program)."""


@dataclass(frozen=True)
class Pointer:
    """A concrete pointer: a cell or block base plus an element offset."""

    base: AbsLoc  # VarLoc/FieldLoc cell, AllocLoc block, FuncLoc
    offset: int = 0

    def __add__(self, delta: int) -> "Pointer":
        return Pointer(self.base, self.offset + delta)


Value = int | Pointer


@dataclass
class Frame:
    """One activation record: local scalar/pointer cells."""

    proc: str
    locals: dict[AbsLoc, Value] = field(default_factory=dict)


@dataclass
class Observation:
    """A concrete state snapshot at one control point."""

    nid: int
    env: dict[AbsLoc, Value]


class Interpreter:
    """Executes a program from ``__init``'s entry."""

    def __init__(
        self,
        program: Program,
        fuel: int = 100_000,
        unknown_value: int = 0,
        record: bool = True,
    ) -> None:
        self.program = program
        self.fuel = fuel
        self.unknown_value = unknown_value
        self.record = record
        self.globals: dict[AbsLoc, Value] = {}
        #: allocation cells: (site, index) -> value; sizes per site
        self.heap: dict[tuple[str, int], Value] = {}
        self.block_sizes: dict[str, int] = {}
        self.observations: list[Observation] = []
        self._alloc_counter = 0
        #: live activation records, outermost first
        self._stack: list[Frame] = []

    # -- memory -------------------------------------------------------------------

    def _frame_for(self, loc: AbsLoc, frame: Frame) -> Frame | None:
        """The activation owning a local cell: the current frame, or — for
        pointers into a caller's locals (``&x`` passed down) — the nearest
        live frame of the owning procedure."""
        proc = getattr(loc, "proc", None)
        if isinstance(loc, FieldLoc):
            proc = getattr(loc.base, "proc", None)
        if proc == frame.proc:
            return frame
        for other in reversed(self._stack):
            if other.proc == proc:
                return other
        return None

    def _cell_read(self, loc: AbsLoc, frame: Frame) -> Value:
        base = loc.base if isinstance(loc, FieldLoc) else loc
        if isinstance(base, VarLoc) and base.proc is not None:
            owner = self._frame_for(loc, frame)
            if owner is None or loc not in owner.locals:
                raise InterpError(f"read of uninitialized local {loc}")
            return owner.locals[loc]
        if loc in self.globals:
            return self.globals[loc]
        raise InterpError(f"read of uninitialized location {loc}")

    def _cell_write(self, loc: AbsLoc, value: Value, frame: Frame) -> None:
        base = loc.base if isinstance(loc, FieldLoc) else loc
        if isinstance(base, VarLoc) and base.proc is not None:
            owner = self._frame_for(loc, frame) or frame
            owner.locals[loc] = value
        else:
            self.globals[loc] = value

    def _block_read(self, site: str, index: int) -> Value:
        size = self.block_sizes.get(site)
        if size is not None and not (0 <= index < size):
            raise InterpError(f"out-of-bounds read {site}[{index}] (size {size})")
        cell = self.heap.get((site, index))
        if cell is None:
            return 0  # blocks are zero-initialized (calloc-like model)
        return cell

    def _block_write(self, site: str, index: int, value: Value) -> None:
        size = self.block_sizes.get(site)
        if size is not None and not (0 <= index < size):
            raise InterpError(f"out-of-bounds write {site}[{index}] (size {size})")
        self.heap[(site, index)] = value

    # -- expression evaluation ---------------------------------------------------------

    def eval(self, expr: Expr, frame: Frame) -> Value:
        if isinstance(expr, ENum):
            return expr.value
        if isinstance(expr, ELval):
            return self._read_lval(expr.lval, frame)
        if isinstance(expr, EAddrOf):
            return self._addr_of(expr.lval, frame)
        if isinstance(expr, EStrAddr):
            site = f"str:{expr.site}"
            if site not in self.block_sizes:
                self.block_sizes[site] = expr.length
                text = self.program.string_literals.get(expr.site, "")
                for i, ch in enumerate(text):
                    self.heap[(site, i)] = ord(ch)
                self.heap[(site, len(text))] = 0
            return Pointer(AllocLoc(site), 0)
        if isinstance(expr, EUnknown):
            return self.unknown_value
        if isinstance(expr, EUnOp):
            v = self.eval(expr.operand, frame)
            n = self._as_int(v)
            return {"-": -n, "+": n, "!": int(n == 0), "~": ~n}[expr.op]
        if isinstance(expr, EBinOp):
            return self._eval_binop(expr, frame)
        raise InterpError(f"cannot evaluate {expr!r}")

    def _as_int(self, v: Value) -> int:
        if isinstance(v, Pointer):
            return 1  # pointers are truthy; numeric use is unspecified
        return v

    def _eval_binop(self, expr: EBinOp, frame: Frame) -> Value:
        left = self.eval(expr.left, frame)
        right = self.eval(expr.right, frame)
        op = expr.op
        if isinstance(left, Pointer) and isinstance(right, int):
            if op == "+":
                return left + right
            if op == "-":
                return left + (-right)
        if isinstance(right, Pointer) and isinstance(left, int) and op == "+":
            return right + left
        if isinstance(left, Pointer) and isinstance(right, Pointer):
            if op == "-" and left.base == right.base:
                return left.offset - right.offset
            if op in ("==", "!="):
                eq = left == right
                return int(eq if op == "==" else not eq)
        lo, ro = self._as_int(left), self._as_int(right)
        table = {
            "+": lambda: lo + ro,
            "-": lambda: lo - ro,
            "*": lambda: lo * ro,
            "/": lambda: _c_div(lo, ro),
            "%": lambda: _c_mod(lo, ro),
            "<": lambda: int(lo < ro),
            ">": lambda: int(lo > ro),
            "<=": lambda: int(lo <= ro),
            ">=": lambda: int(lo >= ro),
            "==": lambda: int(lo == ro),
            "!=": lambda: int(lo != ro),
            "&&": lambda: int(bool(lo) and bool(ro)),
            "||": lambda: int(bool(lo) or bool(ro)),
            "&": lambda: lo & ro,
            "|": lambda: lo | ro,
            "^": lambda: lo ^ ro,
            "<<": lambda: lo << (ro % 64),
            ">>": lambda: lo >> (ro % 64) if ro >= 0 else lo,
        }
        fn = table.get(op)
        if fn is None:
            raise InterpError(f"unknown operator {op}")
        return fn()

    # -- lvalues ----------------------------------------------------------------------

    def _addr_of(self, lval: Lval, frame: Frame) -> Pointer:
        if isinstance(lval, VarLv):
            loc = VarLoc(lval.name, lval.proc)
            if lval.proc is None and lval.name in self.program.defined_functions():
                return Pointer(FuncLoc(lval.name), 0)
            return Pointer(loc, 0)
        if isinstance(lval, FieldLv):
            base = self._addr_of(lval.base, frame)
            return Pointer(FieldLoc(base.base, lval.fieldname), 0)
        if isinstance(lval, DerefLv):
            target = self.eval(lval.ptr, frame)
            if not isinstance(target, Pointer):
                raise InterpError("dereference of non-pointer")
            if lval.fieldname is not None:
                return Pointer(FieldLoc(target.base, lval.fieldname), target.offset)
            return target
        if isinstance(lval, IndexLv):
            base = self.eval(lval.base, frame)
            index = self._as_int(self.eval(lval.index, frame))
            if not isinstance(base, Pointer):
                raise InterpError("indexing a non-pointer")
            return base + index
        raise InterpError(f"cannot take address of {lval!r}")

    def _read_lval(self, lval: Lval, frame: Frame) -> Value:
        target = self._addr_of(lval, frame)
        if isinstance(target.base, AllocLoc):
            return self._block_read(target.base.site, target.offset)
        return self._cell_read(target.base, frame)

    def _write_lval(self, lval: Lval, value: Value, frame: Frame) -> None:
        target = self._addr_of(lval, frame)
        if isinstance(target.base, AllocLoc):
            self._block_write(target.base.site, target.offset, value)
        else:
            self._cell_write(target.base, value, frame)

    # -- execution ------------------------------------------------------------------------

    def run(self) -> Value | None:
        """Execute from the init procedure; returns main's return value."""
        entry = self.program.entry_node()
        frame = Frame(INIT_PROC)
        self._run_proc(entry, frame)
        return self.globals.get(RetLoc(self.program.main))

    def _run_proc(self, entry: Node, frame: Frame) -> Value | None:
        """Execute one activation. Observations are taken *after* a node's
        command executes, matching the analyzers' convention that the state
        at ``c`` is ``f♯_c`` applied to the incoming state."""
        cfg = self.program.cfgs[frame.proc]
        self._stack.append(frame)
        try:
            return self._run_frame(cfg, entry, frame)
        finally:
            self._stack.pop()

    def _run_frame(self, cfg, entry: Node, frame: Frame) -> Value | None:
        node: Node | None = entry
        ret: Value | None = None
        while node is not None:
            self.fuel -= 1
            if self.fuel <= 0:
                raise OutOfFuel("execution budget exhausted")
            cmd = node.cmd
            if isinstance(cmd, (CSkip, CEntry, CAssume)):
                # Assume nodes are only ever entered via _next, which already
                # checked the condition.
                pass
            elif isinstance(cmd, CExit):
                self._observe(node, frame)
                return ret
            elif isinstance(cmd, CSet):
                if _is_string_content_marker(cmd):
                    pass  # abstract-only store; EStrAddr fills real content
                else:
                    self._write_lval(cmd.lval, self.eval(cmd.expr, frame), frame)
            elif isinstance(cmd, CAlloc):
                size = self._as_int(self.eval(cmd.size, frame))
                self.block_sizes[cmd.site] = max(size, 0)
                self._write_lval(cmd.lval, Pointer(AllocLoc(cmd.site), 0), frame)
            elif isinstance(cmd, CReturn):
                value = (
                    self.eval(cmd.value, frame) if cmd.value is not None else 0
                )
                self.globals[RetLoc(frame.proc)] = value
                ret = value
                self._observe(node, frame)
                exit_node = cfg.exit
                assert exit_node is not None
                self._observe(exit_node, frame)
                return ret
            elif isinstance(cmd, CCall):
                # Observe before descending: the abstract state at a call
                # node is f♯_call(in) — argument binding only, not the
                # callee's effects (those appear at the return site).
                self._observe(node, frame)
                self._do_call(node, cmd, frame)
                node = self._next(cfg, node, frame)
                continue
            elif isinstance(cmd, CRetBind):
                call_node = self.program.node(cmd.call_node)
                callee = self._callee_of(call_node, frame)
                if cmd.lval is not None:
                    if callee is not None:
                        value = self.globals.get(RetLoc(callee), 0)
                    else:
                        value = self.unknown_value
                    self._write_lval(cmd.lval, value, frame)
            else:
                raise InterpError(f"unknown command {cmd!r}")
            self._observe(node, frame)
            node = self._next(cfg, node, frame)
        return ret

    def _next(self, cfg, node: Node, frame: Frame) -> Node | None:
        succs = cfg.succs.get(node.nid, [])
        if not succs:
            return None
        if len(succs) == 1:
            return cfg.node(succs[0])
        # Branch: pick the assume successor whose condition holds.
        fallback = None
        for s in succs:
            succ = cfg.node(s)
            if isinstance(succ.cmd, CAssume):
                truth = bool(self._as_int(self.eval(succ.cmd.cond, frame)))
                if truth == succ.cmd.positive:
                    return succ
            else:
                fallback = succ
        return fallback

    def _callee_of(self, call_node: Node, frame: Frame) -> str | None:
        cmd = call_node.cmd
        assert isinstance(cmd, CCall)
        if cmd.static_callee is not None:
            return (
                cmd.static_callee
                if cmd.static_callee in self.program.cfgs
                else None
            )
        try:
            target = self.eval(cmd.callee, frame)
        except InterpError:
            return None  # undeclared external function designator
        if isinstance(target, Pointer) and isinstance(target.base, FuncLoc):
            name = target.base.name
            return name if name in self.program.cfgs else None
        return None

    def _do_call(self, node: Node, cmd: CCall, frame: Frame) -> None:
        callee = self._callee_of(node, frame)
        args = [self.eval(a, frame) for a in cmd.args]
        if callee is None:
            return  # external call: no effect, unknown result
        info = self.program.proc_infos[callee]
        callee_frame = Frame(callee)
        for i, param in enumerate(info.params):
            value = args[i] if i < len(args) else self.unknown_value
            callee_frame.locals[VarLoc(param, callee)] = value
        callee_cfg = self.program.cfgs[callee]
        assert callee_cfg.entry is not None
        self._run_proc(callee_cfg.entry, callee_frame)

    # -- observation --------------------------------------------------------------------

    def _observe(self, node: Node, frame: Frame) -> None:
        if not self.record:
            return
        env: dict[AbsLoc, Value] = {}
        env.update(self.globals)
        env.update(frame.locals)
        self.observations.append(Observation(node.nid, env))

    def concrete_cells(self) -> Iterable[tuple[AbsLoc, Value]]:
        """Final global memory plus heap summarized by allocation site —
        comparable against the abstract heap abstraction."""
        for loc, value in self.globals.items():
            yield loc, value
        for (site, _index), value in self.heap.items():
            yield AllocLoc(site), value


def _is_string_content_marker(cmd: CSet) -> bool:
    """String literals lower to two summary stores that give the abstract
    block its character range (see repro.ir.lowering); concretely the
    interpreter fills real contents at EStrAddr, so the markers are
    no-ops here."""
    from repro.ir.commands import EUnknown, IndexLv

    return (
        isinstance(cmd.lval, IndexLv)
        and isinstance(cmd.lval.index, EUnknown)
        and cmd.lval.index.reason == "str-content"
    )


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("modulo by zero")
    return a - _c_div(a, b) * b


def run_program(program: Program, fuel: int = 100_000) -> Value | None:
    """Convenience: execute and return main's result."""
    return Interpreter(program, fuel=fuel, record=False).run()
