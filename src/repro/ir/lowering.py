"""AST → IR lowering.

Turns a parsed :class:`TranslationUnit` into per-procedure CFGs over the IR
command language. The main jobs:

* flatten side effects — calls, ``++``/``--``, assignments-in-expressions,
  ``?:`` and short-circuit operators become explicit command sequences with
  compiler temporaries, leaving only *pure* expressions in commands;
* lower control flow (``if``/``while``/``for``/``do``/``switch``/``goto``)
  into assume-guarded CFG edges;
* desugar struct assignment into per-field copies (field-sensitivity);
* allocate array blocks for local/global array declarations and ``malloc``
  calls (allocation-site heap abstraction);
* resolve variable scoping: locals are qualified by procedure, block-scoped
  shadowing gets unique renamed slots.

Global initializers are collected into a synthetic ``__init`` procedure that
calls ``main``, so the whole program is a single rooted graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import cast as A
from repro.frontend.ctypes import (
    ArrayType,
    CType,
    FuncType,
    IntType,
    PointerType,
    StructLayout,
    StructType,
)
from repro.frontend.errors import LoweringError
from repro.ir.cfg import Node, NodeFactory, ProcCFG
from repro.ir.commands import (
    CAlloc,
    CAssume,
    CCall,
    CEntry,
    CExit,
    CRetBind,
    CReturn,
    CSet,
    CSkip,
    DerefLv,
    EAddrOf,
    EBinOp,
    ELval,
    ENum,
    EStrAddr,
    EUnOp,
    EUnknown,
    Expr,
    FieldLv,
    IndexLv,
    Lval,
    VarLv,
)

#: Calls treated as heap allocation, mapping to the allocated element count
#: argument index (None means "unknown size").
ALLOC_FUNCTIONS = {"malloc": 0, "calloc": 0, "realloc": 1, "alloca": 0}

#: Calls that are modelled as no-ops.
NOOP_FUNCTIONS = {"free", "assert", "srand", "exit", "abort", "printf", "puts"}

_COMPARISONS = frozenset({"<", ">", "<=", ">=", "==", "!="})


@dataclass
class ProcInfo:
    """Per-procedure lowering results needed by later phases."""

    name: str
    params: list[str] = field(default_factory=list)
    locals: list[str] = field(default_factory=list)
    ret_type: CType = IntType()
    var_types: dict[str, CType] = field(default_factory=dict)
    variadic: bool = False


class Scope:
    """A lexical scope mapping source names to (slot name, type)."""

    def __init__(self, parent: "Scope | None" = None) -> None:
        self.parent = parent
        self.bindings: dict[str, tuple[str, CType]] = {}

    def lookup(self, name: str) -> tuple[str, CType] | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def lookup_with_scope(self, name: str) -> tuple[str, CType, "Scope"] | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                slot, ctype = scope.bindings[name]
                return slot, ctype, scope
            scope = scope.parent
        return None

    def is_root(self) -> bool:
        return self.parent is None

    def bind(self, name: str, slot: str, ctype: CType) -> None:
        self.bindings[name] = (slot, ctype)


class _LoopCtx:
    """Targets for break/continue inside the innermost loop/switch."""

    def __init__(self, break_to: list[Node], continue_to: list[Node] | None) -> None:
        self.break_frontier = break_to
        self.continue_frontier = continue_to


class FunctionLowerer:
    """Lowers one function body into a :class:`ProcCFG`."""

    def __init__(
        self,
        unit: A.TranslationUnit,
        proc: str,
        factory: NodeFactory,
        global_scope: Scope,
        structs: dict[str, StructLayout],
        func_names: set[str],
    ) -> None:
        self.unit = unit
        self.proc = proc
        self.cfg = ProcCFG(proc, factory)
        self.scope = Scope(global_scope)
        self.structs = structs
        self.func_names = func_names
        self.info = ProcInfo(proc)
        self._temp_counter = 0
        self._site_counter = 0
        self._frontier: list[Node] = []
        self._loop_stack: list[_LoopCtx] = []
        self._labels: dict[str, Node] = {}
        self._pending_gotos: list[tuple[Node, str, int]] = []
        self._returns: list[Node] = []
        self.string_literals: dict[str, str] = {}

    # -- plumbing --------------------------------------------------------------

    def _fresh_temp(self, hint: str = "t") -> VarLv:
        self._temp_counter += 1
        name = f"__{hint}{self._temp_counter}"
        self.info.locals.append(name)
        self.info.var_types[name] = IntType()
        return VarLv(name, self.proc)

    def _fresh_site(self, kind: str, line: int) -> str:
        self._site_counter += 1
        return f"{self.proc}:{kind}:{line}:{self._site_counter}"

    def _emit(self, cmd, line: int = 0) -> Node:
        """Append a node after the current frontier and make it the frontier."""
        node = self.cfg.add_node(cmd, line)
        for f in self._frontier:
            self.cfg.add_edge(f, node)
        self._frontier = [node]
        return node

    # -- entry point -----------------------------------------------------------

    def lower(self, fn: A.FuncDef) -> tuple[ProcCFG, ProcInfo]:
        self.info.ret_type = fn.ret_type
        self.info.variadic = fn.variadic
        entry = self.cfg.add_node(CEntry(self.proc), fn.pos.line)
        self.cfg.entry = entry
        self._frontier = [entry]
        for p in fn.params:
            slot = p.name or self._fresh_temp("arg").name
            ptype = p.ctype
            if isinstance(ptype, ArrayType):
                ptype = PointerType(ptype.element)
            self.scope.bind(p.name, slot, ptype)
            self.info.params.append(slot)
            self.info.var_types[slot] = ptype
        self._lower_stmt(fn.body)
        exit_node = self.cfg.add_node(CExit(self.proc), fn.pos.line)
        for f in self._frontier + self._returns:
            self.cfg.add_edge(f, exit_node)
        self.cfg.exit = exit_node
        self._patch_gotos()
        self.cfg.remove_unreachable()
        return self.cfg, self.info

    def _patch_gotos(self) -> None:
        for node, label, line in self._pending_gotos:
            target = self._labels.get(label)
            if target is None:
                raise LoweringError(
                    f"goto to undefined label {label!r} in {self.proc}"
                )
            self.cfg.add_edge(node, target)

    # -- statements --------------------------------------------------------------

    def _lower_stmt(self, stmt: A.Stmt) -> None:
        line = stmt.pos.line
        if isinstance(stmt, A.Compound):
            saved = self.scope
            self.scope = Scope(saved)
            for s in stmt.body:
                self._lower_stmt(s)
            self.scope = saved
        elif isinstance(stmt, A.ExprStmt):
            self._lower_expr_effects(stmt.expr, line)
        elif isinstance(stmt, A.DeclStmt):
            for decl in stmt.decls:
                self._lower_local_decl(decl)
        elif isinstance(stmt, A.If):
            self._lower_if(stmt)
        elif isinstance(stmt, A.While):
            self._lower_while(stmt)
        elif isinstance(stmt, A.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, A.For):
            self._lower_for(stmt)
        elif isinstance(stmt, A.Switch):
            self._lower_switch(stmt)
        elif isinstance(stmt, A.Break):
            if not self._loop_stack:
                raise LoweringError("break outside loop/switch")
            node = self._emit(CSkip("break"), line)
            self._loop_stack[-1].break_frontier.append(node)
            self._frontier = []
        elif isinstance(stmt, A.Continue):
            ctx = next(
                (
                    c
                    for c in reversed(self._loop_stack)
                    if c.continue_frontier is not None
                ),
                None,
            )
            if ctx is None:
                raise LoweringError("continue outside loop")
            node = self._emit(CSkip("continue"), line)
            assert ctx.continue_frontier is not None
            ctx.continue_frontier.append(node)
            self._frontier = []
        elif isinstance(stmt, A.Return):
            value = None
            if stmt.value is not None:
                value = self._lower_expr(stmt.value, line)
            self._emit(CReturn(value), line)
            # Return nodes flow to the procedure exit, wired up in `lower`.
            self._returns.extend(self._frontier)
            self._frontier = []
        elif isinstance(stmt, A.Goto):
            node = self._emit(CSkip(f"goto {stmt.label}"), line)
            self._pending_gotos.append((node, stmt.label, line))
            self._frontier = []
        elif isinstance(stmt, A.Labeled):
            node = self.cfg.add_node(CSkip(f"label {stmt.label}"), line)
            for f in self._frontier:
                self.cfg.add_edge(f, node)
            self._frontier = [node]
            self._labels[stmt.label] = node
            self._lower_stmt(stmt.stmt)
        elif isinstance(stmt, A.EmptyStmt):
            pass
        else:  # pragma: no cover - exhaustive over the AST
            raise LoweringError(f"unsupported statement {type(stmt).__name__}")

    def _lower_local_decl(self, decl: A.VarDecl) -> None:
        line = decl.pos.line
        base_name = decl.name
        slot = base_name
        if self.scope.lookup(base_name) is not None or slot in self.info.var_types:
            # shadowing: give the inner binding a unique slot
            n = 2
            while f"{base_name}${n}" in self.info.var_types:
                n += 1
            slot = f"{base_name}${n}"
        ctype = decl.ctype
        self.scope.bind(base_name, slot, ctype)
        self.info.locals.append(slot)
        self.info.var_types[slot] = ctype
        lv = VarLv(slot, self.proc)
        if isinstance(ctype, ArrayType):
            size = _array_total_length(ctype)
            site = self._fresh_site("arr", line)
            size_expr: Expr = ENum(size) if size is not None else EUnknown("vla")
            self._emit(CAlloc(lv, size_expr, site), line)
            if isinstance(_array_element(ctype), StructType):
                pass  # struct elements: fields of the block's summary location
            if decl.init is not None:
                self._lower_array_init(lv, ctype, decl.init, line)
            return
        if decl.init is not None:
            if isinstance(ctype, StructType) and isinstance(decl.init, A.CommaExpr):
                self._lower_struct_init(lv, ctype, decl.init, line)
            else:
                rhs = self._lower_expr(decl.init, line)
                self._assign(lv, ctype, rhs, self._expr_ctype(decl.init), line)

    def _lower_array_init(
        self, lv: VarLv, ctype: ArrayType, init: A.Expr, line: int
    ) -> None:
        """Initializer lists for arrays: all elements join into the summary
        element (array smashing), so each initializer is one weak store."""
        parts = init.parts if isinstance(init, A.CommaExpr) else [init]
        for part in parts:
            if isinstance(part, A.CommaExpr):  # nested braces
                self._lower_array_init(lv, ctype, part, line)
            else:
                value = self._lower_expr(part, line)
                self._emit(
                    CSet(IndexLv(ELval(lv), EUnknown("init")), value), line
                )

    def _lower_struct_init(
        self, lv: Lval, ctype: StructType, init: A.CommaExpr, line: int
    ) -> None:
        layout = self.structs.get(ctype.tag)
        if layout is None:
            return
        for (fname, ftype), part in zip(layout.fields, init.parts):
            target = FieldLv(lv, fname)
            if isinstance(ftype, StructType) and isinstance(part, A.CommaExpr):
                self._lower_struct_init(target, ftype, part, line)
            else:
                value = self._lower_expr(part, line)
                self._emit(CSet(target, value), line)

    # -- control flow ------------------------------------------------------------

    def _lower_if(self, stmt: A.If) -> None:
        line = stmt.pos.line
        true_front, false_front = self._lower_cond(stmt.cond, line)
        self._frontier = true_front
        self._lower_stmt(stmt.then)
        after_then = self._frontier
        if stmt.otherwise is not None:
            self._frontier = false_front
            self._lower_stmt(stmt.otherwise)
            self._frontier = after_then + self._frontier
        else:
            self._frontier = after_then + false_front

    def _lower_while(self, stmt: A.While) -> None:
        line = stmt.pos.line
        head = self._emit(CSkip("loop-head"), line)
        true_front, false_front = self._lower_cond(stmt.cond, line)
        breaks: list[Node] = []
        continues: list[Node] = []
        self._loop_stack.append(_LoopCtx(breaks, continues))
        self._frontier = true_front
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        for f in self._frontier + continues:
            self.cfg.add_edge(f, head)
        self._frontier = false_front + breaks

    def _lower_do_while(self, stmt: A.DoWhile) -> None:
        line = stmt.pos.line
        head = self._emit(CSkip("loop-head"), line)
        breaks: list[Node] = []
        continues: list[Node] = []
        self._loop_stack.append(_LoopCtx(breaks, continues))
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        self._frontier = self._frontier + continues
        true_front, false_front = self._lower_cond(stmt.cond, line)
        for f in true_front:
            self.cfg.add_edge(f, head)
        self._frontier = false_front + breaks

    def _lower_for(self, stmt: A.For) -> None:
        line = stmt.pos.line
        saved = self.scope
        self.scope = Scope(saved)
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self._emit(CSkip("loop-head"), line)
        if stmt.cond is not None:
            true_front, false_front = self._lower_cond(stmt.cond, line)
        else:
            true_front, false_front = [head], []
        breaks: list[Node] = []
        continues: list[Node] = []
        self._loop_stack.append(_LoopCtx(breaks, continues))
        self._frontier = true_front
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        self._frontier = self._frontier + continues
        if stmt.step is not None:
            self._lower_expr_effects(stmt.step, line)
        for f in self._frontier:
            self.cfg.add_edge(f, head)
        self.scope = saved
        self._frontier = false_front + breaks

    def _lower_switch(self, stmt: A.Switch) -> None:
        line = stmt.pos.line
        scrutinee = self._lower_expr(stmt.scrutinee, line)
        dispatch = self._emit(CSkip("switch"), line)
        breaks: list[Node] = []
        self._loop_stack.append(_LoopCtx(breaks, None))
        fallthrough: list[Node] = []
        default_guard: Node | None = None
        has_default = False
        seen_values: list[A.Expr] = []
        for case in stmt.cases:
            if case.value is not None:
                value = self._lower_pure(case.value)
                guard = self.cfg.add_node(
                    CAssume(EBinOp("==", scrutinee, value)), case.pos.line
                )
                self.cfg.add_edge(dispatch, guard)
                seen_values.append(case.value)
            else:
                has_default = True
                guard = self.cfg.add_node(CSkip("default"), case.pos.line)
                self.cfg.add_edge(dispatch, guard)
                default_guard = guard
            self._frontier = fallthrough + [guard]
            for s in case.body:
                self._lower_stmt(s)
            fallthrough = self._frontier
        self._loop_stack.pop()
        tails = fallthrough + breaks
        if not has_default:
            # No default: control may skip the switch entirely.
            tails.append(dispatch)
        self._frontier = tails

    def _lower_cond(self, expr: A.Expr, line: int) -> tuple[list[Node], list[Node]]:
        """Lower a branch condition into assume-guarded subgraphs.

        Returns (true_frontier, false_frontier). Short-circuit operators are
        expanded structurally so each leaf becomes an ``assume``/``assume !``
        pair, and leaf side effects run only when their operand is reached.
        """
        if isinstance(expr, A.UnOp) and expr.op == "!":
            t, f = self._lower_cond(expr.operand, line)
            return f, t
        if isinstance(expr, A.BinOp) and expr.op == "&&":
            lt, lf = self._lower_cond(expr.left, line)
            self._frontier = lt
            rt, rf = self._lower_cond(expr.right, line)
            return rt, lf + rf
        if isinstance(expr, A.BinOp) and expr.op == "||":
            lt, lf = self._lower_cond(expr.left, line)
            self._frontier = lf
            rt, rf = self._lower_cond(expr.right, line)
            return lt + rt, rf
        cond = self._lower_expr(expr, line)
        pred = self._frontier
        t_node = self.cfg.add_node(CAssume(cond, positive=True), line)
        f_node = self.cfg.add_node(CAssume(cond, positive=False), line)
        for p in pred:
            self.cfg.add_edge(p, t_node)
            self.cfg.add_edge(p, f_node)
        return [t_node], [f_node]

    # -- expressions ---------------------------------------------------------------

    def _lower_expr_effects(self, expr: A.Expr, line: int) -> None:
        """Lower an expression evaluated for effect only."""
        if isinstance(expr, A.CommaExpr):
            for part in expr.parts:
                self._lower_expr_effects(part, line)
            return
        if isinstance(expr, A.Assign):
            self._lower_assign(expr, line)
            return
        if isinstance(expr, A.IncDec):
            lv, lv_type = self._lower_lvalue(expr.operand, line)
            delta = ENum(1) if expr.op == "++" else ENum(-1)
            self._assign_raw(lv, EBinOp("+", ELval(lv), delta), line)
            return
        if isinstance(expr, A.Call):
            self._lower_call(expr, line, want_result=False)
            return
        # Pure expression evaluated for effect: still lower subterms so
        # nested calls run, then drop the value.
        self._lower_expr(expr, line)

    def _lower_assign(self, expr: A.Assign, line: int) -> Expr:
        target_type = self._expr_ctype(expr.target)
        if expr.op == "=":
            rhs = self._lower_expr(expr.value, line)
            lv, _ = self._lower_lvalue(expr.target, line)
            self._assign(lv, target_type, rhs, self._expr_ctype(expr.value), line)
            return ELval(lv) if isinstance(lv, (VarLv, FieldLv)) else rhs
        op = expr.op[:-1]  # "+=" -> "+"
        rhs = self._lower_expr(expr.value, line)
        lv, _ = self._lower_lvalue(expr.target, line)
        self._assign_raw(lv, EBinOp(op, ELval(lv), rhs), line)
        return ELval(lv) if isinstance(lv, (VarLv, FieldLv)) else rhs

    def _assign(
        self, lv: Lval, lv_type: CType | None, rhs: Expr, rhs_type: CType | None, line: int
    ) -> None:
        """Emit an assignment, expanding struct copies into field copies."""
        if isinstance(lv_type, StructType) and isinstance(rhs, (ELval,)):
            layout = self.structs.get(lv_type.tag)
            if layout is not None:
                for fname, ftype in layout.fields:
                    src = _field_of(rhs.lval, fname)
                    dst = _field_of(lv, fname)
                    if isinstance(ftype, StructType):
                        self._assign(dst, ftype, ELval(src), ftype, line)
                    else:
                        self._emit(CSet(dst, ELval(src)), line)
                return
        self._assign_raw(lv, rhs, line)

    def _assign_raw(self, lv: Lval, rhs: Expr, line: int) -> None:
        self._emit(CSet(lv, rhs), line)

    def _lower_expr(self, expr: A.Expr, line: int) -> Expr:
        """Lower to a pure IR expression, emitting effect commands as needed."""
        if isinstance(expr, A.IntLit):
            return ENum(expr.value)
        if isinstance(expr, A.FloatLit):
            return ENum(int(expr.value))
        if isinstance(expr, A.StrLit):
            site = self._fresh_site("str", line)
            self.string_literals[site] = expr.value
            addr = EStrAddr(site, len(expr.value) + 1)
            # Materialize the block's abstract content: two weak stores of
            # the character range's endpoints (0 = the NUL terminator) make
            # the summary element cover every byte of the literal.
            tmp = self._fresh_temp("str")
            self._emit(CSet(tmp, addr), line)
            max_char = max((ord(c) for c in expr.value), default=0)
            self._emit(
                CSet(IndexLv(ELval(tmp), EUnknown("str-content")), ENum(0)),
                line,
            )
            if max_char:
                self._emit(
                    CSet(
                        IndexLv(ELval(tmp), EUnknown("str-content")),
                        ENum(max_char),
                    ),
                    line,
                )
            return ELval(tmp)
        if isinstance(expr, A.Ident):
            if expr.name in self.func_names and self.scope.lookup(expr.name) is None:
                return EAddrOf(VarLv(expr.name, None))  # function designator
            lv, _ = self._lower_lvalue(expr, line)
            return ELval(lv)
        if isinstance(expr, A.BinOp):
            if expr.op in ("&&", "||"):
                return self._lower_bool_expr(expr, line)
            left = self._lower_expr(expr.left, line)
            right = self._lower_expr(expr.right, line)
            return EBinOp(expr.op, left, right)
        if isinstance(expr, A.UnOp):
            if expr.op == "&":
                operand = expr.operand
                if isinstance(operand, A.Index):
                    base = self._lower_expr(operand.base, line)
                    index = self._lower_expr(operand.index, line)
                    return EBinOp("+", base, index)  # &a[i] == a + i
                lv, _ = self._lower_lvalue(operand, line)
                return EAddrOf(lv)
            if expr.op == "*":
                ptr = self._lower_expr(expr.operand, line)
                return ELval(DerefLv(ptr))
            if expr.op == "!":
                return self._lower_bool_expr(expr, line)
            operand = self._lower_expr(expr.operand, line)
            return EUnOp(expr.op, operand)
        if isinstance(expr, A.IncDec):
            lv, _ = self._lower_lvalue(expr.operand, line)
            delta = ENum(1) if expr.op == "++" else ENum(-1)
            if expr.prefix:
                self._assign_raw(lv, EBinOp("+", ELval(lv), delta), line)
                return ELval(lv)
            tmp = self._fresh_temp("post")
            self._emit(CSet(tmp, ELval(lv)), line)
            self._assign_raw(lv, EBinOp("+", ELval(lv), delta), line)
            return ELval(tmp)
        if isinstance(expr, A.Assign):
            return self._lower_assign(expr, line)
        if isinstance(expr, A.Conditional):
            return self._lower_conditional_expr(expr, line)
        if isinstance(expr, A.Call):
            result = self._lower_call(expr, line, want_result=True)
            return result if result is not None else EUnknown("void-call")
        if isinstance(expr, A.Index):
            base = self._lower_expr(expr.base, line)
            index = self._lower_expr(expr.index, line)
            return ELval(IndexLv(base, index))
        if isinstance(expr, A.FieldAccess):
            lv, _ = self._lower_lvalue(expr, line)
            return ELval(lv)
        if isinstance(expr, A.Cast):
            return self._lower_expr(expr.operand, line)
        if isinstance(expr, A.SizeOf):
            return ENum(self._sizeof(expr))
        if isinstance(expr, A.CommaExpr):
            result: Expr = ENum(0)
            for part in expr.parts:
                result = self._lower_expr(part, line)
            return result
        raise LoweringError(f"unsupported expression {type(expr).__name__}")

    def _lower_pure(self, expr: A.Expr) -> Expr:
        """Lower an expression that must already be pure (case labels)."""
        saved = self._frontier
        result = self._lower_expr(expr, 0)
        if self._frontier != saved:
            raise LoweringError("side effect in constant context")
        return result

    def _sizeof(self, expr: A.SizeOf) -> int:
        ty = expr.of_type
        if ty is None and expr.of_expr is not None:
            ty = self._expr_ctype(expr.of_expr)
        if isinstance(ty, ArrayType):
            total = _array_total_length(ty)
            return total if total is not None else 1
        # Abstract unit sizes: the analysis measures array extents in
        # elements, so scalar/pointer/struct sizeof is 1.
        return 1

    def _lower_bool_expr(self, expr: A.Expr, line: int) -> Expr:
        """``a && b`` etc. in a value position: build a diamond writing 0/1."""
        tmp = self._fresh_temp("bool")
        true_front, false_front = self._lower_cond(expr, line)
        t_set = self.cfg.add_node(CSet(tmp, ENum(1)), line)
        f_set = self.cfg.add_node(CSet(tmp, ENum(0)), line)
        for n in true_front:
            self.cfg.add_edge(n, t_set)
        for n in false_front:
            self.cfg.add_edge(n, f_set)
        self._frontier = [t_set, f_set]
        return ELval(tmp)

    def _lower_conditional_expr(self, expr: A.Conditional, line: int) -> Expr:
        tmp = self._fresh_temp("cond")
        true_front, false_front = self._lower_cond(expr.cond, line)
        self._frontier = true_front
        t_val = self._lower_expr(expr.then, line)
        t_set = self._emit(CSet(tmp, t_val), line)
        t_tail = self._frontier
        self._frontier = false_front
        f_val = self._lower_expr(expr.otherwise, line)
        f_set = self._emit(CSet(tmp, f_val), line)
        self._frontier = t_tail + self._frontier
        return ELval(tmp)

    # -- calls ----------------------------------------------------------------------

    def _lower_call(
        self, expr: A.Call, line: int, want_result: bool
    ) -> Expr | None:
        callee_name: str | None = None
        if isinstance(expr.func, A.Ident) and self.scope.lookup(expr.func.name) is None:
            callee_name = expr.func.name
        if callee_name in ALLOC_FUNCTIONS:
            size_idx = ALLOC_FUNCTIONS[callee_name]
            size: Expr = EUnknown("alloc-size")
            if size_idx < len(expr.args):
                size = self._lower_expr(expr.args[size_idx], line)
            site = self._fresh_site("malloc", line)
            tmp = self._fresh_temp("heap")
            self._emit(CAlloc(tmp, size, site), line)
            return ELval(tmp)
        if callee_name in NOOP_FUNCTIONS:
            for arg in expr.args:
                self._lower_expr(arg, line)
            return EUnknown(f"{callee_name}-result") if want_result else None
        args = tuple(self._lower_expr(a, line) for a in expr.args)
        callee_expr = self._lower_expr(expr.func, line)
        static = callee_name if callee_name in self.func_names else None
        call_node = self._emit(CCall(callee_expr, args, static), line)
        ret_lv = self._fresh_temp("ret") if want_result else None
        self._emit(CRetBind(ret_lv, call_node.nid), line)
        return ELval(ret_lv) if ret_lv is not None else None

    # -- lvalues --------------------------------------------------------------------

    def _lower_lvalue(self, expr: A.Expr, line: int) -> tuple[Lval, CType | None]:
        if isinstance(expr, A.Ident):
            found = self.scope.lookup_with_scope(expr.name)
            if found is None:
                # Function designator or undeclared identifier (extern).
                return VarLv(expr.name, None), None
            slot, ctype, owner = found
            proc = None if owner.is_root() else self.proc
            return VarLv(slot, proc), ctype
        if isinstance(expr, A.UnOp) and expr.op == "*":
            ptr = self._lower_expr(expr.operand, line)
            pointee = _pointee_type(self._expr_ctype(expr.operand))
            return DerefLv(ptr), pointee
        if isinstance(expr, A.Index):
            base = self._lower_expr(expr.base, line)
            index = self._lower_expr(expr.index, line)
            base_type = self._expr_ctype(expr.base)
            elem = None
            if isinstance(base_type, ArrayType):
                elem = base_type.element
            elif isinstance(base_type, PointerType):
                elem = base_type.pointee
            return IndexLv(base, index), elem
        if isinstance(expr, A.FieldAccess):
            ftype = self._field_type(expr)
            if expr.arrow:
                ptr = self._lower_expr(expr.base, line)
                return DerefLv(ptr, expr.fieldname), ftype
            base_lv, _ = self._lower_lvalue(expr.base, line)
            return _field_of(base_lv, expr.fieldname), ftype
        if isinstance(expr, A.Cast):
            return self._lower_lvalue(expr.operand, line)
        raise LoweringError(
            f"expression is not an lvalue: {type(expr).__name__}", expr.pos
        )

    def _field_type(self, expr: A.FieldAccess) -> CType | None:
        base_type = self._expr_ctype(expr.base)
        if expr.arrow and isinstance(base_type, PointerType):
            base_type = base_type.pointee
        if isinstance(base_type, StructType):
            layout = self.structs.get(base_type.tag)
            if layout is not None:
                return layout.field_type(expr.fieldname)
        return None

    # -- static types (best effort, used for struct expansion & arrays) -------------

    def _expr_ctype(self, expr: A.Expr) -> CType | None:
        if isinstance(expr, A.Ident):
            found = self.scope.lookup(expr.name)
            return found[1] if found else None
        if isinstance(expr, A.UnOp):
            if expr.op == "*":
                return _pointee_type(self._expr_ctype(expr.operand))
            if expr.op == "&":
                inner = self._expr_ctype(expr.operand)
                return PointerType(inner) if inner is not None else None
            return IntType()
        if isinstance(expr, A.Index):
            base = self._expr_ctype(expr.base)
            if isinstance(base, ArrayType):
                return base.element
            if isinstance(base, PointerType):
                return base.pointee
            return None
        if isinstance(expr, A.FieldAccess):
            return self._field_type(expr)
        if isinstance(expr, A.Cast):
            return expr.to_type
        if isinstance(expr, (A.IntLit, A.FloatLit, A.SizeOf)):
            return IntType()
        if isinstance(expr, A.StrLit):
            return PointerType(IntType("char"))
        if isinstance(expr, A.Assign):
            return self._expr_ctype(expr.target)
        if isinstance(expr, A.Conditional):
            return self._expr_ctype(expr.then)
        if isinstance(expr, A.BinOp):
            left = self._expr_ctype(expr.left)
            if isinstance(left, (PointerType, ArrayType)):
                return left
            right = self._expr_ctype(expr.right)
            if isinstance(right, (PointerType, ArrayType)):
                return right
            return IntType()
        return None


def _field_of(base: Lval, fieldname: str) -> Lval:
    """Attach a field access to an lvalue, merging into DerefLv when the
    base is already a pointer dereference."""
    if isinstance(base, DerefLv) and base.fieldname is None:
        return DerefLv(base.ptr, fieldname)
    if isinstance(base, DerefLv):
        return DerefLv(base.ptr, f"{base.fieldname}.{fieldname}")
    if isinstance(base, FieldLv):
        return FieldLv(base.base, f"{base.fieldname}.{fieldname}")
    return FieldLv(base, fieldname)


def _pointee_type(ty: CType | None) -> CType | None:
    if isinstance(ty, PointerType):
        return ty.pointee
    if isinstance(ty, ArrayType):
        return ty.element
    return None


def _array_total_length(ty: ArrayType) -> int | None:
    """Total element count of a possibly multidimensional array."""
    total = 1
    cur: CType = ty
    while isinstance(cur, ArrayType):
        if cur.length is None:
            return None
        total *= cur.length
        cur = cur.element
    return total


def _array_element(ty: ArrayType) -> CType:
    cur: CType = ty
    while isinstance(cur, ArrayType):
        cur = cur.element
    return cur
