"""Dominator trees and dominance frontiers.

Implements the Cooper–Harvey–Kennedy "engineered" iterative dominator
algorithm and Cytron-style dominance frontiers. These feed the SSA-based
def-use chain generator (paper Section 5: "We use SSA generation because it
is fast and reduces the size of def-use chains").

The module is graph-generic: it works on any rooted digraph given as
successor/predecessor maps over hashable node ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

NodeId = Hashable


@dataclass
class DomInfo:
    """Results of dominator analysis over one rooted graph."""

    root: NodeId
    idom: dict[NodeId, NodeId] = field(default_factory=dict)
    children: dict[NodeId, list[NodeId]] = field(default_factory=dict)
    rpo: list[NodeId] = field(default_factory=list)
    frontier: dict[NodeId, set[NodeId]] = field(default_factory=dict)

    def dominates(self, a: NodeId, b: NodeId) -> bool:
        """True iff ``a`` dominates ``b`` (reflexive)."""
        cur: NodeId | None = b
        while cur is not None:
            if cur == a:
                return True
            if cur == self.root:
                return False
            cur = self.idom.get(cur)
        return False

    def dom_tree_preorder(self) -> list[NodeId]:
        out: list[NodeId] = []
        stack = [self.root]
        while stack:
            n = stack.pop()
            out.append(n)
            stack.extend(reversed(self.children.get(n, [])))
        return out


def _reverse_postorder(
    root: NodeId, succs: Mapping[NodeId, Sequence[NodeId]]
) -> list[NodeId]:
    """Iterative DFS producing reverse postorder from ``root``."""
    seen: set[NodeId] = {root}
    order: list[NodeId] = []
    stack: list[tuple[NodeId, int]] = [(root, 0)]
    while stack:
        node, i = stack[-1]
        nexts = succs.get(node, ())
        if i < len(nexts):
            stack[-1] = (node, i + 1)
            child = nexts[i]
            if child not in seen:
                seen.add(child)
                stack.append((child, 0))
        else:
            stack.pop()
            order.append(node)
    order.reverse()
    return order


def compute_dominators(
    root: NodeId,
    succs: Mapping[NodeId, Sequence[NodeId]],
    preds: Mapping[NodeId, Sequence[NodeId]],
) -> DomInfo:
    """Cooper–Harvey–Kennedy iterative dominator computation.

    Unreachable nodes are ignored. Complexity O(E · d) with small constants;
    on reducible CFGs it converges in 2 passes.
    """
    rpo = _reverse_postorder(root, succs)
    rpo_index = {n: i for i, n in enumerate(rpo)}
    idom: dict[NodeId, NodeId] = {root: root}

    def intersect(a: NodeId, b: NodeId) -> NodeId:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            candidates = [
                p for p in preds.get(node, ()) if p in idom and p in rpo_index
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True

    info = DomInfo(root=root, idom={}, rpo=rpo)
    for node, parent in idom.items():
        if node == root:
            continue
        info.idom[node] = parent
        info.children.setdefault(parent, []).append(node)
    for kids in info.children.values():
        kids.sort(key=lambda n: rpo_index.get(n, 0))

    # Dominance frontiers (Cytron et al., via the CHK formulation): for each
    # join node, walk up from each predecessor until reaching its idom.
    frontier: dict[NodeId, set[NodeId]] = {n: set() for n in rpo}
    for node in rpo:
        ps = [p for p in preds.get(node, ()) if p in rpo_index]
        if len(ps) < 2:
            continue
        stop = info.idom.get(node, root)
        for p in ps:
            runner = p
            while runner != stop:
                frontier[runner].add(node)
                if runner == root:
                    break
                runner = info.idom.get(runner, root)
    info.frontier = frontier
    return info


def iterated_frontier(
    info: DomInfo, seeds: set[NodeId]
) -> set[NodeId]:
    """DF⁺(seeds): the iterated dominance frontier — phi placement sites."""
    out: set[NodeId] = set()
    work = list(seeds)
    seen = set(seeds)
    while work:
        node = work.pop()
        for f in info.frontier.get(node, ()):
            if f not in out:
                out.add(f)
                if f not in seen:
                    seen.add(f)
                    work.append(f)
    return out
