"""Human-readable dumps of programs, analysis results, and dependencies.

Debugging aids for analyzer developers: procedure listings with per-node
analysis facts, dependency listings grouped by location, and Graphviz
exports of CFGs annotated with data-dependency overlays.
"""

from __future__ import annotations

from typing import Iterable

from repro.domains.absloc import AbsLoc
from repro.ir.cfg import ProcCFG
from repro.ir.program import Program


def format_procedure(
    program: Program,
    proc: str,
    result=None,
    locs: Iterable[AbsLoc] | None = None,
) -> str:
    """A listing of one procedure's control points. With ``result`` (any
    analysis result exposing ``.table``), each node shows the values of
    ``locs`` (or its whole state when ``locs`` is None)."""
    cfg = program.cfgs[proc]
    lines = [f"procedure {proc}:"]
    for node in cfg.nodes:
        succs = ",".join(str(s) for s in cfg.succs.get(node.nid, []))
        line = f"  [{node.nid:>4}] {node.cmd}  → {succs or '∎'}"
        if result is not None:
            state = result.table.get(node.nid)
            if state is None:
                line += "   ⊥ (unreached)"
            elif locs is not None:
                facts = ", ".join(
                    f"{l}={state.get(l)}" for l in locs
                )
                line += f"   {{{facts}}}"
            else:
                line += f"   {state!r}"
        lines.append(line)
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Listing of every procedure."""
    return "\n\n".join(
        format_procedure(program, proc) for proc in program.procedures()
    )


def format_dependencies(deps, program: Program, loc: AbsLoc | None = None) -> str:
    """The dependency relation as ``src —loc→ dst`` lines (optionally
    filtered to one location), with the commands inline."""
    node = program.factory.nodes
    lines = []
    for src, dst, l in sorted(
        deps.triples(), key=lambda t: (t[0], t[1], str(t[2]))
    ):
        if loc is not None and l != loc:
            continue
        lines.append(
            f"  {src:>4} —{l}→ {dst:<4}   [{node[src].cmd}  ⇒  {node[dst].cmd}]"
        )
    return "\n".join(lines) if lines else "  (none)"


def cfg_to_dot(
    program: Program,
    proc: str,
    deps=None,
) -> str:
    """Graphviz source of one procedure's CFG; data dependencies (if
    given) are drawn as dashed red edges labelled with their locations."""
    cfg = program.cfgs[proc]
    node_ids = {n.nid for n in cfg.nodes}
    out = [f'digraph "{proc}" {{', "  node [shape=box, fontsize=10];"]
    for n in cfg.nodes:
        label = str(n.cmd).replace('"', "'")
        out.append(f'  n{n.nid} [label="{n.nid}: {label}"];')
    for src, dsts in cfg.succs.items():
        for dst in dsts:
            out.append(f"  n{src} -> n{dst};")
    if deps is not None:
        for src, dst, loc in deps.triples():
            if src in node_ids and dst in node_ids:
                out.append(
                    f'  n{src} -> n{dst} [style=dashed, color=red, '
                    f'label="{loc}", fontcolor=red, fontsize=8];'
                )
    out.append("}")
    return "\n".join(out)


def sparsity_report(defuse, program: Program) -> str:
    """A per-procedure summary of average D̂/Û sizes — the §6.3 numbers."""
    lines = ["sparsity by procedure:"]
    for proc, cfg in program.cfgs.items():
        nids = [n.nid for n in cfg.nodes]
        if not nids:
            continue
        d = sum(len(defuse.d(n)) for n in nids) / len(nids)
        u = sum(len(defuse.u(n)) for n in nids) / len(nids)
        lines.append(f"  {proc:<24} |D̂|={d:5.2f}  |Û|={u:5.2f}  ({len(nids)} points)")
    return "\n".join(lines)
