"""IR commands and expressions.

The lowering (``repro.ir.lowering``) flattens the C AST into a small command
language close to the paper's::

    cmd ::= x := e  |  *x := e  |  assume(e)  |  x := alloc(e)
          | call  |  return  |  entry  |  exit  |  skip

Each CFG node carries exactly one command. Expressions are *pure*: calls and
side effects are extracted into separate commands with compiler temporaries
during lowering, so abstract transfer functions never need to order effects
inside an expression.

Lvalues describe where a command writes:

* :class:`VarLv` — a named variable,
* :class:`FieldLv` — a struct field of a variable (``x.f``),
* :class:`DerefLv` — the targets of a pointer expression, optionally
  followed by a field (``*p``, ``p->f``),
* :class:`IndexLv` — an array element (``a[i]``), analyzed with array-block
  smashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Pure expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for pure IR expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class ENum(Expr):
    """Integer constant."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ELval(Expr):
    """Read of an lvalue."""

    lval: "Lval"

    def __str__(self) -> str:
        return str(self.lval)


@dataclass(frozen=True)
class EAddrOf(Expr):
    """``&lv`` — the address of an lvalue."""

    lval: "Lval"

    def __str__(self) -> str:
        return f"&{self.lval}"


@dataclass(frozen=True)
class EBinOp(Expr):
    """Pure binary operator (C spelling)."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class EUnOp(Expr):
    """Pure unary operator: ``-``, ``+``, ``!``, ``~``."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class EUnknown(Expr):
    """An expression the analysis models as completely unknown (top)."""

    reason: str = ""

    def __str__(self) -> str:
        return f"unknown({self.reason})"


@dataclass(frozen=True)
class EStrAddr(Expr):
    """Address of a statically allocated string literal; ``site`` names the
    literal's allocation site, ``length`` its buffer size (len + NUL)."""

    site: str
    length: int

    def __str__(self) -> str:
        return f"&str<{self.site}>[{self.length}]"


# --------------------------------------------------------------------------
# Lvalues
# --------------------------------------------------------------------------


class Lval:
    """Base class for IR lvalues."""

    __slots__ = ()


@dataclass(frozen=True)
class VarLv(Lval):
    """A named variable. ``proc`` is the owning procedure or None for
    globals; lowering resolves scoping so names are unambiguous."""

    name: str
    proc: str | None = None

    def __str__(self) -> str:
        return self.name if self.proc is None else f"{self.proc}::{self.name}"


@dataclass(frozen=True)
class FieldLv(Lval):
    """``base.field`` where base is a variable lvalue (structs are
    flattened: nested fields become dotted paths during lowering)."""

    base: Lval
    fieldname: str

    def __str__(self) -> str:
        return f"{self.base}.{self.fieldname}"


@dataclass(frozen=True)
class DerefLv(Lval):
    """``*(e)`` or ``e->field``: writes go to every abstract location the
    pointer expression may denote."""

    ptr: Expr
    fieldname: str | None = None

    def __str__(self) -> str:
        if self.fieldname is None:
            return f"*({self.ptr})"
        return f"({self.ptr})->{self.fieldname}"


@dataclass(frozen=True)
class IndexLv(Lval):
    """``base[index]`` — an element of an array block."""

    base: Expr
    index: Expr

    def __str__(self) -> str:
        return f"({self.base})[{self.index}]"


# --------------------------------------------------------------------------
# Commands
# --------------------------------------------------------------------------


class Command:
    """Base class for IR commands. One command per CFG node."""

    __slots__ = ()


@dataclass(frozen=True)
class CSkip(Command):
    """No-op (join points, lowered-away constructs)."""

    note: str = ""

    def __str__(self) -> str:
        return f"skip {self.note}".rstrip()


@dataclass(frozen=True)
class CSet(Command):
    """``lval := expr``."""

    lval: Lval
    expr: Expr

    def __str__(self) -> str:
        return f"{self.lval} := {self.expr}"


@dataclass(frozen=True)
class CAlloc(Command):
    """``lval := alloc_site(size)`` — array/heap allocation. ``site`` is the
    allocation-site identifier (the heap abstraction of Section 6.1)."""

    lval: Lval
    size: Expr
    site: str

    def __str__(self) -> str:
        return f"{self.lval} := alloc<{self.site}>({self.size})"


@dataclass(frozen=True)
class CAssume(Command):
    """``assume(e)`` / ``assume(!e)`` — branch condition refinement."""

    cond: Expr
    positive: bool = True

    def __str__(self) -> str:
        neg = "" if self.positive else "!"
        return f"assume({neg}{self.cond})"


@dataclass(frozen=True)
class CCall(Command):
    """A function call. ``callee`` is the called expression (a function name
    lvalue or a function pointer); argument binding to formals is part of
    this command's semantics. The returned value is bound at the matching
    :class:`CRetBind` node."""

    callee: Expr
    args: tuple[Expr, ...]
    static_callee: str | None = None  # direct-call fast path

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"call {self.static_callee or self.callee}({args})"


@dataclass(frozen=True)
class CRetBind(Command):
    """Return-site node paired with a :class:`CCall`: binds the callee's
    return value into ``lval`` (or discards it)."""

    lval: Lval | None
    call_node: int  # node id of the paired CCall

    def __str__(self) -> str:
        if self.lval is None:
            return f"retbind _ <- call@{self.call_node}"
        return f"retbind {self.lval} <- call@{self.call_node}"


@dataclass(frozen=True)
class CReturn(Command):
    """``return e`` — writes the procedure's return location."""

    value: Expr | None = None

    def __str__(self) -> str:
        return "return" if self.value is None else f"return {self.value}"


@dataclass(frozen=True)
class CEntry(Command):
    """Procedure entry marker."""

    proc: str

    def __str__(self) -> str:
        return f"entry {self.proc}"


@dataclass(frozen=True)
class CExit(Command):
    """Procedure exit marker (all returns flow here)."""

    proc: str

    def __str__(self) -> str:
        return f"exit {self.proc}"


def expr_vars(e: Expr) -> set[Lval]:
    """All lvalues syntactically read by pure expression ``e`` (shallow:
    the lvalues themselves, not the locations they may denote)."""
    out: set[Lval] = set()
    _collect_expr(e, out)
    return out


def _collect_expr(e: Expr, out: set[Lval]) -> None:
    if isinstance(e, ELval):
        out.add(e.lval)
        _collect_lval(e.lval, out)
    elif isinstance(e, EAddrOf):
        _collect_lval(e.lval, out)
    elif isinstance(e, EBinOp):
        _collect_expr(e.left, out)
        _collect_expr(e.right, out)
    elif isinstance(e, EUnOp):
        _collect_expr(e.operand, out)


def _collect_lval(lv: Lval, out: set[Lval]) -> None:
    if isinstance(lv, DerefLv):
        _collect_expr(lv.ptr, out)
    elif isinstance(lv, IndexLv):
        _collect_expr(lv.base, out)
        _collect_expr(lv.index, out)
    elif isinstance(lv, FieldLv):
        _collect_lval(lv.base, out)
