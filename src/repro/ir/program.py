"""Whole-program IR.

:class:`Program` owns every procedure CFG plus the metadata later phases
need: struct layouts, per-procedure variable tables, string-literal sites,
and the synthetic ``__init`` procedure that runs global initializers and
calls ``main``. It is the ⟨C, ↪⟩ of the paper: :meth:`Program.nodes` is the
set of control points and intraprocedural edges live in the per-procedure
CFGs. Interprocedural (call/return) edges are added by the analyses once the
call graph is resolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import cast as A
from repro.frontend import parse
from repro.frontend.ctypes import (
    ArrayType,
    CType,
    FuncType,
    IntType,
    StructLayout,
    StructType,
)
from repro.ir.cfg import Node, NodeFactory, ProcCFG
from repro.ir.commands import (
    CAlloc,
    CCall,
    CRetBind,
    CSet,
    EAddrOf,
    ENum,
    EUnknown,
    Expr,
    VarLv,
)
from repro.ir.lowering import (
    FunctionLowerer,
    ProcInfo,
    Scope,
    _array_total_length,
)

INIT_PROC = "__init"


@dataclass
class Program:
    """A lowered whole program."""

    cfgs: dict[str, ProcCFG] = field(default_factory=dict)
    proc_infos: dict[str, ProcInfo] = field(default_factory=dict)
    structs: dict[str, StructLayout] = field(default_factory=dict)
    string_literals: dict[str, str] = field(default_factory=dict)
    factory: NodeFactory = field(default_factory=NodeFactory)
    global_types: dict[str, CType] = field(default_factory=dict)
    main: str = "main"
    #: functions whose bodies could not be parsed/lowered under error
    #: recovery, mapped to the soundness note explaining how calls to them
    #: are modelled (an explicit havoc stub: globals ⊤, return ⊤)
    quarantined: dict[str, str] = field(default_factory=dict)

    # -- node access -----------------------------------------------------------

    def nodes(self) -> list[Node]:
        """All control points, in id order."""
        out: list[Node] = []
        for cfg in self.cfgs.values():
            out.extend(cfg.nodes)
        out.sort(key=lambda n: n.nid)
        return out

    def node(self, nid: int) -> Node:
        return self.factory.nodes[nid]

    def cfg_of(self, node: Node) -> ProcCFG:
        return self.cfgs[node.proc]

    def entry_node(self) -> Node:
        entry = self.cfgs[INIT_PROC].entry
        assert entry is not None
        return entry

    def procedures(self) -> list[str]:
        return list(self.cfgs.keys())

    def defined_functions(self) -> set[str]:
        """Procedures that have bodies (excluding the synthetic init)."""
        return {p for p in self.cfgs if p != INIT_PROC}

    def analyzed_functions(self) -> set[str]:
        """Defined functions excluding quarantined havoc stubs — the set
        the analysis produces real (non-stub) tables for."""
        return self.defined_functions() - set(self.quarantined)

    # -- statistics (Table 1 columns) -------------------------------------------

    def num_statements(self) -> int:
        return sum(len(cfg.nodes) for cfg in self.cfgs.values())

    def num_functions(self) -> int:
        return len(self.defined_functions())


class ProgramBuilder:
    """Lowers a :class:`TranslationUnit` into a :class:`Program`.

    With a :class:`~repro.frontend.errors.DiagnosticBag` attached, lowering
    failures are recovered per function: the offending function is
    quarantined behind a havoc stub (like bodies that already failed to
    parse) instead of killing the whole translation unit.
    """

    def __init__(
        self,
        unit: A.TranslationUnit,
        main: str = "main",
        diagnostics=None,
    ) -> None:
        self.unit = unit
        self.main = main
        self.diagnostics = diagnostics

    def build(self, call_orphans: bool = False) -> Program:
        """Lower every function plus the synthetic ``__init`` procedure.

        ``call_orphans`` mirrors the paper's treatment of callbacks:
        procedures unreachable from ``main`` are explicitly called from the
        root so they get analyzed.
        """
        from repro.frontend.errors import FrontendError

        program = Program(main=self.main)
        program.structs = dict(self.unit.structs)
        factory = program.factory

        func_names = {f.name for f in self.unit.functions}
        func_names |= {p.name for p in self.unit.prototypes}

        global_scope = Scope()
        for g in self.unit.globals:
            ctype = g.ctype
            if isinstance(ctype, FuncType):
                continue
            global_scope.bind(g.name, g.name, ctype)
            program.global_types[g.name] = ctype

        for fn in self.unit.functions:
            if fn.quarantined:
                self._build_havoc_stub(program, fn, global_scope, func_names)
                continue
            lowerer = FunctionLowerer(
                self.unit,
                fn.name,
                factory,
                global_scope,
                program.structs,
                func_names,
            )
            try:
                cfg, info = lowerer.lower(fn)
            except FrontendError as exc:
                if self.diagnostics is None:
                    raise
                # Partial CFG nodes stay in the factory but in no CFG, so
                # no later phase ever visits them.
                self.diagnostics.record_exception(exc, "lowering")
                self.diagnostics.note(
                    f"function {fn.name!r} quarantined: body failed to "
                    "lower; calls are modelled by a havoc stub "
                    "(globals and return value assumed unknown)",
                    fn.pos,
                )
                self._build_havoc_stub(program, fn, global_scope, func_names)
                continue
            program.cfgs[fn.name] = cfg
            program.proc_infos[fn.name] = info
            program.string_literals.update(lowerer.string_literals)

        self._build_init_proc(program, global_scope, func_names, call_orphans)
        return program

    def _build_havoc_stub(
        self,
        program: Program,
        fn: A.FuncDef,
        global_scope: Scope,
        func_names: set[str],
    ) -> None:
        """Replace a quarantined function with an explicit havoc stub.

        The stub is the sound over-approximation of an arbitrary body over
        the modelled state: every global is assumed unknown (⊤) and so is
        the return value, so calls into the quarantine stay conservative.
        Parameters are registered normally so argument binding at call
        sites keeps working.
        """
        from repro.frontend.ctypes import PointerType
        from repro.ir.commands import CEntry, CExit, CReturn

        lowerer = FunctionLowerer(
            self.unit,
            fn.name,
            program.factory,
            global_scope,
            program.structs,
            func_names,
        )
        cfg, info = lowerer.cfg, lowerer.info
        info.ret_type = fn.ret_type
        info.variadic = fn.variadic
        entry = cfg.add_node(CEntry(fn.name), fn.pos.line)
        cfg.entry = entry
        lowerer._frontier = [entry]
        for p in fn.params:
            slot = p.name or lowerer._fresh_temp("arg").name
            ptype = p.ctype
            if isinstance(ptype, ArrayType):
                ptype = PointerType(ptype.element)
            lowerer.scope.bind(p.name, slot, ptype)
            info.params.append(slot)
            info.var_types[slot] = ptype
        havoc = EUnknown(f"quarantine:{fn.name}")
        for gname in program.global_types:
            lowerer._emit(CSet(VarLv(gname, None), havoc), fn.pos.line)
        lowerer._emit(CReturn(havoc), fn.pos.line)
        exit_node = cfg.add_node(CExit(fn.name), fn.pos.line)
        for f in lowerer._frontier + lowerer._returns:
            cfg.add_edge(f, exit_node)
        cfg.exit = exit_node
        program.cfgs[fn.name] = cfg
        program.proc_infos[fn.name] = info
        program.quarantined[fn.name] = (
            "calls are modelled by a havoc stub: all globals and the "
            "return value are assumed unknown (sound for the modelled "
            "state; unmodelled effects of the real body are lost)"
        )

    def _build_init_proc(
        self,
        program: Program,
        global_scope: Scope,
        func_names: set[str],
        call_orphans: bool,
    ) -> None:
        """Synthesize ``__init``: global initializers, then call main (and
        optionally every orphan procedure)."""
        init_fn = A.FuncDef(
            name=INIT_PROC,
            ret_type=IntType(),
            params=[],
            body=A.Compound([]),
        )
        lowerer = FunctionLowerer(
            self.unit,
            INIT_PROC,
            program.factory,
            global_scope,
            program.structs,
            func_names,
        )
        cfg = lowerer.cfg
        from repro.ir.commands import CEntry, CExit

        entry = cfg.add_node(CEntry(INIT_PROC))
        cfg.entry = entry
        lowerer._frontier = [entry]

        for g in self.unit.globals:
            if isinstance(g.ctype, FuncType):
                continue
            lv = VarLv(g.name, None)
            if isinstance(g.ctype, ArrayType):
                size = _array_total_length(g.ctype)
                site = f"{INIT_PROC}:arr:{g.pos.line}:{g.name}"
                size_expr: Expr = ENum(size) if size is not None else EUnknown("vla")
                lowerer._emit(CAlloc(lv, size_expr, site), g.pos.line)
                if g.init is not None:
                    lowerer._lower_array_init(lv, g.ctype, g.init, g.pos.line)
            elif g.init is not None:
                if isinstance(g.ctype, StructType) and isinstance(
                    g.init, A.CommaExpr
                ):
                    lowerer._lower_struct_init(lv, g.ctype, g.init, g.pos.line)
                else:
                    value = lowerer._lower_expr(g.init, g.pos.line)
                    lowerer._emit(CSet(lv, value), g.pos.line)
            else:
                # Uninitialized globals are zero in C.
                lowerer._emit(CSet(lv, ENum(0)), g.pos.line)

        targets = []
        if self.main in program.cfgs:
            targets.append(self.main)
        if call_orphans:
            reachable = _statically_reachable(program, self.main)
            targets.extend(
                sorted(p for p in program.defined_functions() if p not in reachable)
            )
        for target in targets:
            info = program.proc_infos[target]
            args = tuple(EUnknown(f"arg-{p}") for p in info.params)
            call = lowerer._emit(
                CCall(EAddrOf(VarLv(target, None)), args, target)
            )
            lowerer._emit(CRetBind(None, call.nid))

        exit_node = cfg.add_node(CExit(INIT_PROC))
        for f in lowerer._frontier:
            cfg.add_edge(f, exit_node)
        cfg.exit = exit_node
        program.cfgs[INIT_PROC] = cfg
        program.proc_infos[INIT_PROC] = lowerer.info
        program.string_literals.update(lowerer.string_literals)


def _statically_reachable(program: Program, root: str) -> set[str]:
    """Procedures reachable from ``root`` via direct (named) calls only —
    a cheap pre-callgraph reachability used to find orphan procedures."""
    seen: set[str] = set()
    stack = [root] if root in program.cfgs else []
    while stack:
        proc = stack.pop()
        if proc in seen:
            continue
        seen.add(proc)
        for node in program.cfgs[proc].nodes:
            cmd = node.cmd
            if isinstance(cmd, CCall) and cmd.static_callee in program.cfgs:
                if cmd.static_callee not in seen:
                    stack.append(cmd.static_callee)
    return seen


def build_program(
    source: str,
    filename: str = "<input>",
    main: str = "main",
    call_orphans: bool = False,
    telemetry=None,
    diagnostics=None,
) -> Program:
    """Parse and lower C-subset ``source`` into a whole-program IR.

    With a :class:`repro.telemetry.Telemetry` registry attached, the two
    frontend stages are traced as ``parse``/``lower`` spans (nested under
    the caller's ``frontend`` phase span) with size counters.

    With a :class:`~repro.frontend.errors.DiagnosticBag`, the frontend runs
    in panic-mode recovery: lex/parse/lowering errors are recorded in the
    bag, unparseable or unlowerable functions are quarantined behind havoc
    stubs (named in ``program.quarantined``), and every clean function
    still reaches the analysis.
    """
    from repro.telemetry.core import Telemetry

    tel = Telemetry.coerce(telemetry)
    with tel.span("parse", category="frontend", file=filename) as sp:
        unit = parse(source, filename, diagnostics)
        sp.set(functions=len(unit.functions))
    with tel.span("lower", category="frontend"):
        program = ProgramBuilder(unit, main, diagnostics).build(
            call_orphans=call_orphans
        )
    tel.count("frontend.source_lines", source.count("\n") + 1)
    tel.count("frontend.procedures", program.num_functions())
    tel.count("frontend.control_points", program.num_statements())
    if diagnostics is not None:
        tel.count("frontend.diagnostics", len(diagnostics.errors()))
        tel.count("frontend.quarantined", len(program.quarantined))
    return program
