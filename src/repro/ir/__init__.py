"""Intermediate representation: commands, CFGs, whole-program IR."""

from repro.ir.callgraph import CallGraph, build_callgraph
from repro.ir.cfg import Node, NodeFactory, ProcCFG
from repro.ir.program import Program, ProgramBuilder, build_program

__all__ = [
    "CallGraph",
    "build_callgraph",
    "Node",
    "NodeFactory",
    "ProcCFG",
    "Program",
    "ProgramBuilder",
    "build_program",
]
