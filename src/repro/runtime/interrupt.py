"""Signal-to-exception bridging for long-running analysis paths.

The CLI and the batch-driver workers install handlers that convert
SIGINT/SIGTERM into an :class:`AnalysisInterrupted` exception raised at the
next bytecode boundary. That routes an external kill through the ordinary
Python unwind: the engine's abort path flushes a final checkpoint, spans
close, and the caller maps the exception to the conventional
``128 + signum`` exit code. SIGKILL cannot be caught — crash recovery for
that case rests on the engine's *periodic* checkpoints.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager

from repro.runtime.errors import AnalysisInterrupted

#: the signals a graceful shutdown handles by default
GRACEFUL_SIGNALS = (signal.SIGINT, signal.SIGTERM)


def _raise_interrupted(signum, frame):
    raise AnalysisInterrupted(signum)


@contextmanager
def raising_signal_handlers(*signums: int):
    """Install handlers that raise :class:`AnalysisInterrupted`; restore the
    previous handlers on exit. A no-op off the main thread (Python only
    delivers signals there, and ``signal.signal`` would raise)."""
    if not signums:
        signums = GRACEFUL_SIGNALS
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _raise_interrupted)
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
