"""Crash-safe file writes (temp file + ``os.replace``).

Every durable artifact the analysis produces — checkpoints, telemetry
exports, batch outcome reports, bench results — must never be observable
half-written: a reader (or a resumed run) that finds the file at all must
find a complete, internally consistent one. POSIX rename within one
filesystem is atomic, so the pattern is uniform: write to a temp file in
the *same directory* as the target (same filesystem, so the replace cannot
degrade to a copy), flush + fsync, then ``os.replace`` over the target.
A crash at any point leaves either the old file or the new file, never a
truncated hybrid; stray ``.tmp-*`` files are the only possible debris and
are cleaned up on the next successful write.

This module must stay import-leaf (stdlib only) — the checkpoint layer,
the telemetry exporters, and the batch driver all depend on it.
"""

from __future__ import annotations

import json
import os
import tempfile


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> int:
    """Atomically replace ``path``'s contents with ``data``; returns the
    number of bytes written. The temp file lives next to the target so the
    final ``os.replace`` is a same-filesystem rename."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".tmp-"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(data)


def atomic_write_text(
    path: str | os.PathLike, text: str, encoding: str = "utf-8"
) -> int:
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str | os.PathLike, obj, **dump_kwargs) -> int:
    """Serialize ``obj`` fully *before* touching the filesystem, then write
    atomically — a serialization crash (unserializable object, ``inf`` with
    ``allow_nan=False``) leaves any existing file untouched."""
    data = json.dumps(obj, **dump_kwargs).encode("utf-8")
    return atomic_write_bytes(path, data)
