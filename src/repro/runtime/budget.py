"""Unified resource budgets for every fixpoint engine.

A :class:`Budget` bundles the three limits the paper's evaluation effectively
imposes by hand (the 24-hour timeout behind the ∞ entries of Tables 2/3, an
iteration cap, and a memory ceiling) into one immutable spec that is threaded
through the dense, sparse, and relational solvers, the narrowing passes, and
the pre-analysis.

A :class:`BudgetMeter` is the mutable run-side tracker: solvers call
:meth:`BudgetMeter.tick` once per worklist iteration. The iteration check is
exact (it preserves the historical ``max_iterations`` semantics bit for bit);
the wall-clock and state-size checks are amortized — probed only every
``Budget.check_every`` ticks — so an unlimited or generous budget costs one
integer increment and two ``None`` tests per iteration.

One meter may be shared across phases (main loop then narrowing, or the
stages of an engine ladder) so that *all* work counts against the same pool;
:meth:`Budget.split` derives per-stage budgets for the whole-run fallback
ladder in :func:`repro.api.analyze`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable

from repro.runtime.errors import BudgetExceeded


@dataclass(frozen=True)
class Budget:
    """Resource limits for one analysis run (``None`` = unlimited).

    ``max_seconds`` is a wall-clock deadline measured from the first tick;
    ``max_iterations`` caps worklist iterations (including narrowing);
    ``max_state_entries`` caps the total number of location↦value entries
    across the whole state table.
    """

    max_seconds: float | None = None
    max_iterations: int | None = None
    max_state_entries: int | None = None
    #: amortization stride for the wall-clock / state-size probes
    check_every: int = 64

    def is_unlimited(self) -> bool:
        return (
            self.max_seconds is None
            and self.max_iterations is None
            and self.max_state_entries is None
        )

    def meter(
        self, stage: str = "analysis", clock: Callable[[], float] = time.perf_counter
    ) -> "BudgetMeter":
        return BudgetMeter(self, stage=stage, clock=clock)

    def split(self, stages: int) -> "Budget":
        """A per-stage budget for an ``stages``-deep fallback ladder: divisible
        limits are split evenly, the amortization stride is kept."""
        if stages <= 1:
            return self
        return replace(
            self,
            max_seconds=(
                None if self.max_seconds is None else self.max_seconds / stages
            ),
            max_iterations=(
                None
                if self.max_iterations is None
                else max(1, self.max_iterations // stages)
            ),
        )

    @classmethod
    def coerce(
        cls,
        budget: "Budget | None" = None,
        max_iterations: int | None = None,
        max_seconds: float | None = None,
    ) -> "Budget | None":
        """Unify the modern ``budget=`` spec with the legacy ad-hoc knobs.

        An explicit :class:`Budget` wins; otherwise the legacy arguments are
        wrapped (or ``None`` is returned when no limit was asked for)."""
        if budget is not None:
            return budget
        if max_iterations is None and max_seconds is None:
            return None
        return cls(max_seconds=max_seconds, max_iterations=max_iterations)


#: the meter every solver gets when no budget was configured
UNLIMITED = Budget()


class BudgetMeter:
    """Mutable consumption tracker for one :class:`Budget`.

    The deadline starts at the first :meth:`tick` (or an explicit
    :meth:`start`), so building solvers ahead of time costs nothing.
    """

    __slots__ = ("budget", "stage", "iterations", "_clock", "_deadline", "_started")

    def __init__(
        self,
        budget: Budget | None,
        stage: str = "analysis",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.budget = budget if budget is not None else UNLIMITED
        self.stage = stage
        self.iterations = 0
        self._clock = clock
        self._deadline: float | None = None
        self._started: float | None = None

    def start(self) -> None:
        if self._started is None:
            self._started = self._clock()
            if self.budget.max_seconds is not None:
                self._deadline = self._started + self.budget.max_seconds

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def remaining_seconds(self) -> float | None:
        if self._deadline is None:
            return None
        return self._deadline - self._clock()

    def tick(self, table_entries: Callable[[], int] | None = None) -> None:
        """Charge one worklist iteration; raise :class:`BudgetExceeded` the
        moment any limit is passed. ``table_entries`` is only called on the
        amortized probes and only when a state-size cap is configured."""
        if self._started is None:
            self.start()
        self.iterations += 1
        budget = self.budget
        if (
            budget.max_iterations is not None
            and self.iterations > budget.max_iterations
        ):
            raise BudgetExceeded(
                f"{self.stage} exceeded {budget.max_iterations} iterations",
                kind="iterations",
                spent=self.iterations,
                limit=budget.max_iterations,
                stage=self.stage,
            )
        if self.iterations % budget.check_every:
            return
        if self._deadline is not None:
            now = self._clock()
            if now > self._deadline:
                raise BudgetExceeded(
                    f"{self.stage} exceeded the {budget.max_seconds:.3f}s deadline",
                    kind="wall_clock",
                    spent=now - (self._started or now),
                    limit=budget.max_seconds,
                    stage=self.stage,
                )
        if budget.max_state_entries is not None and table_entries is not None:
            size = table_entries()
            if size > budget.max_state_entries:
                raise BudgetExceeded(
                    f"{self.stage} state table grew past "
                    f"{budget.max_state_entries} entries",
                    kind="state_size",
                    spent=size,
                    limit=budget.max_state_entries,
                    stage=self.stage,
                )
