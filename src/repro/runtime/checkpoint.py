"""Durable checkpoint/resume for in-flight fixpoint computations.

A checkpoint is a *complete, self-validating* snapshot of a
:class:`~repro.analysis.engine.FixpointEngine` mid-ascent: the state table,
the pending worklist (in pop order), the widening/iteration counters, the
propagation space's private caches, and the set of already-degraded
procedures. Restoring it and running the engine to completion converges to
the same fixpoint as the uninterrupted run — byte-identical tables, not
just equivalent ones — because every piece of engine state that influences
processing order or join results is captured (see DESIGN.md §11 for the
equivalence argument).

File format (version 1)::

    <header JSON line>\n<payload bytes>

The header carries a magic string, the format version, the payload length,
and a SHA-256 digest of the payload. ``load_checkpoint`` verifies all four
plus an optional *configuration fingerprint* stored inside the payload, and
raises a one-line :class:`CheckpointError` on any mismatch — a truncated,
corrupted, or mismatched checkpoint is never partially applied. Writes go
through :mod:`repro.runtime.atomicio`, so a crash mid-write leaves the
previous checkpoint intact.

Wire codecs cover every value that can appear in an engine table: exact
integer :class:`Interval` bounds, the five :class:`AbsLoc` classes (tagged
lists, recursive for ``FieldLoc``), :class:`AbsValue` points-to/array
payloads, :class:`AbsState`, variable :class:`Pack`\\ s, and float64
:class:`Octagon` DBMs (JSON float repr round-trips IEEE doubles exactly;
``±inf`` is spelled ``null``). Decoding re-interns values, so identity fast
paths keep working after a resume.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any

import numpy as np

from repro.domains.absloc import AbsLoc, AllocLoc, FieldLoc, FuncLoc, RetLoc, VarLoc
from repro.domains.interval import Interval
from repro.domains.state import AbsState
from repro.domains.value import AbsValue, ArrayBlock, intern_value
from repro.runtime.atomicio import atomic_write_bytes
from repro.runtime.errors import CheckpointError
from repro.telemetry.core import Telemetry

#: bump whenever the payload layout or any wire codec changes shape
CHECKPOINT_VERSION = 1
_MAGIC = "repro-checkpoint"


# --------------------------------------------------------------------------
# Wire codecs
# --------------------------------------------------------------------------


def interval_to_wire(itv: Interval) -> Any:
    if itv.empty:
        return "bot"
    return [itv.lo, itv.hi]


def interval_from_wire(wire: Any) -> Interval:
    if wire == "bot":
        return Interval.bottom()
    lo, hi = wire
    return Interval(lo, hi)


def loc_to_wire(loc: AbsLoc) -> list:
    if isinstance(loc, VarLoc):
        return ["V", loc.name, loc.proc]
    if isinstance(loc, AllocLoc):
        return ["A", loc.site]
    if isinstance(loc, FieldLoc):
        return ["F", loc_to_wire(loc.base), loc.fieldname]
    if isinstance(loc, RetLoc):
        return ["R", loc.proc]
    if isinstance(loc, FuncLoc):
        return ["X", loc.name]
    raise CheckpointError(f"cannot serialize abstract location {loc!r}")


def loc_from_wire(wire: list) -> AbsLoc:
    tag = wire[0]
    if tag == "V":
        return VarLoc(wire[1], wire[2])
    if tag == "A":
        return AllocLoc(wire[1])
    if tag == "F":
        return FieldLoc(loc_from_wire(wire[1]), wire[2])
    if tag == "R":
        return RetLoc(wire[1])
    if tag == "X":
        return FuncLoc(wire[1])
    raise CheckpointError(f"unknown abstract-location tag {tag!r} in checkpoint")


def value_to_wire(value: AbsValue) -> dict:
    return {
        "i": interval_to_wire(value.itv),
        "p": [loc_to_wire(l) for l in sorted(value.ptsto, key=lambda l: l.sort_key())],
        "a": [
            [
                loc_to_wire(blk.base),
                interval_to_wire(blk.offset),
                interval_to_wire(blk.size),
            ]
            for blk in value.arrays
        ],
    }


def value_from_wire(wire: dict) -> AbsValue:
    return intern_value(
        AbsValue(
            itv=interval_from_wire(wire["i"]),
            ptsto=frozenset(loc_from_wire(w) for w in wire["p"]),
            arrays=tuple(
                ArrayBlock(
                    base=loc_from_wire(b),
                    offset=interval_from_wire(off),
                    size=interval_from_wire(size),
                )
                for b, off, size in wire["a"]
            ),
        )
    )


def pack_to_wire(pack) -> list:
    return [loc_to_wire(member) for member in pack.members]


def pack_from_wire(wire: list):
    from repro.domains.packs import Pack

    # members were recorded in Pack.of's canonical sort order
    return Pack(tuple(loc_from_wire(w) for w in wire))


def octagon_to_wire(oct_) -> dict:
    if oct_.empty:
        return {"d": oct_.dim, "e": True}
    flat = oct_._m().flatten().tolist()
    return {
        "d": oct_.dim,
        "c": bool(oct_.closed_flag),
        "m": [None if x == np.inf else x for x in flat],
    }


def octagon_from_wire(wire: dict):
    from repro.domains.octagon import Octagon

    dim = wire["d"]
    if wire.get("e"):
        return Octagon.bottom(dim)
    n = 2 * dim
    matrix = np.array(
        [np.inf if x is None else x for x in wire["m"]], dtype=np.float64
    ).reshape(n, n)
    return Octagon(dim, matrix, closed_flag=wire.get("c", False))


def state_to_wire(state) -> list:
    """Tagged encoding for either table-state flavour: ``["abs", ...]`` for
    :class:`AbsState`, ``["pack", ...]`` for :class:`PackState`. Entries are
    sorted by location/pack sort key, so the encoding is canonical — and
    storage-backend independent: both the array and scalar ``AbsState``
    backends serialize through ``items()`` to the same wire bytes, and
    decoding rebuilds the *active* backend, so checkpoints written under
    one backend resume cleanly under the other."""
    if isinstance(state, AbsState):
        return [
            "abs",
            [
                [loc_to_wire(loc), value_to_wire(val)]
                for loc, val in sorted(
                    state.items(), key=lambda kv: kv[0].sort_key()
                )
            ],
        ]
    from repro.analysis.relational import PackState

    if isinstance(state, PackState):
        return [
            "pack",
            [
                [pack_to_wire(pack), octagon_to_wire(oct_)]
                for pack, oct_ in sorted(
                    state.items(), key=lambda kv: kv[0].sort_key()
                )
            ],
        ]
    raise CheckpointError(f"cannot serialize engine state {type(state).__name__}")


def state_from_wire(wire: list):
    kind, entries = wire
    if kind == "abs":
        state = AbsState()
        for loc_w, val_w in entries:
            state.set(loc_from_wire(loc_w), value_from_wire(val_w))
        return state
    if kind == "pack":
        from repro.analysis.relational import PackState

        state = PackState()
        for pack_w, oct_w in entries:
            state.set(pack_from_wire(pack_w), octagon_from_wire(oct_w))
        return state
    raise CheckpointError(f"unknown state kind {kind!r} in checkpoint")


# --------------------------------------------------------------------------
# File format
# --------------------------------------------------------------------------


def encode_checkpoint(payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    header = json.dumps(
        {
            "magic": _MAGIC,
            "version": CHECKPOINT_VERSION,
            "length": len(body),
            "sha256": hashlib.sha256(body).hexdigest(),
        },
        sort_keys=True,
    ).encode("utf-8")
    return header + b"\n" + body


def save_checkpoint(path: str | os.PathLike, payload: dict) -> int:
    """Atomically write ``payload`` as a versioned, digest-protected
    checkpoint file; returns the number of bytes written."""
    return atomic_write_bytes(path, encode_checkpoint(payload))


def load_checkpoint(
    path: str | os.PathLike, expect_fingerprint: str | None = None
) -> dict:
    """Read and fully validate a checkpoint; raises a one-line
    :class:`CheckpointError` on any integrity failure (fail closed)."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    newline = data.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"checkpoint {path} is truncated (no header line)")
    try:
        header = json.loads(data[:newline])
    except ValueError as exc:
        raise CheckpointError(f"checkpoint {path} has a malformed header") from exc
    if not isinstance(header, dict) or header.get("magic") != _MAGIC:
        raise CheckpointError(f"{path} is not a repro checkpoint (bad magic)")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version!r}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    body = data[newline + 1 :]
    if len(body) != header.get("length"):
        raise CheckpointError(
            f"checkpoint {path} is truncated "
            f"({len(body)} of {header.get('length')} payload bytes)"
        )
    digest = hashlib.sha256(body).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(f"checkpoint {path} failed its content digest check")
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise CheckpointError(f"checkpoint {path} payload is not valid JSON") from exc
    if expect_fingerprint is not None:
        found = payload.get("fingerprint")
        if found != expect_fingerprint:
            raise CheckpointError(
                f"checkpoint {path} was written by a different analysis "
                f"configuration (fingerprint mismatch)"
            )
    return payload


def _jsonable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_fingerprint(
    domain: str, mode: str, options: dict | None = None, program=None
) -> str:
    """A digest of everything that determines the fixpoint a run computes:
    domain, engine mode, the engine options that shape widening/scheduling,
    and the program's coarse shape. A resume whose fingerprint differs would
    silently compute garbage, so ``load_checkpoint`` rejects it."""
    spec: dict[str, Any] = {
        "format": CHECKPOINT_VERSION,
        "domain": domain,
        "mode": mode,
        "options": _jsonable(options or {}),
    }
    if program is not None:
        nodes = sorted(
            (proc, len(cfg.nodes)) for proc, cfg in program.cfgs.items()
        )
        spec["program"] = nodes
    blob = json.dumps(spec, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# --------------------------------------------------------------------------
# Checkpointer
# --------------------------------------------------------------------------


class Checkpointer:
    """Writes periodic + final-abort checkpoints for one engine run.

    The engine calls :meth:`maybe_write` after every completed worklist
    iteration (cheap modulo test) and :meth:`write` from its abort path.
    Each write also touches a ``<path>.hb`` heartbeat file when enabled, so
    an external supervisor (the batch driver) can distinguish a slow worker
    from a hung one by mtime age.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        every: int = 200,
        fingerprint: str = "",
        telemetry: Telemetry | None = None,
        heartbeat: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self.every = max(1, int(every))
        self.fingerprint = fingerprint
        self.writes = 0
        self.bytes_written = 0
        self._telemetry = Telemetry.coerce(telemetry)
        self._heartbeat = heartbeat

    @property
    def heartbeat_path(self) -> str:
        return self.path + ".hb"

    def touch_heartbeat(self) -> None:
        # plain write: only the mtime matters, a torn heartbeat is harmless
        with open(self.heartbeat_path, "w") as f:
            f.write(str(time.time()))

    def maybe_write(self, engine) -> None:
        if engine.stats.iterations % self.every == 0:
            self.write(engine, reason="periodic")

    def write(self, engine, reason: str = "periodic") -> int:
        payload = engine.snapshot()
        payload["fingerprint"] = self.fingerprint
        payload["reason"] = reason
        n = save_checkpoint(self.path, payload)
        self.writes += 1
        self.bytes_written += n
        self._telemetry.count("checkpoint.writes")
        self._telemetry.count("checkpoint.bytes", n)
        if self._heartbeat:
            self.touch_heartbeat()
        return n
