"""Resilient analysis runtime: budgets, degradation, faults, durability.

The runtime layer makes every fixpoint engine budget-aware and
failure-tolerant:

* :mod:`repro.runtime.budget` — a unified :class:`Budget` (wall-clock
  deadline, iteration cap, state-table ceiling) metered cheaply inside every
  solver loop;
* :mod:`repro.runtime.degrade` — per-procedure fallback to the flow-
  insensitive pre-analysis state (sound by Lemma 2) plus the
  :class:`Diagnostics` record exposed on :class:`repro.api.AnalysisRun`;
* :mod:`repro.runtime.faults` — a deterministic fault-injection harness so
  the degradation paths are actually testable;
* :mod:`repro.runtime.errors` — the structured :class:`ReproError`
  exception hierarchy shared by the frontend and the engines;
* :mod:`repro.runtime.checkpoint` — versioned, digest-protected snapshots
  of in-flight engine state with resume ≡ uninterrupted equivalence;
* :mod:`repro.runtime.pool` — the fault-tolerant multi-process batch
  driver behind ``repro batch`` (timeouts, retry with backoff, crash
  detection, resume-from-checkpoint);
* :mod:`repro.runtime.atomicio` — crash-safe file writes shared by
  checkpoints, telemetry exporters, and reports;
* :mod:`repro.runtime.interrupt` — SIGINT/SIGTERM → exception bridging
  for graceful shutdown.
"""

from repro.runtime.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.runtime.budget import Budget, BudgetMeter
from repro.runtime.checkpoint import (
    Checkpointer,
    config_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime.degrade import (
    DegradeController,
    Diagnostics,
    StageAttempt,
    make_watchdog,
    preanalysis_table,
)
from repro.runtime.errors import (
    AnalysisError,
    AnalysisInterrupted,
    BudgetExceeded,
    CheckpointError,
    ReproError,
    SoundnessViolation,
)
from repro.runtime.faults import FaultInjected, FaultInjector, FaultPlan
from repro.runtime.interrupt import raising_signal_handlers
from repro.runtime.pool import BatchJob, BatchReport, JobOutcome, run_batch

__all__ = [
    "AnalysisError",
    "AnalysisInterrupted",
    "BatchJob",
    "BatchReport",
    "Budget",
    "BudgetExceeded",
    "BudgetMeter",
    "CheckpointError",
    "Checkpointer",
    "DegradeController",
    "Diagnostics",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "JobOutcome",
    "ReproError",
    "SoundnessViolation",
    "StageAttempt",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "config_fingerprint",
    "load_checkpoint",
    "make_watchdog",
    "preanalysis_table",
    "raising_signal_handlers",
    "run_batch",
    "save_checkpoint",
]
