"""Resilient analysis runtime: budgets, graceful degradation, fault injection.

The runtime layer makes every fixpoint engine budget-aware and
failure-tolerant:

* :mod:`repro.runtime.budget` — a unified :class:`Budget` (wall-clock
  deadline, iteration cap, state-table ceiling) metered cheaply inside every
  solver loop;
* :mod:`repro.runtime.degrade` — per-procedure fallback to the flow-
  insensitive pre-analysis state (sound by Lemma 2) plus the
  :class:`Diagnostics` record exposed on :class:`repro.api.AnalysisRun`;
* :mod:`repro.runtime.faults` — a deterministic fault-injection harness so
  the degradation paths are actually testable;
* :mod:`repro.runtime.errors` — the structured :class:`ReproError`
  exception hierarchy shared by the frontend and the engines.
"""

from repro.runtime.budget import Budget, BudgetMeter
from repro.runtime.degrade import (
    DegradeController,
    Diagnostics,
    StageAttempt,
    make_watchdog,
    preanalysis_table,
)
from repro.runtime.errors import (
    AnalysisError,
    BudgetExceeded,
    ReproError,
    SoundnessViolation,
)
from repro.runtime.faults import FaultInjected, FaultInjector, FaultPlan

__all__ = [
    "AnalysisError",
    "Budget",
    "BudgetExceeded",
    "BudgetMeter",
    "DegradeController",
    "Diagnostics",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "ReproError",
    "SoundnessViolation",
    "StageAttempt",
    "make_watchdog",
    "preanalysis_table",
]
