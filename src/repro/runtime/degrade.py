"""Graceful per-procedure degradation to the pre-analysis.

The flow-insensitive pre-analysis state ``ŝ`` over-approximates the state at
*every* control point (Lemma 2), so whenever the main analysis cannot finish
a procedure — its budget ran out, or a transfer function crashed — the
procedure's table entries can be *filled from ``ŝ``* instead of aborting the
whole run: strictly less precise, still sound, always terminating. This is
the in-process analog of the paper's 24-hour timeout rows (Tables 2/3):
where the paper reports ∞ and no result, we report the pre-analysis bound
and say so in :class:`Diagnostics`.

:class:`DegradeController` owns the mechanics (which procedures fell back,
filling tables, the optional soundness watchdog); the solvers decide *when*
(on :class:`~repro.runtime.errors.BudgetExceeded` with ``on_budget=
"degrade"``, or on a transfer crash). Nodes of a degraded procedure are
pinned: solvers skip them for the rest of the run so the fallback state is
never weakened.

This module is engine-agnostic on purpose — fallback states and ⊑-bounds are
injected by the engine (an ``AbsState`` copy of ``ŝ`` for the interval
analyzers, the ⊤ pack map for the octagon analyzers), so it works unchanged
for every state shape that offers ``leq``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.runtime.budget import Budget
from repro.runtime.errors import SoundnessViolation


@dataclass
class StageAttempt:
    """One rung of the engine fallback ladder (or the single direct run)."""

    mode: str
    outcome: str  # "ok" | "budget" | "error"
    seconds: float = 0.0
    iterations: int = 0
    error: str | None = None


@dataclass
class Diagnostics:
    """What actually happened during an analysis run.

    ``degraded_procs`` lists procedures whose states were replaced by the
    pre-analysis bound, in degradation order; ``fallback_used`` names the
    ladder stage that produced the final result when it differs from the
    requested engine; ``events`` is a human-readable trace of every
    resilience action taken.
    """

    degraded_procs: list[str] = field(default_factory=list)
    fallback_used: str | None = None
    attempts: list[StageAttempt] = field(default_factory=list)
    iterations: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)
    budget: Budget | None = None
    #: scheduler stats from the main fixpoint (see
    #: :meth:`repro.analysis.schedule.SchedulerStats.as_dict`)
    scheduler: dict | None = None

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_procs)

    @property
    def clean(self) -> bool:
        """True when no resilience machinery had to act."""
        return not self.degraded_procs and self.fallback_used is None

    def record_attempt(
        self,
        mode: str,
        outcome: str,
        seconds: float = 0.0,
        iterations: int = 0,
        error: str | None = None,
    ) -> None:
        self.attempts.append(StageAttempt(mode, outcome, seconds, iterations, error))

    def __str__(self) -> str:
        bits = [f"iterations={self.iterations}"]
        if self.degraded_procs:
            bits.append(f"degraded={','.join(self.degraded_procs)}")
        if self.fallback_used:
            bits.append(f"fallback={self.fallback_used}")
        return "Diagnostics(" + " ".join(bits) + ")"


def make_watchdog(bound) -> Callable[[str, object], None]:
    """A soundness watchdog: every degraded state must be ⊑ ``bound`` (the
    pre-analysis state, or ⊤ for relational packs) — anything above it would
    claim facts Lemma 2 cannot justify."""

    def check(proc: str, state) -> None:
        if not state.leq(bound):
            raise SoundnessViolation(
                f"degraded state for {proc!r} is not bounded by the "
                "pre-analysis state",
                proc=proc,
            )

    return check


class DegradeController:
    """Per-procedure fallback bookkeeping shared by all solvers.

    ``fallback_state`` builds the replacement state for one procedure (called
    at most once per procedure; the returned object is shared read-only by
    every node of that procedure). ``watchdog`` — usually
    :func:`make_watchdog` — vets each fallback state before installation.
    """

    def __init__(
        self,
        program,
        fallback_state: Callable[[str], object],
        diagnostics: Diagnostics | None = None,
        watchdog: Callable[[str, object], None] | None = None,
    ) -> None:
        self.program = program
        self._fallback_state = fallback_state
        self.diagnostics = diagnostics if diagnostics is not None else Diagnostics()
        self._watchdog = watchdog
        self.degraded_procs: set[str] = set()
        self._degraded_nodes: set[int] = set()

    def is_degraded_node(self, nid: int) -> bool:
        return nid in self._degraded_nodes

    def proc_of(self, nid: int) -> str:
        return self.program.node(nid).proc

    def degrade_proc(self, proc: str, table: dict, cause: str | None = None) -> set[int]:
        """Replace every table entry of ``proc`` with the fallback state;
        returns the newly pinned node ids (empty if already degraded)."""
        if proc in self.degraded_procs:
            return set()
        self.degraded_procs.add(proc)
        state = self._fallback_state(proc)
        if self._watchdog is not None:
            self._watchdog(proc, state)
        cfg = self.program.cfgs.get(proc)
        newly: set[int] = set()
        if cfg is not None:
            for node in cfg.nodes:
                table[node.nid] = state
                newly.add(node.nid)
        self._degraded_nodes |= newly
        self.diagnostics.degraded_procs.append(proc)
        self.diagnostics.events.append(
            f"degraded {proc!r} to the pre-analysis state"
            + (f" ({cause})" if cause else "")
        )
        return newly

    def degrade_node(self, nid: int, table: dict, cause: str | None = None) -> set[int]:
        return self.degrade_proc(self.proc_of(nid), table, cause)

    def adopt(self, procs) -> None:
        """Re-pin procedures a checkpoint recorded as degraded, without
        rewriting the table — the restored table already holds their
        fallback states (checkpoint resume path)."""
        for proc in procs:
            if proc in self.degraded_procs:
                continue
            self.degraded_procs.add(proc)
            cfg = self.program.cfgs.get(proc)
            if cfg is not None:
                self._degraded_nodes |= {node.nid for node in cfg.nodes}
            self.diagnostics.degraded_procs.append(proc)
            self.diagnostics.events.append(
                f"resumed with {proc!r} already degraded"
            )


def preanalysis_table(program, pre, domain: str = "interval") -> dict[int, object]:
    """A whole-program table filled from the pre-analysis — the terminal
    ``"pre"`` rung of the engine ladder, which always succeeds."""
    table: dict[int, object] = {}
    for proc in program.procedures():
        cfg = program.cfgs.get(proc)
        if cfg is None:
            continue
        if domain == "interval":
            state = pre.state.copy()
        else:
            from repro.analysis.relational import PackState

            state = PackState()  # ⊤ for every pack: no relation claimed
        for node in cfg.nodes:
            table[node.nid] = state
    return table
