"""Deterministic fault injection for the analysis engines.

The degradation paths of :mod:`repro.runtime.degrade` only matter when
something goes wrong — and nothing goes wrong on the small, healthy programs
a test suite can afford to analyze. This module makes failures *schedulable*:
a :class:`FaultPlan` names the exact point at which a fault fires (the Nth
transfer application, iteration K of the worklist, the Mth dependency push)
and a :class:`FaultInjector` counts events and fires it. Solvers call the
hooks behind a ``None`` guard, so the production fast path is a single
attribute test.

All plans are deterministic: either positions are given explicitly, or
:meth:`FaultPlan.seeded` derives them from a PRNG seed, so a failing test
reproduces with its seed and no assertion ever depends on wall-clock time.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass

from repro.runtime.errors import AnalysisError, BudgetExceeded


class FaultInjected(AnalysisError):
    """Raised by the injector at a scheduled transfer-crash point."""


@dataclass(frozen=True)
class FaultPlan:
    """A schedule of deliberate failures (``None`` = never fire).

    * ``crash_transfer_at`` — raise :class:`FaultInjected` in the Nth
      (1-based) transfer-function application;
    * ``trip_budget_at`` — raise :class:`BudgetExceeded` (kind ``"fault"``)
      at worklist iteration K, independent of any real budget;
    * ``drop_dep_push_at`` — silently drop the Mth dependency-edge push of a
      sparse engine (models a corrupted dependency graph);
    * ``drop_dep_edge`` — drop every push along one specific ``(src, dst)``
      dependency edge;
    * ``kill_worker_at`` — SIGKILL the *current process* at worklist
      iteration K (models a crashed/preempted batch worker; only the
      periodic checkpoints survive, exactly as with a real kill);
    * ``corrupt_checkpoint`` — not fired in-process: the batch driver reads
      this flag and flips bytes in the job's checkpoint file before the
      first retry, exercising the fail-closed restore path.

    Serve-worker faults (read by :mod:`repro.server.supervisor`'s session
    worker; the supervisor applies them to the worker's *first* incarnation
    only, so a respawned worker does not re-fire the same fault forever):

    * ``kill_request_at`` — SIGKILL the serve worker while it is handling
      the Nth (1-based) protocol request, after the request was read but
      before any response is written (kill-mid-query from the client's
      point of view);
    * ``hang_request_at`` — hang the worker (sleep ``hang_seconds``)
      inside the Nth request, exercising the supervisor's hard deadline /
      lost-heartbeat watchdog rather than any cooperative budget;
    * ``kill_edit_at`` — SIGKILL the worker *between* applying the Nth
      edit to the in-memory session and durably recording the new source
      text: the crash-mid-edit atomicity window. After restart the edit
      must be invisible (the client saw no ack and retries);
    * ``corrupt_snapshot`` — supervisor-side: flip bytes in the worker's
      resident-state snapshot before the first respawn, so the restore
      must fail closed and the worker falls back to lazy re-solving.
    """

    crash_transfer_at: int | None = None
    trip_budget_at: int | None = None
    drop_dep_push_at: int | None = None
    drop_dep_edge: tuple[int, int] | None = None
    kill_worker_at: int | None = None
    corrupt_checkpoint: bool = False
    kill_request_at: int | None = None
    hang_request_at: int | None = None
    hang_seconds: float = 600.0
    kill_edit_at: int | None = None
    corrupt_snapshot: bool = False
    seed: int | None = None

    @classmethod
    def seeded(
        cls,
        seed: int,
        crash_transfer: bool = False,
        trip_budget: bool = False,
        drop_dep_push: bool = False,
        horizon: int = 50,
    ) -> "FaultPlan":
        """Derive fault positions in ``[1, horizon]`` from ``seed`` — the same
        seed always yields the same plan."""
        rng = random.Random(seed)
        return cls(
            crash_transfer_at=rng.randint(1, horizon) if crash_transfer else None,
            trip_budget_at=rng.randint(1, horizon) if trip_budget else None,
            drop_dep_push_at=rng.randint(1, horizon) if drop_dep_push else None,
            seed=seed,
        )

    def injector(self) -> "FaultInjector":
        return FaultInjector(self)


class FaultInjector:
    """Counts solver events and fires the plan's faults at their positions."""

    __slots__ = ("plan", "transfers", "dep_pushes", "fired")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.transfers = 0
        self.dep_pushes = 0
        #: names of faults that actually fired (for test assertions)
        self.fired: list[str] = []

    @staticmethod
    def coerce(faults: "FaultPlan | FaultInjector | None") -> "FaultInjector | None":
        """Accept a plan, a live injector (shared across engine stages), or
        ``None``."""
        if faults is None:
            return None
        if isinstance(faults, FaultPlan):
            return faults.injector()
        return faults

    def before_transfer(self, nid: int) -> None:
        self.transfers += 1
        if self.plan.crash_transfer_at == self.transfers:
            self.fired.append("crash_transfer")
            raise FaultInjected(
                f"injected transfer crash #{self.transfers} at node {nid}",
                node=nid,
            )

    def on_iteration(self, iteration: int) -> None:
        if self.plan.kill_worker_at == iteration:
            self.fired.append("kill_worker")
            os.kill(os.getpid(), signal.SIGKILL)
        if self.plan.trip_budget_at == iteration:
            self.fired.append("trip_budget")
            raise BudgetExceeded(
                f"injected budget trip at iteration {iteration}",
                kind="fault",
                spent=iteration,
                limit=iteration,
            )

    def before_request(self, n: int) -> None:
        """Serve-worker hook: fire kill/hang faults scheduled for the Nth
        protocol request (1-based)."""
        if self.plan.hang_request_at == n:
            self.fired.append("hang_request")
            import time

            time.sleep(self.plan.hang_seconds)
        if self.plan.kill_request_at == n:
            self.fired.append("kill_request")
            os.kill(os.getpid(), signal.SIGKILL)

    def after_edit_applied(self, n: int) -> None:
        """Serve-worker hook: fire between the Nth edit's in-memory
        application and its durable source record (the atomicity window)."""
        if self.plan.kill_edit_at == n:
            self.fired.append("kill_edit")
            os.kill(os.getpid(), signal.SIGKILL)

    def keep_dep_push(self, src: int, dst: int) -> bool:
        """False when the push along ``src → dst`` should be dropped."""
        if self.plan.drop_dep_edge == (src, dst):
            self.fired.append("drop_dep_edge")
            return False
        self.dep_pushes += 1
        if self.plan.drop_dep_push_at == self.dep_pushes:
            self.fired.append("drop_dep_push")
            return False
        return True


def corrupt_file_tail(path: str, nbytes: int = 16) -> None:
    """Flip the last ``nbytes`` of ``path`` (the payload region, past any
    header), so a digest-protected read of it must fail closed. Used by
    the batch driver (``corrupt_checkpoint``) and the serve supervisor
    (``corrupt_snapshot``)."""
    with open(path, "r+b") as f:
        f.seek(0, os.SEEK_END)
        size = f.tell()
        f.seek(max(0, size - nbytes))
        tail = f.read()
        f.seek(max(0, size - nbytes))
        f.write(bytes(b ^ 0xFF for b in tail))
