"""The process-pool shard executor (``analyze(..., jobs=N)``).

Workers are persistent subprocesses forked after the driver has built the
:class:`~repro.analysis.dense.EnginePlan` and shard topology — a fork
child inherits both for free, so only the per-activation payload crosses
the process boundary. Tasks and outcomes travel as JSON strings produced
by the :mod:`repro.analysis.summaries` wire codecs (the same state
encoding the checkpoint subsystem uses), which keeps the message path
byte-stable and independently testable.

Supervision follows :mod:`repro.runtime.pool`'s idiom scaled down to a
synchronous wave: a worker that dies mid-task (crash, OOM-kill) or stops
touching its heartbeat file is stopped SIGTERM-then-SIGKILL, its task is
re-solved serially in the parent (activations are pure functions of their
task, so a re-run is always safe), and a fresh worker is spawned in its
place. Every recovery is recorded as a diagnostics event. Platforms
without the ``fork`` start method degrade to in-parent serial execution
with an explanatory event rather than failing.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time

from repro.runtime.errors import AnalysisError
from repro.runtime.pool import _TERM_GRACE, _stop_worker
from repro.telemetry.core import Telemetry

#: seconds between liveness polls while awaiting a worker's result
_POLL = 0.01

#: plan/topology handed to fork children by inheritance — kept set for the
#: executor's lifetime so respawned workers inherit it too; cleared in close()
_FORK_STATE: dict = {}


def _states_equal(a, b) -> bool:
    """Structural state equality where available (``AbsState.__eq__``
    compares per-location values); identity otherwise (``PackState`` —
    octagon slices are conservatively re-shipped)."""
    if a is b:
        return True
    if a is None or b is None:
        return False
    return a == b


def _worker_loop(conn, worker_id: int, hb_path: str) -> None:
    """Subprocess entry: serve shard activations until told to stop.

    Receives wire-encoded tasks, returns wire-encoded outcomes. Messages
    are *deltas*: the worker keeps a per-shard cache of the table slice
    and frontier it last saw, the parent omits entries the cache already
    holds (it tracks exactly what each worker received and produced), and
    the outcome ships only entries that changed relative to the task. An
    activation that raises sends an ``error`` frame instead of dying, so
    one poisoned task cannot cost the pool a worker.
    """
    from repro.analysis.shards import solve_shard
    from repro.analysis.summaries import outcome_to_wire, task_from_wire

    plan = _FORK_STATE["plan"]
    topo = _FORK_STATE["topo"]
    tcache: dict[int, dict[int, object]] = {}
    fcache: dict[int, dict[int, object]] = {}
    _touch(hb_path)
    while True:
        msg = conn.recv()
        if msg is None:
            return
        try:
            task = task_from_wire(json.loads(msg))
            # The cache holds exactly what the parent shipped — never the
            # worker's own outputs, which the parent may discard (rejected
            # speculation) and whose keys it would then not know to evict.
            tc = tcache.setdefault(task.shard, {})
            fc = fcache.setdefault(task.shard, {})
            tc.update(task.table)
            fc.update(task.frontier)
            task.table = dict(tc)
            task.frontier = dict(fc)
            outcome = solve_shard(plan, topo, task)
            outcome.worker = worker_id
            outcome.table = {
                nid: st
                for nid, st in outcome.table.items()
                if not _states_equal(tc.get(nid), st)
            }
            reply = json.dumps(outcome_to_wire(outcome))
        except Exception as exc:  # noqa: BLE001 — shipped to the parent
            reply = json.dumps(
                {"error": f"{type(exc).__name__}: {exc}"}
            )
        _touch(hb_path)
        conn.send(reply)


def _touch(path: str) -> None:
    with open(path, "w") as f:
        f.write(str(time.time()))


class ProcessShardExecutor:
    """Run shard activations on a pool of forked workers.

    Implements the :class:`repro.analysis.shards.ShardExecutor` interface.
    ``jobs`` bounds concurrent activations; ``heartbeat_timeout`` (seconds)
    optionally declares a silent busy worker dead and falls back to the
    parent for its task.
    """

    name = "process-pool"

    def __init__(self, jobs: int, *, heartbeat_timeout: float | None = None):
        if jobs < 2:
            raise ValueError("ProcessShardExecutor needs jobs >= 2")
        self._jobs = jobs
        self._heartbeat_timeout = heartbeat_timeout
        self._events: list[str] = []
        self._workers: list[tuple] = []  # (proc, parent_conn, hb_path)
        self._plan = None
        self._topo = None
        self._tel = Telemetry.coerce(None)
        self._tmpdir = None
        self._serial_fallback = False
        self._recoveries = 0
        #: shard → preferred slot (sticky affinity keeps a shard's state
        #: cached in one worker so deltas stay small)
        self._affinity: dict[int, int] = {}
        #: per slot: shard → {nid: state} the worker's caches hold, by
        #: parent-object identity where the parent shipped or merged the
        #: object itself, value-equal otherwise
        self._shipped_t: list[dict[int, dict[int, object]]] = []
        self._shipped_f: list[dict[int, dict[int, object]]] = []

    # -- ShardExecutor interface --------------------------------------------

    def start(self, plan, topo, *, telemetry=None) -> None:
        self._plan = plan
        self._topo = topo
        self._tel = Telemetry.coerce(telemetry)
        if "fork" not in multiprocessing.get_all_start_methods():
            self._serial_fallback = True
            self._events.append(
                "shard pool: fork start method unavailable, "
                "running activations serially in the parent"
            )
            return
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-shardpool-")
        ctx = multiprocessing.get_context("fork")
        # Kept set for the executor's lifetime: respawns after worker loss
        # fork new children that must inherit the same plan/topology.
        _FORK_STATE["plan"] = plan
        _FORK_STATE["topo"] = topo
        self._ctx = ctx
        for wid in range(self._jobs):
            self._workers.append(self._spawn(ctx, wid))
            self._shipped_t.append({})
            self._shipped_f.append({})

    def run_wave(self, tasks):
        from repro.analysis.shards import solve_shard
        from repro.analysis.summaries import task_to_wire

        if self._serial_fallback or not self._workers:
            return [solve_shard(self._plan, self._topo, t) for t in tasks]

        outcomes = []
        # Waves are at most ``jobs`` tasks wide (the driver sizes them), but
        # chunk defensively so an oversized wave still completes.
        for i in range(0, len(tasks), len(self._workers)):
            chunk = tasks[i : i + len(self._workers)]
            sent = []
            for slot, task in self._assign(chunk):
                proc, conn, hb = self._workers[slot]
                conn.send(self._encode_task(slot, task))
                sent.append((slot, task))
            for slot, task in sent:
                outcomes.append(self._collect(slot, task))
        for o in outcomes:
            self._tel.record_span(
                "shard",
                o.wall,
                cpu=o.cpu,
                shard=o.shard,
                wave=o.wave,
                worker=o.worker,
            )
        return outcomes

    def close(self) -> None:
        for proc, conn, _hb in self._workers:
            try:
                if proc.is_alive():
                    conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.perf_counter() + _TERM_GRACE
        for proc, conn, _hb in self._workers:
            proc.join(max(0.0, deadline - time.perf_counter()))
            _stop_worker(proc)
            conn.close()
        self._workers.clear()
        _FORK_STATE.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def events(self) -> list[str]:
        out = list(self._events)
        if self._recoveries:
            out.append(
                f"shard pool: {self._recoveries} activation(s) recovered "
                "in the parent after worker loss"
            )
        return out

    # -- internals ----------------------------------------------------------

    def _spawn(self, ctx, worker_id: int):
        hb_path = os.path.join(self._tmpdir.name, f"worker-{worker_id}.hb")
        _touch(hb_path)
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_loop,
            args=(child_conn, worker_id, hb_path),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return (proc, parent_conn, hb_path)

    def _assign(self, chunk):
        """Pair each task with a worker slot, honoring shard→slot affinity
        when that slot is free this wave — the sticky worker still holds
        the shard's slices, so the delta message stays minimal."""
        free = set(range(len(self._workers)))
        placed, rest = [], []
        for task in chunk:
            pref = self._affinity.get(task.shard)
            if pref is not None and pref in free:
                free.discard(pref)
                placed.append((pref, task))
            else:
                rest.append(task)
        for task in rest:
            slot = min(free)
            free.discard(slot)
            self._affinity[task.shard] = slot
            placed.append((slot, task))
        return placed

    def _encode_task(self, slot: int, task) -> str:
        """Wire-encode a task as a delta against what the slot's worker
        already caches, then record the full payload as shipped."""
        from repro.analysis.summaries import task_to_wire

        shipped_t = self._shipped_t[slot].setdefault(task.shard, {})
        shipped_f = self._shipped_f[slot].setdefault(task.shard, {})
        skip_t = {
            nid for nid, st in task.table.items() if shipped_t.get(nid) is st
        }
        skip_f = {
            nid
            for nid, st in task.frontier.items()
            if shipped_f.get(nid) is st
        }
        wire = json.dumps(
            task_to_wire(task, skip_table=skip_t, skip_frontier=skip_f)
        )
        shipped_t.update(task.table)
        shipped_f.update(task.frontier)
        return wire

    def _collect(self, slot: int, task):
        """Await one worker's reply; on worker loss, recover in the parent."""
        from repro.analysis.summaries import outcome_from_wire

        proc, conn, hb = self._workers[slot]
        while True:
            if conn.poll(_POLL):
                try:
                    reply = json.loads(conn.recv())
                except (EOFError, OSError):
                    return self._recover(slot, task, "pipe closed")
                if "error" in reply:
                    raise AnalysisError(
                        f"shard {task.shard} activation failed in worker: "
                        f"{reply['error']}"
                    )
                return outcome_from_wire(reply)
            if not proc.is_alive():
                return self._recover(
                    slot, task, f"crash(exit {proc.exitcode})"
                )
            if self._heartbeat_timeout is not None:
                try:
                    age = time.time() - os.path.getmtime(hb)
                except OSError:
                    age = None
                if age is not None and age > self._heartbeat_timeout:
                    return self._recover(slot, task, "heartbeat")

    def _recover(self, slot: int, task, cause: str):
        """A worker died mid-task: solve its activation in the parent (they
        are pure functions of the task) and respawn the slot."""
        proc, conn, _hb = self._workers[slot]
        _stop_worker(proc)
        conn.close()
        self._shipped_t[slot] = {}
        self._shipped_f[slot] = {}
        self._recoveries += 1
        self._events.append(
            f"shard pool: worker {slot} lost on shard {task.shard} "
            f"({cause}); re-solved in parent"
        )
        self._workers[slot] = self._spawn(self._ctx, slot)
        from repro.analysis.shards import solve_shard

        return solve_shard(self._plan, self._topo, task)
