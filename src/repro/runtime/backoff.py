"""Seeded exponential backoff with jitter, shared by every supervisor.

Both the batch driver (:mod:`repro.runtime.pool`) and the serve
supervisor (:mod:`repro.server.supervisor`) retry crashed workers on an
exponential schedule with multiplicative jitter::

    delay(k) = base * factor**(k-1) * (1 + jitter * rng.random())

The jitter draw comes from a *caller-owned* seeded PRNG so retry
schedules are reproducible: the same seed always yields the same delays,
and a policy consumes exactly one ``rng.random()`` per delay — property
tests can replay a whole supervision schedule from its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """An exponential-backoff-with-jitter schedule.

    ``base`` is the delay before the first retry, ``factor`` the
    per-retry multiplier, ``jitter`` the fraction of multiplicative
    noise (0 = deterministic), and ``max_delay`` an optional cap applied
    *after* jitter so the schedule stays bounded under many retries.
    """

    base: float = 0.25
    factor: float = 2.0
    jitter: float = 0.5
    max_delay: float | None = None

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based: the first retry is
        attempt 1). Consumes exactly one ``rng.random()`` draw."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = self.base * self.factor ** (attempt - 1)
        delay *= 1.0 + self.jitter * rng.random()
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        return delay

    def schedule(self, attempts: int, seed: int) -> list[float]:
        """The full delay sequence for ``attempts`` retries from one
        seed — a convenience for tests and reports."""
        rng = random.Random(seed)
        return [self.delay(k, rng) for k in range(1, attempts + 1)]
