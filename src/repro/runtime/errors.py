"""Structured exception hierarchy for the whole reproduction.

Every failure the framework itself can anticipate derives from
:class:`ReproError`::

    ReproError
    ├── FrontendError        (repro.frontend.errors — lex/parse/lowering)
    ├── AnalysisError        (a solver or transfer function failed)
    │   └── FaultInjected    (repro.runtime.faults — deliberate test faults)
    ├── BudgetExceeded       (a resource budget ran out mid-analysis)
    ├── CheckpointError      (repro.runtime.checkpoint — bad/poisoned snapshot)
    └── AnalysisInterrupted  (SIGINT/SIGTERM while an engine was running)

Callers that want "anything this package can raise on bad input or
exhausted resources" catch ``ReproError``; callers that want the paper's
timeout semantics (the ∞ entries of Tables 2/3) catch ``BudgetExceeded``.
``AnalysisBudgetExceeded`` remains available from
:mod:`repro.analysis.worklist` as a backwards-compatible alias.

This module must stay import-leaf (no ``repro`` imports) — the frontend,
the runtime, and every solver depend on it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every anticipated failure in the reproduction."""


class AnalysisError(ReproError):
    """An analysis engine failed: a transfer function crashed, a solver
    invariant broke, or a degraded state failed the soundness watchdog."""

    def __init__(self, message: str, node: int | None = None, proc: str | None = None) -> None:
        self.node = node
        self.proc = proc
        super().__init__(message)


class BudgetExceeded(AnalysisError):
    """A resource budget was exhausted mid-analysis.

    ``kind`` names the limit that tripped (``"iterations"``,
    ``"wall_clock"``, ``"state_size"``, or ``"fault"`` for injected trips);
    ``spent``/``limit`` quantify it; ``stage`` names the consuming phase
    (e.g. ``"sparse fixpoint"``, ``"narrowing"``, ``"pre-analysis"``).
    """

    def __init__(
        self,
        message: str,
        kind: str = "iterations",
        spent: float | int | None = None,
        limit: float | int | None = None,
        stage: str | None = None,
    ) -> None:
        self.kind = kind
        self.spent = spent
        self.limit = limit
        self.stage = stage
        super().__init__(message)


class SoundnessViolation(AnalysisError):
    """The soundness watchdog found a degraded state that is *not* bounded
    by the flow-insensitive pre-analysis state (Lemma 2 would not apply)."""


class CheckpointError(ReproError):
    """A checkpoint could not be trusted: unreadable file, wrong magic or
    format version, digest mismatch, truncation, or a configuration
    fingerprint that does not match the resuming run. Restores fail closed —
    a poisoned snapshot is never partially applied."""


class AnalysisInterrupted(ReproError):
    """The process received SIGINT/SIGTERM while an engine was running.

    Raised from the signal handler installed by
    :func:`repro.runtime.interrupt.raising_signal_handlers` so that the
    engine's abort path can flush a final checkpoint before the process
    exits with the conventional ``128 + signum`` code."""

    def __init__(self, signum: int) -> None:
        self.signum = signum
        super().__init__(f"interrupted by signal {signum}")
