"""Fault-tolerant multi-process batch driver (``repro batch FILES...``).

Analyzing a large codebase means many independent translation units — the
paper's Table 2 workloads are exactly that shape — and at that scale
workers crash, hang, and get preempted. This driver runs one analysis per
subprocess worker and supervises the fleet:

* **crash detection** — a worker that exits nonzero, dies on a signal, or
  stops touching its heartbeat file without having written its result is
  treated as crashed;
* **per-job wall-clock timeouts** — SIGTERM (which the worker converts
  into a final checkpoint flush, see :mod:`repro.runtime.interrupt`), a
  grace period, then SIGKILL;
* **bounded retry with exponential backoff + jitter** — crashes and
  timeouts requeue the job up to ``max_retries`` times; anticipated
  analysis failures (:class:`ReproError`: parse errors, budget exhaustion
  in fail mode) are *permanent* and never retried;
* **resume-from-checkpoint** — every worker checkpoints periodically
  (:mod:`repro.runtime.checkpoint`); a retry that finds a checkpoint
  resumes from it, and a retry whose checkpoint fails validation falls
  back to a fresh run (recording the restore error) rather than trusting
  a poisoned snapshot.

Each job ends in exactly one outcome — ``ok``, ``degraded``,
``resumed×k``, or ``failed``. Frontend-poisoned files that *recover*
(malformed declarations skipped, unparseable functions quarantined behind
havoc stubs) finish ``degraded`` with their diagnostic count and
quarantine list attached; only a file with zero recoverable functions is
a permanent failure. The driver aggregates worker telemetry
counters (``checkpoint.writes``, ``checkpoint.bytes``) plus its own
(``worker.retries``, ``worker.restores``) into the supervising registry.

Fault injection: a job's :class:`FaultPlan` is applied on the *first*
attempt only (``kill_worker_at`` would otherwise kill every retry too);
``corrupt_checkpoint`` is driver-side — bytes of the checkpoint are
flipped before the first retry, exercising the fail-closed restore path
end to end.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import random
import signal
import time
from dataclasses import dataclass, field

from repro.runtime.atomicio import atomic_write_json
from repro.runtime.backoff import BackoffPolicy
from repro.runtime.errors import AnalysisInterrupted, ReproError
from repro.runtime.faults import FaultPlan, corrupt_file_tail
from repro.telemetry.core import Telemetry

#: seconds between SIGTERM and SIGKILL when stopping a worker
_TERM_GRACE = 3.0
#: supervisor poll period (seconds)
_POLL = 0.03


@dataclass
class BatchJob:
    """One translation unit to analyze."""

    path: str
    domain: str = "interval"
    mode: str = "sparse"
    #: extra ``analyze()`` options (``narrowing_passes``, ``strict``, ...)
    options: dict = field(default_factory=dict)
    #: fault plan applied on the first attempt only (testing)
    faults: FaultPlan | None = None


@dataclass
class JobOutcome:
    """What finally happened to one job."""

    path: str
    status: str = "failed"  # "ok" | "degraded" | "failed"
    attempts: int = 1
    #: wall-clock seconds of the final (successful or giving-up) attempt
    wall_s: float = 0.0
    #: OS pid of the worker that produced the final verdict
    worker: int | None = None
    #: successful resume-from-checkpoint events across retries
    resumed: int = 0
    retries: int = 0
    alarms: int = 0
    #: functions replaced by havoc stubs after frontend recovery
    quarantined: list[str] = field(default_factory=list)
    #: recovered frontend error diagnostics (count)
    diagnostics: int = 0
    #: functions the analysis actually covered (defined minus quarantined)
    functions: int = 0
    error: str | None = None
    #: per-retry causes ("crash(exit -9)", "timeout", "heartbeat")
    causes: list[str] = field(default_factory=list)
    #: fail-closed restores that fell back to a fresh run
    restore_errors: list[str] = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        if self.status == "failed":
            return "failed"
        if self.resumed:
            return f"resumed×{self.resumed}"
        return self.status

    def as_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["label"] = self.label
        return out


@dataclass
class BatchReport:
    """The whole batch's outcomes plus aggregated counters."""

    outcomes: list[JobOutcome]
    counters: dict = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def exit_code(self) -> int:
        if any(o.status == "failed" for o in self.outcomes):
            return 2
        # recovered frontend diagnostics share the alarm exit path
        if any(o.alarms or o.diagnostics for o in self.outcomes):
            return 1
        return 0

    def as_dict(self) -> dict:
        return {
            "jobs": [o.as_dict() for o in self.outcomes],
            "counters": dict(self.counters),
            "elapsed_s": self.elapsed,
            "exit_code": self.exit_code,
        }

    def text(self) -> str:
        width = max((len(os.path.basename(o.path)) for o in self.outcomes), default=4)
        lines = [
            f"{'file':<{width}}  {'outcome':<12} {'tries':>5} "
            f"{'wall':>8} {'worker':>7} {'alarms':>6}  note"
        ]
        for o in self.outcomes:
            parts = []
            if o.error:
                parts.append(o.error)
            elif o.causes:
                parts.append("; ".join(o.causes))
            if o.diagnostics:
                parts.append(f"{o.diagnostics} frontend diagnostics")
            if o.quarantined:
                parts.append("quarantined: " + ", ".join(o.quarantined))
            note = "; ".join(parts)
            worker = "-" if o.worker is None else str(o.worker)
            lines.append(
                f"{os.path.basename(o.path):<{width}}  {o.label:<12} "
                f"{o.attempts:>5} {o.wall_s:>7.2f}s {worker:>7} "
                f"{o.alarms:>6}  {note}"
            )
        done = sum(1 for o in self.outcomes if o.status != "failed")
        lines.append(
            f"{done}/{len(self.outcomes)} jobs completed, "
            f"{self.counters.get('worker.retries', 0)} retries, "
            f"{self.counters.get('worker.restores', 0)} restores, "
            f"{self.counters.get('checkpoint.writes', 0)} checkpoint writes"
        )
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _count_alarms(run) -> int:
    if run.domain != "interval":
        return 0
    return sum(
        1
        for report in run.overrun_reports()
        if "alarm" in str(report).lower() or "null" in str(report).lower()
    )


def _worker_main(spec: dict, ckpt_path: str, result_path: str, attempt: int,
                 resume: bool, apply_faults: bool) -> None:
    """Subprocess entry: analyze one file, write the result atomically.

    A worker that *completes* (even with a permanent analysis error) always
    writes a result file and exits 0 — the supervisor reads the verdict
    from the file. A worker that crashes, is killed, or is interrupted
    leaves no result file, which is the supervisor's retry signal.
    """
    from repro.api import analyze
    from repro.runtime.errors import CheckpointError
    from repro.runtime.interrupt import raising_signal_handlers

    # let the supervisor's heartbeat monitor see us alive before any work
    with open(ckpt_path + ".hb", "w") as f:
        f.write(str(time.time()))

    hang_attempt = spec["options"].pop("_hang_attempt", None)
    if hang_attempt == attempt:
        time.sleep(600)  # test hook: simulate a hung worker

    faults = None
    if apply_faults and spec.get("faults") is not None:
        plan = dict(spec["faults"])
        if plan.get("drop_dep_edge") is not None:
            plan["drop_dep_edge"] = tuple(plan["drop_dep_edge"])
        faults = FaultPlan(**plan)

    tel = Telemetry(enabled=True)
    result: dict = {"status": "ok", "resumed": False, "restore_error": None}

    def _run(resume_flag: bool, fault_plan):
        with open(spec["path"], "r") as f:
            source = f.read()
        return analyze(
            source,
            domain=spec["domain"],
            mode=spec["mode"],
            filename=spec["path"],
            checkpoint_path=ckpt_path,
            checkpoint_every=spec["checkpoint_every"],
            resume=resume_flag,
            faults=fault_plan,
            telemetry=tel,
            **spec["options"],
        )

    try:
        with raising_signal_handlers(signal.SIGTERM, signal.SIGINT):
            try:
                run = _run(resume, faults)
                result["resumed"] = resume
            except CheckpointError as exc:
                # fail closed: never trust a poisoned snapshot — rerun fresh
                result["restore_error"] = str(exc)
                try:
                    os.unlink(ckpt_path)
                except OSError:
                    pass
                run = _run(False, None)
        result["alarms"] = _count_alarms(run)
        degraded = list(run.diagnostics.degraded_procs)
        result["degraded_procs"] = degraded
        result["quarantined"] = sorted(run.quarantined)
        result["diagnostics"] = len(run.frontend_diagnostics.errors())
        result["functions"] = len(run.program.analyzed_functions())
        # Frontend-poisoned inputs that still recovered are *degraded*,
        # not failed: every clean function was analyzed.
        if degraded or result["quarantined"] or result["diagnostics"]:
            result["status"] = "degraded"
    except AnalysisInterrupted:
        raise  # die without a result file: the supervisor retries us
    except ReproError as exc:
        result = {
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "resumed": False,
            "restore_error": result.get("restore_error"),
            "alarms": 0,
        }
    result["counters"] = dict(tel.counters)
    atomic_write_json(result_path, result)


# --------------------------------------------------------------------------
# Supervisor side
# --------------------------------------------------------------------------


@dataclass
class _Active:
    index: int
    attempt: int
    proc: multiprocessing.process.BaseProcess
    deadline: float | None
    resumed: bool
    #: perf_counter at launch — the per-job wall clock's zero
    started: float = 0.0


@dataclass
class _Queued:
    index: int
    attempt: int
    ready_at: float


def _job_paths(checkpoint_dir: str, job: BatchJob) -> tuple[str, str]:
    digest = hashlib.sha256(os.path.abspath(job.path).encode()).hexdigest()[:10]
    stem = os.path.splitext(os.path.basename(job.path))[0]
    base = os.path.join(checkpoint_dir, f"{stem}-{digest}")
    return base + ".ckpt", base + ".result.json"


#: back-compat alias — the byte-flipper now lives in runtime.faults so the
#: serve supervisor's ``corrupt_snapshot`` fault shares it
_corrupt_file = corrupt_file_tail


def _stop_worker(proc) -> None:
    if not proc.is_alive():
        return
    proc.terminate()  # SIGTERM → worker flushes a final checkpoint
    proc.join(_TERM_GRACE)
    if proc.is_alive():
        proc.kill()
        proc.join()


def run_batch(
    jobs: list[BatchJob],
    checkpoint_dir: str,
    *,
    max_workers: int | None = None,
    job_timeout: float | None = None,
    max_retries: int = 2,
    backoff_base: float = 0.25,
    backoff_factor: float = 2.0,
    jitter: float = 0.5,
    seed: int = 0,
    heartbeat_timeout: float | None = None,
    resume: bool = False,
    checkpoint_every: int = 5,
    telemetry=None,
) -> BatchReport:
    """Analyze ``jobs`` concurrently with retry/resume supervision.

    ``resume=True`` lets *first* attempts pick up checkpoints left by a
    previous batch invocation (the default treats them as stale). Retries
    always resume when a checkpoint exists. Backoff before retry ``k``
    follows :class:`repro.runtime.backoff.BackoffPolicy` —
    ``backoff_base * backoff_factor**(k-1) * (1 + jitter*rng.random())``
    with a seeded PRNG, so batch schedules are reproducible.
    """
    # the report's aggregate counters must exist even without a caller
    # registry, so the no-telemetry default is a private enabled one
    tel = Telemetry(enabled=True) if telemetry is None else Telemetry.coerce(telemetry)
    os.makedirs(checkpoint_dir, exist_ok=True)
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    rng = random.Random(seed)
    backoff = BackoffPolicy(
        base=backoff_base, factor=backoff_factor, jitter=jitter
    )
    if max_workers is None:
        max_workers = min(4, os.cpu_count() or 1)

    start = time.perf_counter()
    outcomes = [JobOutcome(path=job.path) for job in jobs]
    paths = [_job_paths(checkpoint_dir, job) for job in jobs]
    resume_launches = [0] * len(jobs)

    queue: list[_Queued] = []
    for i, (ckpt, result_path) in enumerate(paths):
        # stale results from a previous batch would be mistaken for this
        # run's verdicts; stale checkpoints are only kept under --resume
        if os.path.exists(result_path):
            os.unlink(result_path)
        if not resume and os.path.exists(ckpt):
            os.unlink(ckpt)
        queue.append(_Queued(i, attempt=1, ready_at=0.0))
    active: dict[int, _Active] = {}

    def spec_for(index: int) -> dict:
        job = jobs[index]
        return {
            "path": job.path,
            "domain": job.domain,
            "mode": job.mode,
            "options": dict(job.options),
            "checkpoint_every": checkpoint_every,
            "faults": (
                dataclasses.asdict(job.faults) if job.faults is not None else None
            ),
        }

    def launch(entry: _Queued) -> None:
        index, attempt = entry.index, entry.attempt
        ckpt, result_path = paths[index]
        resume_flag = os.path.exists(ckpt) and (attempt > 1 or resume)
        if resume_flag:
            resume_launches[index] += 1
        # restart the staleness clock: a previous attempt's heartbeat file
        # must not get the fresh worker killed before it first reports in
        with open(ckpt + ".hb", "w") as f:
            f.write(str(time.time()))
        proc = ctx.Process(
            target=_worker_main,
            args=(spec_for(index), ckpt, result_path, attempt,
                  resume_flag, attempt == 1),
            daemon=True,
        )
        proc.start()
        now = time.perf_counter()
        active[index] = _Active(
            index=index,
            attempt=attempt,
            proc=proc,
            deadline=(now + job_timeout) if job_timeout else None,
            resumed=resume_flag,
            started=now,
        )
        outcomes[index].attempts = attempt
        outcomes[index].worker = proc.pid

    def requeue(entry: _Active, cause: str) -> bool:
        """Schedule a retry; False when the retry budget is exhausted."""
        index = entry.index
        outcome = outcomes[index]
        outcome.causes.append(cause)
        if entry.attempt > max_retries:
            outcome.status = "failed"
            outcome.error = f"gave up after {entry.attempt} attempts ({cause})"
            outcome.wall_s = time.perf_counter() - entry.started
            return False
        outcome.retries += 1
        tel.count("worker.retries")
        job = jobs[index]
        if (
            entry.attempt == 1
            and job.faults is not None
            and job.faults.corrupt_checkpoint
            and os.path.exists(paths[index][0])
        ):
            _corrupt_file(paths[index][0])
        delay = backoff.delay(entry.attempt, rng)
        queue.append(
            _Queued(index, entry.attempt + 1, time.perf_counter() + delay)
        )
        return True

    def finalize(entry: _Active, result: dict) -> None:
        index = entry.index
        outcome = outcomes[index]
        outcome.wall_s = time.perf_counter() - entry.started
        if result.get("resumed"):
            outcome.resumed += 1
            tel.count("worker.restores")
        if result.get("restore_error"):
            outcome.restore_errors.append(result["restore_error"])
        outcome.alarms = int(result.get("alarms") or 0)
        outcome.quarantined = list(result.get("quarantined") or [])
        outcome.diagnostics = int(result.get("diagnostics") or 0)
        outcome.functions = int(result.get("functions") or 0)
        outcome.counters = result.get("counters") or {}
        for name, value in outcome.counters.items():
            if isinstance(value, int):
                tel.count(name, value)
        if result["status"] == "error":
            outcome.status = "failed"
            outcome.error = result.get("error")
        else:
            outcome.status = result["status"]

    with tel.span("batch", jobs=len(jobs), workers=max_workers) as batch_span:
        try:
            while queue or active:
                now = time.perf_counter()
                ready = [e for e in queue if e.ready_at <= now]
                for entry in ready:
                    if len(active) >= max_workers:
                        break
                    queue.remove(entry)
                    launch(entry)
                for entry in list(active.values()):
                    ckpt, result_path = paths[entry.index]
                    alive = entry.proc.is_alive()
                    if not alive and os.path.exists(result_path):
                        with open(result_path) as f:
                            finalize(entry, json.load(f))
                        entry.proc.join()
                        del active[entry.index]
                        continue
                    if not alive:
                        entry.proc.join()
                        del active[entry.index]
                        requeue(entry, f"crash(exit {entry.proc.exitcode})")
                        continue
                    now = time.perf_counter()
                    if entry.deadline is not None and now > entry.deadline:
                        _stop_worker(entry.proc)
                        del active[entry.index]
                        requeue(entry, "timeout")
                        continue
                    if heartbeat_timeout is not None:
                        try:
                            age = time.time() - os.path.getmtime(ckpt + ".hb")
                        except OSError:
                            age = None
                        if age is not None and age > heartbeat_timeout:
                            _stop_worker(entry.proc)
                            del active[entry.index]
                            requeue(entry, "heartbeat")
                            continue
                time.sleep(_POLL)
        finally:
            for entry in active.values():
                _stop_worker(entry.proc)
        batch_span.set(
            retries=tel.counters.get("worker.retries", 0),
            restores=tel.counters.get("worker.restores", 0),
        )

    # restores the workers could not report (they died before writing a
    # result) still happened if a later launch resumed: trust launch counts
    for i, outcome in enumerate(outcomes):
        extra = resume_launches[i] - len(outcome.restore_errors) - outcome.resumed
        if outcome.status != "failed" and extra > 0:
            outcome.resumed += extra
            tel.count("worker.restores", extra)

    return BatchReport(
        outcomes=outcomes,
        counters=dict(tel.counters),
        elapsed=time.perf_counter() - start,
    )
