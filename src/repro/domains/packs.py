"""Variable packs for the packed relational analysis (Sections 4, 6.2).

A *pack* is a small, semantically related set of scalar variables analyzed
together by one octagon. The packing strategy follows the paper's
syntax-directed heuristic ("similar to Miné's approach"):

* variables appearing in the same statement (linear expressions, loop
  conditions) are grouped — syntactic locality, scoped per procedure;
* actual and formal parameters are grouped per call site, plus return
  values with the expressions that produce/consume them — "necessary to
  capture relations across procedure boundaries";
* packs exceeding the size threshold (10 in the paper) are split;
* every variable also gets a singleton pack, which the projection ``p_x``
  of Section 4.1 reads interval values from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.domains.absloc import AbsLoc, RetLoc, VarLoc
from repro.frontend.ctypes import IntType
from repro.ir.commands import (
    CAlloc,
    CAssume,
    CCall,
    CRetBind,
    CReturn,
    CSet,
    VarLv,
    expr_vars,
)
from repro.ir.program import Program

#: Paper: "Large packs whose sizes exceed a threshold (10) were split".
PACK_SIZE_THRESHOLD = 10


@dataclass(frozen=True)
class Pack:
    """An ordered tuple of pack members (VarLoc/RetLoc), duplicate-free."""

    members: tuple[AbsLoc, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(self.members))

    def __hash__(self) -> int:  # cached: packs are hot dict keys
        return self._hash  # type: ignore[attr-defined]

    @staticmethod
    def of(locs: Iterable[AbsLoc]) -> "Pack":
        return Pack(tuple(sorted(set(locs), key=lambda l: l.sort_key())))

    def index(self, loc: AbsLoc) -> int:
        return self.members.index(loc)

    def __contains__(self, loc: AbsLoc) -> bool:
        return loc in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def sort_key(self) -> tuple:
        return ("Pack", tuple(str(m) for m in self.members))

    def __lt__(self, other: "Pack") -> bool:
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        return "⟪" + ", ".join(str(m) for m in self.members) + "⟫"


@dataclass
class PackSet:
    """All packs of a program plus lookup indexes."""

    packs: list[Pack]
    by_var: dict[AbsLoc, list[Pack]]
    singleton: dict[AbsLoc, Pack]

    def packs_of(self, loc: AbsLoc) -> list[Pack]:
        return self.by_var.get(loc, [])

    def average_size(self) -> float:
        multi = [p for p in self.packs if len(p) > 1]
        if not multi:
            return 1.0
        return sum(len(p) for p in multi) / len(multi)


def _scalar_locs(program: Program, proc: str, lv_or_expr) -> set[AbsLoc]:
    """Scalar VarLocs mentioned in an IR expression/lvalue (packs track
    numeric variables only)."""
    from repro.ir.commands import ELval, Expr, Lval

    out: set[AbsLoc] = set()
    if isinstance(lv_or_expr, Expr):
        lvs = expr_vars(lv_or_expr)
    else:
        lvs = expr_vars(ELval(lv_or_expr))
    for lv in lvs:
        if isinstance(lv, VarLv):
            loc = VarLoc(lv.name, lv.proc)
            if _is_scalar(program, loc):
                out.add(loc)
    return out


def _is_scalar(program: Program, loc: VarLoc) -> bool:
    if loc.proc is None:
        ctype = program.global_types.get(loc.name)
    else:
        info = program.proc_infos.get(loc.proc)
        ctype = info.var_types.get(loc.name) if info else None
    if ctype is None:
        return True  # compiler temporaries are numeric
    return isinstance(ctype, IntType)


def build_packs(
    program: Program, threshold: int = PACK_SIZE_THRESHOLD
) -> PackSet:
    """Syntax-directed packing over the lowered IR."""
    groups: list[set[AbsLoc]] = []
    all_vars: set[AbsLoc] = set()

    for node in program.nodes():
        cmd = node.cmd
        group: set[AbsLoc] = set()
        if isinstance(cmd, CSet):
            group |= _scalar_locs(program, node.proc, cmd.lval)
            group |= _scalar_locs(program, node.proc, cmd.expr)
        elif isinstance(cmd, CAssume):
            group |= _scalar_locs(program, node.proc, cmd.cond)
        elif isinstance(cmd, CCall):
            # actual arguments ∪ formal parameters, per call site
            for arg in cmd.args:
                group |= _scalar_locs(program, node.proc, arg)
            callee = cmd.static_callee
            if callee and callee in program.proc_infos:
                info = program.proc_infos[callee]
                group |= {
                    VarLoc(p, callee)
                    for p in info.params
                    if _is_scalar(program, VarLoc(p, callee))
                }
        elif isinstance(cmd, CReturn) and cmd.value is not None:
            group |= _scalar_locs(program, node.proc, cmd.value)
            group.add(RetLoc(node.proc))
        elif isinstance(cmd, CRetBind) and cmd.lval is not None:
            if isinstance(cmd.lval, VarLv):
                loc = VarLoc(cmd.lval.name, cmd.lval.proc)
                if _is_scalar(program, loc):
                    group.add(loc)
            call_node = program.node(cmd.call_node)
            callee = getattr(call_node.cmd, "static_callee", None)
            if callee:
                group.add(RetLoc(callee))
        elif isinstance(cmd, CAlloc):
            group |= _scalar_locs(program, node.proc, cmd.size)
        all_vars |= group
        if len(group) > 1:
            groups.append(group)

    merged = _merge_groups(groups, threshold)

    packs: list[Pack] = []
    seen: set[tuple] = set()
    for group in merged:
        pack = Pack.of(group)
        if pack.members and pack.members not in seen:
            seen.add(pack.members)
            packs.append(pack)
    for var in sorted(all_vars, key=lambda l: l.sort_key()):
        single = Pack.of([var])
        if single.members not in seen:
            seen.add(single.members)
            packs.append(single)

    by_var: dict[AbsLoc, list[Pack]] = {}
    singleton: dict[AbsLoc, Pack] = {}
    for pack in packs:
        for member in pack:
            by_var.setdefault(member, []).append(pack)
        if len(pack) == 1:
            singleton[pack.members[0]] = pack
    return PackSet(packs, by_var, singleton)


def _merge_groups(
    groups: list[set[AbsLoc]], threshold: int
) -> list[set[AbsLoc]]:
    """Union-merge overlapping statement groups, respecting the size cap:
    a merge that would exceed the threshold is skipped (the paper splits
    oversized packs)."""
    merged: list[set[AbsLoc]] = []
    for group in groups:
        fresh = False
        if len(group) > threshold:
            group = set(sorted(group, key=lambda l: l.sort_key())[:threshold])
            fresh = True  # already our own set — no second copy needed
        target = None
        for existing in merged:
            if existing & group and len(existing | group) <= threshold:
                target = existing
                break
        if target is not None:
            target |= group
        else:
            merged.append(group if fresh else set(group))
    return merged
