"""Abstract locations (the paper's ``L̂``).

The interval analysis of Section 6.1 uses:

* program variables (locals qualified by procedure, globals unqualified),
* allocation sites for heap/array blocks (arrays are *smashed*: one summary
  location per block holds the join of all elements),
* struct fields — the analysis is field-sensitive, so ``p.f`` and heap
  fields get their own locations,
* a return location per procedure (carries the callee's return value to
  the caller),
* function designators (for function-pointer points-to sets).

Locations are immutable, hashable and totally ordered (useful for stable
iteration and BDD bit-encoding).
"""

from __future__ import annotations

from dataclasses import dataclass


class AbsLoc:
    """Base class for abstract locations."""

    __slots__ = ()

    def sort_key(self) -> tuple:
        return (type(self).__name__, str(self))

    def __lt__(self, other: "AbsLoc") -> bool:
        return self.sort_key() < other.sort_key()

    def is_summary(self) -> bool:
        """Summary locations abstract several concrete cells (array blocks,
        heap sites) and therefore only admit weak updates."""
        return False


# -- dense location ids -----------------------------------------------------
#
# The array-backed stores (:mod:`repro.domains.state`) index their bound
# vectors by a dense integer id per location. Ids are minted on first write
# and never recycled — the registry is bounded by the number of distinct
# locations the analysis ever mentions, and equal locations (even distinct
# objects) share one id, so :func:`loc_of_id` returns a canonical
# representative that is ``==`` to every alias.

_LOC_IDS: dict[AbsLoc, int] = {}
_ID_LOCS: list[AbsLoc] = []


def loc_id(loc: AbsLoc) -> int:
    """The dense integer id of ``loc``, assigned on first use."""
    found = _LOC_IDS.get(loc)
    if found is None:
        found = len(_ID_LOCS)
        _LOC_IDS[loc] = found
        _ID_LOCS.append(loc)
    return found


def peek_loc_id(loc: AbsLoc) -> int | None:
    """The id of ``loc`` if it already has one — read paths must not mint
    fresh ids for locations no state has ever stored."""
    return _LOC_IDS.get(loc)


def loc_of_id(i: int) -> AbsLoc:
    """The canonical location registered under id ``i``."""
    return _ID_LOCS[i]


def loc_id_count() -> int:
    """How many ids exist — cache-invalidation stamp for id-set caches."""
    return len(_ID_LOCS)


@dataclass(frozen=True, order=False)
class VarLoc(AbsLoc):
    """A program variable; ``proc`` None means global."""

    name: str
    proc: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("V", self.name, self.proc)))

    def __hash__(self) -> int:  # cached: locations are hot dict keys
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return self.name if self.proc is None else f"{self.proc}::{self.name}"


@dataclass(frozen=True, order=False)
class AllocLoc(AbsLoc):
    """An allocation site — the summary element of the allocated block."""

    site: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("A", self.site)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def is_summary(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"alloc<{self.site}>"


@dataclass(frozen=True, order=False)
class FieldLoc(AbsLoc):
    """Field ``fieldname`` of the object at ``base``."""

    base: AbsLoc
    fieldname: str

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash(("F", self.base, self.fieldname))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def is_summary(self) -> bool:
        return self.base.is_summary()

    def __str__(self) -> str:
        return f"{self.base}.{self.fieldname}"


@dataclass(frozen=True, order=False)
class RetLoc(AbsLoc):
    """The return-value cell of a procedure."""

    proc: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("R", self.proc)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"ret<{self.proc}>"


@dataclass(frozen=True, order=False)
class FuncLoc(AbsLoc):
    """A function designator — what ``&f`` points to."""

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(("X", self.name)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"fun<{self.name}>"
