"""Lattice protocol shared by all abstract domains.

Every abstract domain element supports the operations the fixpoint engines
need: partial order (``leq``), ``join``, ``widen`` (and optionally ``meet``
and ``narrow``). Domains are immutable value objects, so operators return
new elements.
"""

from __future__ import annotations

from typing import Protocol, TypeVar, runtime_checkable

T = TypeVar("T", bound="AbstractValue")


@runtime_checkable
class AbstractValue(Protocol):
    """Structural protocol for elements of an abstract domain."""

    def leq(self: T, other: T) -> bool:
        """Partial order ⊑."""
        ...

    def join(self: T, other: T) -> T:
        """Least upper bound ⊔."""
        ...

    def widen(self: T, other: T) -> T:
        """Widening ▽ — must guarantee termination of ascending chains."""
        ...

    def is_bottom(self) -> bool:
        """True iff this is the bottom element."""
        ...


def joined(values: "list[T]", bottom: T) -> T:
    """Fold ``join`` over ``values`` starting from ``bottom``."""
    out = bottom
    for v in values:
        out = out.join(v)
    return out
