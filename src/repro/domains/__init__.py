"""Abstract domains: intervals, points-to sets, product values, states,
octagons, and variable packs."""

from repro.domains.absloc import (
    AbsLoc,
    AllocLoc,
    FieldLoc,
    FuncLoc,
    RetLoc,
    VarLoc,
)
from repro.domains.interval import Interval
from repro.domains.state import AbsState
from repro.domains.value import AbsValue, ArrayBlock

__all__ = [
    "AbsLoc",
    "AllocLoc",
    "FieldLoc",
    "FuncLoc",
    "RetLoc",
    "VarLoc",
    "Interval",
    "AbsState",
    "AbsValue",
    "ArrayBlock",
]
