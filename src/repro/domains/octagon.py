"""The octagon abstract domain (Miné, HOSC 2006).

Constraints of the form ``±x ± y ≤ c`` over a fixed, ordered tuple of
variables, represented as a difference-bound matrix (DBM) over the doubled
variable set: index ``2k`` stands for ``+x_k`` and ``2k+1`` for ``-x_k``;
entry ``m[i, j]`` bounds ``v_j − v_i ≤ m[i, j]``.

Provides the operations the packed relational analysis of Section 4 needs:

* strong closure (Floyd–Warshall + unary tightening, with integer
  rounding), emptiness test;
* lattice: ``leq``, ``join``, ``meet``, ``widen``, ``narrow``;
* transfer functions: interval assignment, ``x := ±y + [l, u]`` (exact),
  general forget, and comparison tests (``x ⋈ c``, ``x ⋈ y + c``);
* projection of one variable to an :class:`Interval` (the paper's ``π_x``).

Instances are immutable: every operation returns a fresh octagon. Matrices
are small (packs are capped at ~10 variables) so numpy ``float64`` with
``inf`` is precise enough — all constants of the analysis are small ints.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.domains.interval import Interval

INF = np.inf

# -- sparsity-preserving closure (Jourdan's observation) ----------------------
#
# Pack octagons are mostly ⊤: typically only a few of the pack's variables
# carry any constraint, and a variable with no finite off-diagonal entry
# can never tighten anything — Floyd–Warshall relaxation through it and the
# strong step over its (infinite) unary bounds are both no-ops, and its own
# entries stay at +∞/0. Restricting closure, leq, join and widen to the
# *support* (variables with at least one finite off-diagonal entry) is
# therefore byte-identical to the dense Miné path while cutting the O(n³)
# closure to O(s³). The dense path remains both a fallback when density
# crosses the threshold and an oracle for the differential tests.

_SPARSE_ENABLED = os.environ.get("REPRO_OCT_CLOSURE", "").strip().lower() != "dense"
#: fall back to the dense path once support/dim exceeds this fraction —
#: near-dense packs gain nothing from gathering a submatrix
_SPARSE_THRESHOLD = 0.9


def set_sparse_closure(
    enabled: bool | None = None, threshold: float | None = None
) -> tuple[bool, float]:
    """Toggle the sparsity-preserving octagon paths (A/B + test knob).
    Returns the previous ``(enabled, threshold)`` pair."""
    global _SPARSE_ENABLED, _SPARSE_THRESHOLD
    previous = (_SPARSE_ENABLED, _SPARSE_THRESHOLD)
    if enabled is not None:
        _SPARSE_ENABLED = bool(enabled)
    if threshold is not None:
        _SPARSE_THRESHOLD = float(threshold)
    return previous


def sparse_closure_enabled() -> bool:
    return _SPARSE_ENABLED


def _interleaved_pairs(support: np.ndarray) -> np.ndarray:
    """DBM indices (2v, 2v+1 interleaved) of the support variables; the
    interleaving keeps ``i ^ 1`` the negation within the submatrix."""
    pairs = np.empty(2 * len(support), dtype=np.intp)
    pairs[0::2] = 2 * support
    pairs[1::2] = 2 * support + 1
    return pairs


def _neg_index(i: int) -> int:
    """The index of the negated form: 2k ↔ 2k+1."""
    return i ^ 1


def _tighten_and_strong(m: np.ndarray, n: int, swap: np.ndarray) -> None:
    """Integer tightening of the unary bounds (m[i, ī] is 2·bound(±x))
    followed by Miné's strong step, in place."""
    idx = np.arange(n)
    unary = m[idx, swap]
    finite = np.isfinite(unary)
    unary[finite] = 2 * np.floor(unary[finite] / 2)
    m[idx, swap] = unary
    # m[i,j] ← min(m[i,j], (m[i,ī] + m[j̄,j]) / 2); ∞/2 stays ∞.
    np.minimum(m, (unary[:, None] + unary[swap][None, :]) / 2, out=m)


def _strong_closure_rounds(m: np.ndarray, rounds: int) -> bool:
    """The full strong-closure iteration (Floyd–Warshall relaxation +
    tightening + strong step until stable), in place. Returns False when
    the system is infeasible (negative diagonal); on True the diagonal has
    been reset to 0."""
    n = m.shape[0]
    swap = np.arange(n) ^ 1
    for _round in range(rounds):
        before = m.copy()
        # Floyd–Warshall via vectorized relaxation.
        for k in range(n):
            np.minimum(m, m[:, k : k + 1] + m[k : k + 1, :], out=m)
        _tighten_and_strong(m, n, swap)
        if np.any(np.diag(m) < 0):
            return False
        if np.array_equal(m, before):
            break
    np.fill_diagonal(m, 0.0)
    return True


def _incremental_close(m: np.ndarray, var: int) -> None:
    """Incremental strong closure after modifying only variable ``var`` of
    a strongly-closed matrix (Miné's algorithm): relax through the two
    indices of ``var``, then tighten + strong step. O(n²) instead of the
    full O(n³) closure."""
    _close_touched(m, (var,))


def _close_touched(m: np.ndarray, touched: tuple[int, ...]) -> None:
    """Incremental strong closure when only ``touched`` variables'
    constraints were modified on a strongly-closed matrix."""
    n = m.shape[0]
    swap = np.arange(n) ^ 1
    for _pass in range(2 if len(touched) > 1 else 1):
        for var in touched:
            for k in (2 * var, 2 * var + 1):
                np.minimum(m, m[:, k : k + 1] + m[k : k + 1, :], out=m)
        _tighten_and_strong(m, n, swap)


@dataclass(frozen=True)
class Octagon:
    """An octagon over ``dim`` variables. ``matrix`` is a DBM; ⊥ is the
    distinguished ``empty``. ``closed_flag`` records that the matrix is
    already strongly closed, letting the hot transfer-function paths skip
    redundant O(n³) closures."""

    dim: int
    matrix: np.ndarray | None = None
    empty: bool = False
    closed_flag: bool = field(default=False, compare=False)

    # -- constructors -------------------------------------------------------------

    @staticmethod
    def top(dim: int) -> "Octagon":
        m = np.full((2 * dim, 2 * dim), INF)
        np.fill_diagonal(m, 0.0)
        return Octagon(dim, m, closed_flag=True)

    @staticmethod
    def bottom(dim: int) -> "Octagon":
        return Octagon(dim, None, empty=True, closed_flag=True)

    def _m(self) -> np.ndarray:
        assert self.matrix is not None
        return self.matrix

    def _support(self) -> np.ndarray:
        """Variables with at least one finite off-diagonal entry; every
        other variable is unconstrained (its row/column is all +∞) and
        inert under closure. Cached on the instance — matrices are never
        mutated after construction."""
        cached = getattr(self, "_support_cache", None)
        if cached is not None:
            return cached
        m = self._m()
        finite = np.isfinite(m)
        np.fill_diagonal(finite, False)
        by_index = finite.any(axis=1) | finite.any(axis=0)
        support = np.nonzero(by_index[0::2] | by_index[1::2])[0]
        object.__setattr__(self, "_support_cache", support)
        return support

    # -- closure --------------------------------------------------------------------

    def closed(self) -> "Octagon":
        """Strong closure: shortest paths + unary tightening + integer
        rounding. Returns ⊥ if the constraint system is infeasible.

        When the matrix is sparse (most variables unconstrained), closure
        runs on the support submatrix only — byte-identical to the dense
        result, since unconstrained rows/columns stay at +∞ through every
        relaxation, tightening and strong step of the dense iteration."""
        if self.empty:
            return self
        if self.closed_flag:
            return self
        # DBM entries are finite or +∞ (never −∞), so +∞ arithmetic cannot
        # produce NaN and no scrubbing is needed in the relaxations.
        if _SPARSE_ENABLED and self.dim >= 2:
            support = self._support()
            s = len(support)
            if s == 0:
                m = self._m().copy()
                if np.any(np.diag(m) < 0):
                    return Octagon.bottom(self.dim)
                np.fill_diagonal(m, 0.0)
                return Octagon(self.dim, m, closed_flag=True)
            if s < self.dim and s <= _SPARSE_THRESHOLD * self.dim:
                ix = np.ix_(
                    _interleaved_pairs(support), _interleaved_pairs(support)
                )
                sub = np.ascontiguousarray(self._m()[ix])
                # same round cap as the dense path: identical fixpoint and
                # identical bottom detection on the embedded submatrix
                if not _strong_closure_rounds(sub, 2 * self.dim + 2):
                    return Octagon.bottom(self.dim)
                m = np.full_like(self._m(), INF)
                np.fill_diagonal(m, 0.0)
                m[ix] = sub
                return Octagon(self.dim, m, closed_flag=True)
        m = self._m().copy()
        if not _strong_closure_rounds(m, 2 * self.dim + 2):
            return Octagon.bottom(self.dim)
        return Octagon(self.dim, m, closed_flag=True)

    def is_bottom(self) -> bool:
        return self.empty

    def is_top(self) -> bool:
        if self.empty:
            return False
        # every finite entry is on the (zero) diagonal
        m = self._m()
        return int(np.count_nonzero(np.isfinite(m))) == m.shape[0]

    # -- lattice ---------------------------------------------------------------------

    def leq(self, other: "Octagon") -> bool:
        if self.empty:
            return True
        if other.empty:
            return False
        if self is other:
            return True
        a, b = self._m(), other._m()
        if _SPARSE_ENABLED and self.dim >= 2:
            # b is +∞ off-diagonal outside its support, where a ≤ b holds
            # trivially — only the diagonal and b's support block matter
            support = other._support()
            if 2 * len(support) < a.shape[0]:
                if not np.all(np.diag(a) <= np.diag(b)):
                    return False
                if len(support) == 0:
                    return True
                ix = np.ix_(
                    _interleaved_pairs(support), _interleaved_pairs(support)
                )
                return bool(np.all(a[ix] <= b[ix]))
        return bool(np.all(a <= b))

    def join(self, other: "Octagon") -> "Octagon":
        if self.empty:
            return other
        if other.empty:
            return self
        a, b = self._m(), other._m()
        if _SPARSE_ENABLED and self.dim >= 2:
            # max(a, b) is finite off-diagonal only where both are — the
            # intersection of the supports
            common = np.intersect1d(self._support(), other._support())
            if 2 * len(common) < a.shape[0]:
                out = np.full_like(a, INF)
                n = a.shape[0]
                idx = np.arange(n)
                out[idx, idx] = np.maximum(np.diag(a), np.diag(b))
                if len(common):
                    ix = np.ix_(
                        _interleaved_pairs(common), _interleaved_pairs(common)
                    )
                    out[ix] = np.maximum(a[ix], b[ix])
                return Octagon(
                    self.dim,
                    out,
                    closed_flag=self.closed_flag and other.closed_flag,
                )
        # pointwise max of strongly closed DBMs is strongly closed
        return Octagon(
            self.dim,
            np.maximum(a, b),
            closed_flag=self.closed_flag and other.closed_flag,
        )

    def meet(self, other: "Octagon") -> "Octagon":
        if self.empty or other.empty:
            return Octagon.bottom(self.dim)
        return Octagon(self.dim, np.minimum(self._m(), other._m())).closed()

    def widen(self, other: "Octagon") -> "Octagon":
        """Standard DBM widening: unstable entries go to +∞."""
        if self.empty:
            return other
        if other.empty:
            return self
        a, b = self._m(), other._m()
        if _SPARSE_ENABLED and self.dim >= 2:
            # a's +∞ entries stay +∞ under widening (b ≤ +∞ keeps a), so
            # only a's support block can hold finite results
            support = self._support()
            if 2 * len(support) < a.shape[0]:
                out = np.full_like(a, INF)
                if len(support):
                    ix = np.ix_(
                        _interleaved_pairs(support), _interleaved_pairs(support)
                    )
                    out[ix] = np.where(b[ix] <= a[ix], a[ix], INF)
                np.fill_diagonal(out, 0.0)
                return Octagon(self.dim, out)
        out = np.where(b <= a, a, INF)
        np.fill_diagonal(out, 0.0)
        return Octagon(self.dim, out)

    def narrow(self, other: "Octagon") -> "Octagon":
        if self.empty or other.empty:
            return Octagon.bottom(self.dim)
        a, b = self._m(), other._m()
        out = np.where(np.isinf(a), b, a)
        return Octagon(self.dim, out).closed()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Octagon):
            return NotImplemented
        if self.empty or other.empty:
            return self.empty == other.empty
        return self.dim == other.dim and bool(np.array_equal(self._m(), other._m()))

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.dim, self.empty))

    # -- constraint entry points ---------------------------------------------------------

    def with_upper(self, k: int, c: float) -> "Octagon":
        """Add ``x_k ≤ c``."""
        return self._with_entry(2 * k + 1, 2 * k, 2 * c)

    def with_lower(self, k: int, c: float) -> "Octagon":
        """Add ``x_k ≥ c``."""
        return self._with_entry(2 * k, 2 * k + 1, -2 * c)

    def with_diff(self, j: int, i: int, c: float) -> "Octagon":
        """Add ``x_j − x_i ≤ c``."""
        return self._with_entry(2 * i, 2 * j, c)._with_entry_last(
            2 * j + 1, 2 * i + 1, c
        )

    def with_sum_upper(self, i: int, j: int, c: float) -> "Octagon":
        """Add ``x_i + x_j ≤ c``."""
        return self._with_entry(2 * i + 1, 2 * j, c)._with_entry_last(
            2 * j + 1, 2 * i, c
        )

    def _with_entry(self, i: int, j: int, c: float) -> "Octagon":
        if self.empty:
            return self
        m = self._m().copy()
        if c < m[i, j]:
            m[i, j] = c
        return Octagon(self.dim, m)

    def _with_entry_last(self, i: int, j: int, c: float) -> "Octagon":
        return self._with_entry(i, j, c)

    # -- transfer functions -----------------------------------------------------------------

    def forget(self, k: int) -> "Octagon":
        """Drop every constraint mentioning ``x_k`` (havoc). Wiping a
        variable of a strongly closed matrix keeps it strongly closed."""
        if self.empty:
            return self
        m = self.closed()
        if m.empty:
            return m
        out = m._m().copy()
        for idx in (2 * k, 2 * k + 1):
            out[idx, :] = INF
            out[:, idx] = INF
        np.fill_diagonal(out, 0.0)
        return Octagon(self.dim, out, closed_flag=True)

    def assign_interval(self, k: int, itv: Interval) -> "Octagon":
        """``x_k := [l, u]`` — forget then bound, with the O(n²)
        incremental closure (only ``x_k``'s constraints changed)."""
        if self.empty:
            return self
        if itv.is_bottom():
            return Octagon.bottom(self.dim)
        base = self.closed()
        if base.empty:
            return base
        m = base._m().copy()
        for idx in (2 * k, 2 * k + 1):
            m[idx, :] = INF
            m[:, idx] = INF
        np.fill_diagonal(m, 0.0)
        if itv.hi is not None:
            m[2 * k + 1, 2 * k] = 2.0 * itv.hi
        if itv.lo is not None:
            m[2 * k, 2 * k + 1] = -2.0 * itv.lo
        _incremental_close(m, k)
        if np.any(np.diag(m) < 0):
            return Octagon.bottom(self.dim)
        np.fill_diagonal(m, 0.0)
        return Octagon(self.dim, m, closed_flag=True)

    def assign_var_plus(
        self, k: int, src: int, delta: Interval, negate: bool = False
    ) -> "Octagon":
        """``x_k := ±x_src + [l, u]`` — the exact octagonal assignment."""
        if self.empty:
            return self
        if delta.is_bottom():
            return Octagon.bottom(self.dim)
        lo = -INF if delta.lo is None else float(delta.lo)
        hi = INF if delta.hi is None else float(delta.hi)
        if k == src:
            return self._assign_self_shift(k, lo, hi, negate)
        out = self.forget(k)
        if out.empty:
            return out
        m = out._m().copy()
        if not negate:
            # x_k − x_src ≤ hi ; x_src − x_k ≤ −lo
            if np.isfinite(hi):
                m[2 * src, 2 * k] = hi
                m[2 * k + 1, 2 * src + 1] = hi
            if np.isfinite(lo):
                m[2 * k, 2 * src] = -lo
                m[2 * src + 1, 2 * k + 1] = -lo
        else:
            # x_k + x_src ≤ hi ; −x_k − x_src ≤ −lo
            if np.isfinite(hi):
                m[2 * src + 1, 2 * k] = hi
                m[2 * k + 1, 2 * src] = hi
            if np.isfinite(lo):
                m[2 * k, 2 * src + 1] = -lo
                m[2 * src, 2 * k + 1] = -lo
        # the new x_k↔x_src edges compose with x_src's old bounds, so the
        # incremental closure must relax through both variables' indices
        _close_touched(m, (src, k))
        if np.any(np.diag(m) < 0):
            return Octagon.bottom(self.dim)
        np.fill_diagonal(m, 0.0)
        return Octagon(self.dim, m, closed_flag=True)

    def _assign_self_shift(
        self, k: int, lo: float, hi: float, negate: bool
    ) -> "Octagon":
        """``x_k := ±x_k + [lo, hi]`` without forgetting (translation)."""
        base = self.closed()
        if base.empty:
            return base
        m = base._m().copy()
        pos, neg = 2 * k, 2 * k + 1
        if negate:
            m[[pos, neg], :] = m[[neg, pos], :]
            m[:, [pos, neg]] = m[:, [neg, pos]]
        # Translating x by [lo, hi]: constraints x − y get +[lo,hi] etc.
        for idx, sign_row in ((pos, -1), (neg, +1)):
            for j in range(m.shape[0]):
                if j in (pos, neg):
                    continue
                # row idx: v_j − v_idx ≤ c  → v_idx grows by δ ⇒ bound −δ
                if np.isfinite(m[idx, j]):
                    m[idx, j] += -lo if idx == pos else hi
                if np.isfinite(m[j, idx]):
                    m[j, idx] += hi if idx == pos else -lo
        # Unary pair: x ≤ u becomes x ≤ u + hi; −x ≤ −l becomes −x ≤ −l − lo
        if np.isfinite(m[neg, pos]):
            m[neg, pos] += 2 * hi
        if np.isfinite(m[pos, neg]):
            m[pos, neg] += -2 * lo
        out = Octagon(self.dim, m)
        if np.isinf(hi) or np.isinf(lo):
            return out.forget(k)
        return out.closed()

    # -- tests (assume transfer) ----------------------------------------------------------------

    def _test_incremental(self, raw: "Octagon", touched: tuple[int, ...]) -> "Octagon":
        """Close a test result incrementally when the receiver was already
        strongly closed; fall back to the full closure otherwise."""
        if raw.empty:
            return raw
        if not self.closed_flag:
            return raw.closed()
        m = raw._m().copy()
        _close_touched(m, touched)
        if np.any(np.diag(m) < 0):
            return Octagon.bottom(self.dim)
        np.fill_diagonal(m, 0.0)
        return Octagon(self.dim, m, closed_flag=True)

    def test_upper(self, k: int, c: float) -> "Octagon":
        return self._test_incremental(self.with_upper(k, c), (k,))

    def test_lower(self, k: int, c: float) -> "Octagon":
        return self._test_incremental(self.with_lower(k, c), (k,))

    def test_diff_upper(self, j: int, i: int, c: float) -> "Octagon":
        """Assume ``x_j − x_i ≤ c``."""
        return self._test_incremental(self.with_diff(j, i, c), (i, j))

    def test_eq(self, k: int, c: float) -> "Octagon":
        return self._test_incremental(
            self.with_upper(k, c).with_lower(k, c), (k,)
        )

    def test_var_eq(self, j: int, i: int) -> "Octagon":
        """Assume ``x_j == x_i``."""
        return self._test_incremental(
            self.with_diff(j, i, 0).with_diff(i, j, 0), (i, j)
        )

    # -- projection ---------------------------------------------------------------------------------

    def project(self, k: int) -> Interval:
        """π_k: the interval of variable ``x_k`` (the paper's ``p_x``)."""
        if self.empty:
            return Interval.bottom()
        m = self.closed()
        if m.empty:
            return Interval.bottom()
        mm = m._m()
        hi_raw = mm[2 * k + 1, 2 * k] / 2
        lo_raw = -mm[2 * k, 2 * k + 1] / 2
        hi = None if np.isinf(hi_raw) else int(np.floor(hi_raw))
        lo = None if np.isinf(lo_raw) else int(np.ceil(lo_raw))
        return Interval.range(lo, hi)

    def __str__(self) -> str:
        if self.empty:
            return "⊥oct"
        parts = []
        for k in range(self.dim):
            parts.append(f"x{k}∈{self.project(k)}")
        return "Oct(" + ", ".join(parts) + ")"
