"""Abstract states: finite maps ``L̂ → V̂`` with missing entries = ⊥.

:class:`AbsState` is a thin mutable wrapper over a dict, because the fixpoint
engines update states in place at one control point while joining copies
across edges. ``join_with``/``widen_with`` return whether anything changed,
which drives worklist convergence.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.domains.absloc import AbsLoc
from repro.domains.value import BOT, AbsValue, intern_value

#: sentinel for the single-location fast path in :meth:`AbsState.update_locs`
_NO_MORE = object()


class AbsState:
    """A map from abstract locations to abstract values.

    Stored values are hash-consed (see :mod:`repro.domains.value`), so
    structurally-equal values across states are pointer-equal; the lattice
    operations below exploit that with ``is`` fast paths before falling
    back to structural comparison.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: dict[AbsLoc, AbsValue] | None = None) -> None:
        self._map: dict[AbsLoc, AbsValue] = dict(mapping) if mapping else {}

    # -- access ----------------------------------------------------------------

    def get(self, loc: AbsLoc) -> AbsValue:
        return self._map.get(loc, BOT)

    def set(self, loc: AbsLoc, value: AbsValue) -> None:
        """Strong update."""
        if value.is_bottom():
            self._map.pop(loc, None)
        else:
            self._map[loc] = intern_value(value)

    def weak_set(self, loc: AbsLoc, value: AbsValue) -> None:
        """Weak update: join with the existing value (the paper's ``[l ↪w v]``)."""
        self.set(loc, self.get(loc).join(value))

    def update_locs(self, locs: Iterable[AbsLoc], value: AbsValue) -> None:
        """The paper's store semantics: a strong update when the target is a
        single non-summary location, a weak update otherwise. The common
        single-location case is detected without materializing a list."""
        it = iter(locs)
        first = next(it, _NO_MORE)
        if first is _NO_MORE:
            return
        second = next(it, _NO_MORE)
        if second is _NO_MORE:
            if first.is_summary():
                self.weak_set(first, value)
            else:
                self.set(first, value)
            return
        self.weak_set(first, value)
        self.weak_set(second, value)
        for loc in it:
            self.weak_set(loc, value)

    def locations(self) -> set[AbsLoc]:
        return set(self._map)

    def items(self) -> Iterator[tuple[AbsLoc, AbsValue]]:
        return iter(self._map.items())

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        # An empty state is a real state (everything ⊥), not "no state" —
        # `if state:` must not silently mean `if len(state):`.
        return True

    def __contains__(self, loc: AbsLoc) -> bool:
        return loc in self._map

    def copy(self) -> "AbsState":
        return AbsState(self._map)

    def delta_items(self, base: "AbsState") -> Iterator[tuple[AbsLoc, AbsValue]]:
        """Entries of this state that are not the *same object* as in
        ``base`` — cheap change detection for states derived by
        copy-then-update (used by the flow-insensitive pre-analysis)."""
        base_map = base._map
        for loc, value in self._map.items():
            if base_map.get(loc) is not value:
                yield loc, value

    # -- domain restriction (the paper's f|C and f\C) ------------------------------

    def restrict(self, locs: Iterable[AbsLoc]) -> "AbsState":
        """``s|locs`` — keep only the given locations."""
        keep = set(locs)
        return AbsState({l: v for l, v in self._map.items() if l in keep})

    def remove(self, locs: Iterable[AbsLoc]) -> "AbsState":
        """``s\\locs`` — drop the given locations."""
        drop = set(locs)
        return AbsState({l: v for l, v in self._map.items() if l not in drop})

    # -- lattice ----------------------------------------------------------------------

    def is_bottom(self) -> bool:
        return not self._map

    def leq(self, other: "AbsState") -> bool:
        other_map = other._map
        for loc, value in self._map.items():
            ov = other_map.get(loc, BOT)
            if ov is value:
                continue
            if not value.leq(ov):
                return False
        return True

    def join(self, other: "AbsState") -> "AbsState":
        out = self.copy()
        out.join_with(other)
        return out

    def join_with(self, other: "AbsState") -> bool:
        """In-place join; returns True when this state grew."""
        changed = False
        self_map = self._map
        for loc, value in other._map.items():
            old = self_map.get(loc)
            if old is None:
                self_map[loc] = intern_value(value)
                changed = True
            elif old is value:
                continue  # interning makes equal values pointer-equal
            else:
                new = old.join(value)
                if new is not old and new != old:
                    self_map[loc] = new
                    changed = True
        return changed

    def widen_with(
        self, other: "AbsState", thresholds: tuple[int, ...] | None = None
    ) -> bool:
        """In-place widening (pointwise); returns True when this state grew."""
        changed = False
        self_map = self._map
        for loc, value in other._map.items():
            old = self_map.get(loc)
            if old is None:
                self_map[loc] = intern_value(value)
                changed = True
            elif old is value:
                continue
            else:
                new = old.widen(value, thresholds)
                if new is not old and new != old:
                    self_map[loc] = new
                    changed = True
        return changed

    def join_changed(self, other: "AbsState") -> set[AbsLoc]:
        """In-place join returning exactly the locations that changed —
        lets the sparse engine propagate per location, not per node."""
        changed: set[AbsLoc] = set()
        self_map = self._map
        for loc, value in other._map.items():
            old = self_map.get(loc)
            if old is None:
                self_map[loc] = intern_value(value)
                changed.add(loc)
            elif old is value:
                continue
            else:
                new = old.join(value)
                if new is not old and new != old:
                    self_map[loc] = new
                    changed.add(loc)
        return changed

    def widen_changed(
        self, other: "AbsState", thresholds: tuple[int, ...] | None = None
    ) -> set[AbsLoc]:
        changed: set[AbsLoc] = set()
        self_map = self._map
        for loc, value in other._map.items():
            old = self_map.get(loc)
            if old is None:
                self_map[loc] = intern_value(value)
                changed.add(loc)
            elif old is value:
                continue
            else:
                new = old.widen(value, thresholds)
                if new is not old and new != old:
                    self_map[loc] = new
                    changed.add(loc)
        return changed

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AbsState) and self._map == other._map

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{l} ↦ {v}" for l, v in sorted(self._map.items(), key=lambda kv: kv[0].sort_key())
        )
        return "{" + entries + "}"
