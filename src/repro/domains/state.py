"""Abstract states: finite maps ``L̂ → V̂`` with missing entries = ⊥.

:class:`AbsState` is the state the fixpoint engines update in place at one
control point while joining copies across edges. ``join_with``/``widen_with``
return whether anything changed, which drives worklist convergence.

Two interchangeable storage backends implement the same API (DESIGN.md §13):

* :class:`ArrayAbsState` (default) — struct-of-arrays: locations are
  interned to dense int ids (:func:`repro.domains.absloc.loc_id`) and the
  numeric part of every value lives in two numpy ``int64`` bound vectors
  covering the state's id span. Whole-state join/widen/leq and their
  changed-set variants are vectorized numpy ops with boolean-mask change
  extraction; pointer/array-block values (and intervals whose bounds do not
  fit the int64 encoding) live in a per-state payload side table keyed by
  id and are merged by the scalar reference path.
* :class:`ScalarAbsState` — the original dict-of-``AbsValue`` reference
  implementation, kept selectable for A/B runs and as the oracle for the
  property-based equivalence suite.

Constructing ``AbsState(...)`` dispatches to the active backend, selected
by the ``REPRO_STORE`` environment variable (``array``/``scalar``) or
:func:`set_store_backend`; ``isinstance(state, AbsState)`` holds for both,
so the checkpoint codecs and every engine keep working unchanged.

Bound encoding of the array backend: a *present* row stores finite bounds
``|b| < 2**62`` directly, ``lo = -2**62`` means −∞ and ``hi = +2**62``
means +∞; an *absent* row (⊥) is the inverted sentinel pair ``lo > hi``,
which makes ⊥ the identity of the vectorized min/max join with no masking.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

import numpy as np

from bisect import bisect_left, bisect_right

from repro.domains.absloc import (
    _LOC_IDS,
    AbsLoc,
    loc_id,
    loc_id_count,
    loc_of_id,
    peek_loc_id,
)
from repro.domains.interval import Interval
from repro.domains.value import (
    BOT,
    AbsValue,
    intern_value,
    register_intern_clear_hook,
)

#: sentinel for the single-location fast path in :meth:`AbsState.update_locs`
_NO_MORE = object()

# -- int64 bound encoding ---------------------------------------------------

#: finite bounds must satisfy |b| < _LIM; ±_LIM encode ∓∞ on the lo/hi side
_LIM = 1 << 62
_NEG_INF = -_LIM
_POS_INF = _LIM
#: absent (⊥) rows: lo > hi, and the sentinels are absorbing for min/max
_ABSENT_LO = _LIM
_ABSENT_HI = -_LIM

_EMPTY_I64 = np.empty(0, dtype=np.int64)

#: a single id written this far outside the current span falls back to the
#: payload table instead of growing the arrays (stale-interned locations
#: from earlier programs in the same process would otherwise blow the span)
_SPAN_SLACK = 4096

#: merges over windows at most this wide run a pure-Python int loop — for
#: the small localized states the interprocedural engines carry, numpy's
#: fixed per-op cost exceeds the whole loop (vectorization pays off only
#: on the wide global/pre-analysis states)
_VEC_MIN_WINDOW = 128

_loc_ids_get = _LOC_IDS.get


_MISSING = object()


def _bounds_of_value(value: AbsValue) -> tuple[int, int] | None:
    """The int64 row encoding of ``value``, or None when it must live in
    the payload table (pointers, array blocks, ⊥/out-of-range intervals).
    The encoding is a pure function of the value, so it is cached on the
    instance — values are hash-consed and recur constantly in the engines'
    set() hot path."""
    enc = getattr(value, "_rowenc", _MISSING)
    if enc is not _MISSING:
        return enc
    enc = None
    if not (value.ptsto or value.arrays):
        itv = value.itv
        if not itv.empty:
            lo, hi = itv.lo, itv.hi
            if lo is None:
                elo = _NEG_INF
            elif -_LIM < lo < _LIM:
                elo = lo
            else:
                elo = None
            if hi is None:
                ehi = _POS_INF
            elif -_LIM < hi < _LIM:
                ehi = hi
            else:
                ehi = None
            if elo is not None and ehi is not None:
                enc = (elo, ehi)
    object.__setattr__(value, "_rowenc", enc)  # frozen dataclass, no slots
    return enc


#: (lo, hi) → interned pure-interval AbsValue. Reconstruction returns
#: pointer-equal objects for equal rows, preserving the identity fast paths
#: (``old is value``) and ``delta_items``'s identity-based change detection.
_VALUE_CACHE: dict[tuple[int, int], AbsValue] = {}
_VALUE_CACHE_LIMIT = 1 << 16


def _value_of_bounds(lo: int, hi: int) -> AbsValue:
    key = (lo, hi)
    found = _VALUE_CACHE.get(key)
    if found is not None:
        return found
    if len(_VALUE_CACHE) >= _VALUE_CACHE_LIMIT:
        _VALUE_CACHE.clear()
    value = intern_value(
        AbsValue(
            itv=Interval(
                None if lo == _NEG_INF else lo,
                None if hi == _POS_INF else hi,
            )
        )
    )
    _VALUE_CACHE[key] = value
    return value


#: the cache holds canonical instances — drop it with the intern tables
register_intern_clear_hook(_VALUE_CACHE.clear)


#: id-set cache for the frozensets access-based localization reuses on
#: every call-edge restrict/remove; entries are validated by collection
#: identity and registry size (new ids invalidate)
_LOCSET_CACHE: dict[int, tuple[object, int, set[int]]] = {}
_LOCSET_CACHE_LIMIT = 256


def _ids_of_locs(locs: Iterable[AbsLoc]) -> set[int]:
    """Registered ids of a location collection (unregistered locations are
    in no state, so dropping them is exact)."""
    if isinstance(locs, (set, frozenset)):
        key = id(locs)
        hit = _LOCSET_CACHE.get(key)
        count = loc_id_count()
        if hit is not None and hit[0] is locs and hit[1] == count:
            return hit[2]
        ids = {i for i in map(peek_loc_id, locs) if i is not None}
        if len(_LOCSET_CACHE) >= _LOCSET_CACHE_LIMIT:
            _LOCSET_CACHE.clear()
        _LOCSET_CACHE[key] = (locs, count, ids)
        return ids
    return {i for i in map(peek_loc_id, locs) if i is not None}


class AbsState:
    """A map from abstract locations to abstract values.

    Stored values are hash-consed (see :mod:`repro.domains.value`), so
    structurally-equal values across states are pointer-equal; the lattice
    operations exploit that with ``is`` fast paths before falling back to
    structural comparison.

    This base class dispatches construction to the active storage backend
    and carries the backend-agnostic derived operations; the storage, the
    hot lattice ops, and restriction live on the backends.
    """

    __slots__ = ()

    def __new__(cls, *args, **kwargs):
        if cls is AbsState:
            cls = _ACTIVE
        return object.__new__(cls)

    # -- derived operations (backend-agnostic) ------------------------------

    def weak_set(self, loc: AbsLoc, value: AbsValue) -> None:
        """Weak update: join with the existing value (the paper's ``[l ↪w v]``)."""
        self.set(loc, self.get(loc).join(value))

    def update_locs(self, locs: Iterable[AbsLoc], value: AbsValue) -> None:
        """The paper's store semantics: a strong update when the target is a
        single non-summary location, a weak update otherwise. The common
        single-location case is detected without materializing a list."""
        it = iter(locs)
        first = next(it, _NO_MORE)
        if first is _NO_MORE:
            return
        second = next(it, _NO_MORE)
        if second is _NO_MORE:
            if first.is_summary():
                self.weak_set(first, value)
            else:
                self.set(first, value)
            return
        self.weak_set(first, value)
        self.weak_set(second, value)
        for loc in it:
            self.weak_set(loc, value)

    def __bool__(self) -> bool:
        # An empty state is a real state (everything ⊥), not "no state" —
        # `if state:` must not silently mean `if len(state):`.
        return True

    def join(self, other: "AbsState") -> "AbsState":
        out = self.copy()
        out.join_with(other)
        return out

    def join_entries_from(self, other: "AbsState", locs: Iterable[AbsLoc]) -> bool:
        """Join ``other``'s values for the given locations into this state;
        True when this state grew — the sparse engines' per-dependency-edge
        push primitive (see ``engine.IntervalCells.push``)."""
        grew = False
        for loc in locs:
            value = other.get(loc)
            if value.is_bottom():
                continue
            old = self.get(loc)
            if old is value:
                continue  # interning: pointer-equal means nothing new
            new = old.join(value)
            if new is not old and new != old:
                self.set(loc, new)
                grew = True
        return grew

    # -- generic (cross-backend) reference paths ----------------------------

    def _leq_generic(self, other: "AbsState") -> bool:
        for loc, value in self.items():
            ov = other.get(loc)
            if ov is not value and not value.leq(ov):
                return False
        return True

    def _merge_generic(
        self,
        other: "AbsState",
        widen: bool,
        thresholds: tuple[int, ...] | None,
        collect: bool,
    ):
        """Scalar reference merge working across backends; returns the
        changed-location set (``collect``) or a changed bool."""
        changed_locs: set[AbsLoc] = set()
        changed = False
        for loc, value in other.items():
            old = self.get(loc)
            if old is value:
                continue
            if old.is_bottom():
                self.set(loc, value)
                changed = True
                if collect:
                    changed_locs.add(loc)
                continue
            new = old.widen(value, thresholds) if widen else old.join(value)
            if new is not old and new != old:
                self.set(loc, new)
                changed = True
                if collect:
                    changed_locs.add(loc)
        return changed_locs if collect else changed

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, AbsState):
            return NotImplemented
        if len(self) != len(other):
            return False
        for loc, value in self.items():
            if other.get(loc) != value:
                return False
        return True

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{l} ↦ {v}"
            for l, v in sorted(self.items(), key=lambda kv: kv[0].sort_key())
        )
        return "{" + entries + "}"


class ScalarAbsState(AbsState):
    """The reference backend: a thin mutable wrapper over a dict."""

    __slots__ = ("_map",)

    def __init__(self, mapping: dict[AbsLoc, AbsValue] | None = None) -> None:
        self._map: dict[AbsLoc, AbsValue] = dict(mapping) if mapping else {}

    @classmethod
    def _adopt(cls, mapping: dict[AbsLoc, AbsValue]) -> "ScalarAbsState":
        """Wrap a freshly-built dict without the constructor's defensive
        copy (copy/restrict/remove build their mapping themselves)."""
        out = object.__new__(cls)
        out._map = mapping
        return out

    # -- access --------------------------------------------------------------

    def get(self, loc: AbsLoc) -> AbsValue:
        return self._map.get(loc, BOT)

    def set(self, loc: AbsLoc, value: AbsValue) -> None:
        """Strong update."""
        if value.is_bottom():
            self._map.pop(loc, None)
        else:
            self._map[loc] = intern_value(value)

    def locations(self) -> set[AbsLoc]:
        return set(self._map)

    def items(self) -> Iterator[tuple[AbsLoc, AbsValue]]:
        return iter(self._map.items())

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, loc: AbsLoc) -> bool:
        return loc in self._map

    def copy(self) -> "ScalarAbsState":
        return ScalarAbsState._adopt(dict(self._map))

    def delta_items(self, base: "AbsState") -> Iterator[tuple[AbsLoc, AbsValue]]:
        """Entries of this state that are not the *same object* as in
        ``base`` — cheap change detection for states derived by
        copy-then-update (used by the flow-insensitive pre-analysis)."""
        if type(base) is not ScalarAbsState:
            for loc, value in self._map.items():
                if base.get(loc) is not value:
                    yield loc, value
            return
        base_map = base._map
        for loc, value in self._map.items():
            if base_map.get(loc) is not value:
                yield loc, value

    # -- domain restriction (the paper's f|C and f\C) -------------------------

    def restrict(self, locs: Iterable[AbsLoc]) -> "ScalarAbsState":
        """``s|locs`` — keep only the given locations."""
        keep = set(locs)
        return ScalarAbsState._adopt(
            {l: v for l, v in self._map.items() if l in keep}
        )

    def remove(self, locs: Iterable[AbsLoc]) -> "ScalarAbsState":
        """``s\\locs`` — drop the given locations."""
        drop = set(locs)
        return ScalarAbsState._adopt(
            {l: v for l, v in self._map.items() if l not in drop}
        )

    # -- lattice --------------------------------------------------------------

    def is_bottom(self) -> bool:
        return not self._map

    def leq(self, other: "AbsState") -> bool:
        if self is other:
            return True
        if type(other) is not ScalarAbsState:
            return self._leq_generic(other)
        other_map = other._map
        for loc, value in self._map.items():
            ov = other_map.get(loc, BOT)
            if ov is value:
                continue
            if not value.leq(ov):
                return False
        return True

    def join_with(self, other: "AbsState") -> bool:
        """In-place join; returns True when this state grew."""
        if type(other) is not ScalarAbsState:
            return self._merge_generic(other, False, None, False)
        changed = False
        self_map = self._map
        for loc, value in other._map.items():
            old = self_map.get(loc)
            if old is None:
                self_map[loc] = intern_value(value)
                changed = True
            elif old is value:
                continue  # interning makes equal values pointer-equal
            else:
                new = old.join(value)
                if new is not old and new != old:
                    self_map[loc] = new
                    changed = True
        return changed

    def widen_with(
        self, other: "AbsState", thresholds: tuple[int, ...] | None = None
    ) -> bool:
        """In-place widening (pointwise); returns True when this state grew."""
        if type(other) is not ScalarAbsState:
            return self._merge_generic(other, True, thresholds, False)
        changed = False
        self_map = self._map
        for loc, value in other._map.items():
            old = self_map.get(loc)
            if old is None:
                self_map[loc] = intern_value(value)
                changed = True
            elif old is value:
                continue
            else:
                new = old.widen(value, thresholds)
                if new is not old and new != old:
                    self_map[loc] = new
                    changed = True
        return changed

    def join_changed(self, other: "AbsState") -> set[AbsLoc]:
        """In-place join returning exactly the locations that changed —
        lets the sparse engine propagate per location, not per node."""
        if type(other) is not ScalarAbsState:
            return self._merge_generic(other, False, None, True)
        changed: set[AbsLoc] = set()
        self_map = self._map
        for loc, value in other._map.items():
            old = self_map.get(loc)
            if old is None:
                self_map[loc] = intern_value(value)
                changed.add(loc)
            elif old is value:
                continue
            else:
                new = old.join(value)
                if new is not old and new != old:
                    self_map[loc] = new
                    changed.add(loc)
        return changed

    def widen_changed(
        self, other: "AbsState", thresholds: tuple[int, ...] | None = None
    ) -> set[AbsLoc]:
        if type(other) is not ScalarAbsState:
            return self._merge_generic(other, True, thresholds, True)
        changed: set[AbsLoc] = set()
        self_map = self._map
        for loc, value in other._map.items():
            old = self_map.get(loc)
            if old is None:
                self_map[loc] = intern_value(value)
                changed.add(loc)
            elif old is value:
                continue
            else:
                new = old.widen(value, thresholds)
                if new is not old and new != old:
                    self_map[loc] = new
                    changed.add(loc)
        return changed

    def __eq__(self, other: object) -> bool:
        if type(other) is ScalarAbsState:
            return self._map == other._map
        return AbsState.__eq__(self, other)


class ArrayAbsState(AbsState):
    """The struct-of-arrays backend (see the module docstring).

    ``_lo``/``_hi`` cover the dense-id window ``[_base, _base + len)``;
    ``_payload`` holds values the row encoding cannot represent, keyed by
    global id (a payload id always has an absent row); ``_n_arr`` counts
    present rows so ``len`` stays O(1) for the engine's entry accounting.
    """

    __slots__ = ("_base", "_lo", "_hi", "_payload", "_n_arr")

    def __init__(self, mapping: dict[AbsLoc, AbsValue] | None = None) -> None:
        self._base = 0
        self._lo = _EMPTY_I64
        self._hi = _EMPTY_I64
        self._payload: dict[int, AbsValue] = {}
        self._n_arr = 0
        if mapping:
            for loc, value in mapping.items():
                self.set(loc, value)

    # -- span management ------------------------------------------------------

    def _grow_span(self, lo_id: int, hi_id: int) -> None:
        """Grow the bound arrays (amortized, both directions) to cover the
        id range ``[lo_id, hi_id]``."""
        cur_lo = self._lo
        n = len(cur_lo)
        if n == 0:
            size = max(8, hi_id - lo_id + 1)
            self._base = lo_id
            self._lo = np.full(size, _ABSENT_LO, dtype=np.int64)
            self._hi = np.full(size, _ABSENT_HI, dtype=np.int64)
            return
        base = self._base
        if lo_id >= base and hi_id < base + n:
            return
        new_base = min(base, lo_id)
        new_end = max(base + n, hi_id + 1)
        size = max(new_end - new_base, 2 * n)
        if lo_id < base:
            # growing downward: spend the doubling slack below
            new_base = min(new_base, new_end - size)
        lo_arr = np.full(size, _ABSENT_LO, dtype=np.int64)
        hi_arr = np.full(size, _ABSENT_HI, dtype=np.int64)
        off = base - new_base
        lo_arr[off : off + n] = cur_lo
        hi_arr[off : off + n] = self._hi
        self._base = new_base
        self._lo = lo_arr
        self._hi = hi_arr

    def _row_fits(self, i: int) -> bool:
        """Whether id ``i`` may live in the arrays: inside the span, a
        moderate extension of it, or the very first row. A far outlier
        (a location interned by an unrelated earlier run) goes to the
        payload table instead, capping the span at the state's natural
        id cluster."""
        n = len(self._lo)
        if n == 0:
            return True
        need = max(self._base + n, i + 1) - min(self._base, i)
        return need <= max(4 * n, n + _SPAN_SLACK)

    # -- access ---------------------------------------------------------------

    def get(self, loc: AbsLoc) -> AbsValue:
        i = _loc_ids_get(loc)
        if i is None:
            return BOT
        if self._payload:
            found = self._payload.get(i)
            if found is not None:
                return found
        j = i - self._base
        lo_arr = self._lo
        if 0 <= j < lo_arr.shape[0]:
            lo = lo_arr.item(j)  # .item(): straight to a Python int
            hi = self._hi.item(j)
            if lo <= hi:
                return _value_of_bounds(lo, hi)
        return BOT

    def _get_by_id(self, i: int) -> AbsValue:
        if self._payload:
            found = self._payload.get(i)
            if found is not None:
                return found
        j = i - self._base
        lo_arr = self._lo
        if 0 <= j < lo_arr.shape[0]:
            lo = lo_arr.item(j)
            hi = self._hi.item(j)
            if lo <= hi:
                return _value_of_bounds(lo, hi)
        return BOT

    def _clear_row(self, i: int) -> None:
        j = i - self._base
        if 0 <= j < len(self._lo) and self._lo[j] <= self._hi[j]:
            self._lo[j] = _ABSENT_LO
            self._hi[j] = _ABSENT_HI
            self._n_arr -= 1

    def _set_by_id(self, i: int, value: AbsValue) -> None:
        """Store a non-bottom value under id ``i``, classifying it into a
        bound row or the payload table."""
        bounds = _bounds_of_value(value)
        if bounds is None or not self._row_fits(i):
            self._clear_row(i)
            self._payload[i] = intern_value(value)
            return
        self._payload.pop(i, None)
        self._grow_span(i, i)
        j = i - self._base
        if self._lo[j] > self._hi[j]:
            self._n_arr += 1
        self._lo[j] = bounds[0]
        self._hi[j] = bounds[1]

    def set(self, loc: AbsLoc, value: AbsValue) -> None:
        """Strong update."""
        if value is BOT or value.is_bottom():
            i = peek_loc_id(loc)
            if i is not None:
                if self._payload.pop(i, None) is None:
                    self._clear_row(i)
            return
        i = loc_id(loc)
        # fast path: an in-span bound row (the engines' dominant set shape)
        bounds = _bounds_of_value(value)
        if bounds is not None:
            j = i - self._base
            lo_arr = self._lo
            if 0 <= j < lo_arr.shape[0]:
                if self._payload:
                    self._payload.pop(i, None)
                if lo_arr.item(j) > self._hi.item(j):
                    self._n_arr += 1
                lo_arr[j] = bounds[0]
                self._hi[j] = bounds[1]
                return
        self._set_by_id(i, value)

    def _present_row_ids(self) -> np.ndarray:
        return self._base + np.nonzero(self._lo <= self._hi)[0]

    def locations(self) -> set[AbsLoc]:
        out = {loc_of_id(i) for i in self._present_row_ids().tolist()}
        out.update(loc_of_id(i) for i in self._payload)
        return out

    def items(self) -> Iterator[tuple[AbsLoc, AbsValue]]:
        ids = np.nonzero(self._lo <= self._hi)[0]
        base = self._base
        if self._payload:
            lo, hi = self._lo, self._hi
            merged = sorted(set(self._payload).union((base + ids).tolist()))
            for i in merged:
                value = self._payload.get(i)
                if value is None:
                    j = i - base
                    value = _value_of_bounds(int(lo[j]), int(hi[j]))
                yield loc_of_id(i), value
        else:
            los = self._lo[ids].tolist()
            his = self._hi[ids].tolist()
            for k, j in enumerate(ids.tolist()):
                yield loc_of_id(base + j), _value_of_bounds(los[k], his[k])

    def __len__(self) -> int:
        return self._n_arr + len(self._payload)

    def __contains__(self, loc: AbsLoc) -> bool:
        i = peek_loc_id(loc)
        if i is None:
            return False
        if i in self._payload:
            return True
        j = i - self._base
        return 0 <= j < len(self._lo) and bool(self._lo[j] <= self._hi[j])

    def copy(self) -> "ArrayAbsState":
        out = object.__new__(ArrayAbsState)
        out._base = self._base
        out._lo = self._lo.copy()
        out._hi = self._hi.copy()
        out._payload = dict(self._payload)
        out._n_arr = self._n_arr
        return out

    def _aligned_window(self, other: "ArrayAbsState") -> tuple[np.ndarray, np.ndarray]:
        """``other``'s bound rows re-based onto this state's span; ids
        outside ``other``'s arrays read as absent. When the two states
        share a layout — the overwhelming copy-then-mutate case — returns
        direct (read-only by convention) views with no allocation."""
        n = len(self._lo)
        if other._base == self._base and len(other._lo) == n:
            return other._lo, other._hi
        wlo = np.full(n, _ABSENT_LO, dtype=np.int64)
        whi = np.full(n, _ABSENT_HI, dtype=np.int64)
        s0 = max(self._base, other._base)
        s1 = min(self._base + n, other._base + len(other._lo))
        if s0 < s1:
            a, b = s0 - self._base, s1 - self._base
            c, d = s0 - other._base, s1 - other._base
            wlo[a:b] = other._lo[c:d]
            whi[a:b] = other._hi[c:d]
        return wlo, whi

    def delta_items(self, base: "AbsState") -> Iterator[tuple[AbsLoc, AbsValue]]:
        """Entries of this state whose value differs from ``base``'s — the
        pre-analysis's change detection. (The scalar backend detects by
        object identity; bound rows compare by encoded bounds, which is the
        same relation since equal rows reconstruct pointer-equal values.)"""
        if type(base) is not ArrayAbsState:
            for loc, value in self.items():
                if base.get(loc) is not value:
                    yield loc, value
            return
        base_payload = base._payload
        for i, value in self._payload.items():
            if base_payload.get(i) is not value:
                yield loc_of_id(i), value
        if not self._n_arr:
            return
        wlo, whi = self._aligned_window(base)
        present = self._lo <= self._hi
        # a base payload id has an absent base row, so rows shadowed by a
        # base payload value always differ here — exactly right, payload
        # values are never structurally equal to a pure bound row
        diff = present & ((self._lo != wlo) | (self._hi != whi))
        for j in np.nonzero(diff)[0].tolist():
            yield (
                loc_of_id(self._base + j),
                _value_of_bounds(self._lo.item(j), self._hi.item(j)),
            )

    # -- domain restriction (the paper's f|C and f\C) -------------------------

    def restrict(self, locs: Iterable[AbsLoc]) -> "ArrayAbsState":
        """``s|locs`` — keep only the given locations."""
        ids = _ids_of_locs(locs)
        out = object.__new__(ArrayAbsState)
        out._base = self._base
        n = len(self._lo)
        mask = np.zeros(n, dtype=bool)
        base = self._base
        for i in ids:
            j = i - base
            if 0 <= j < n:
                mask[j] = True
        out._lo = np.where(mask, self._lo, _ABSENT_LO)
        out._hi = np.where(mask, self._hi, _ABSENT_HI)
        out._n_arr = int(np.count_nonzero(out._lo <= out._hi))
        out._payload = {i: v for i, v in self._payload.items() if i in ids}
        return out

    def remove(self, locs: Iterable[AbsLoc]) -> "ArrayAbsState":
        """``s\\locs`` — drop the given locations."""
        ids = _ids_of_locs(locs)
        out = object.__new__(ArrayAbsState)
        out._base = self._base
        n = len(self._lo)
        mask = np.ones(n, dtype=bool)
        base = self._base
        for i in ids:
            j = i - base
            if 0 <= j < n:
                mask[j] = False
        out._lo = np.where(mask, self._lo, _ABSENT_LO)
        out._hi = np.where(mask, self._hi, _ABSENT_HI)
        out._n_arr = int(np.count_nonzero(out._lo <= out._hi))
        out._payload = {i: v for i, v in self._payload.items() if i not in ids}
        return out

    # -- lattice --------------------------------------------------------------

    def is_bottom(self) -> bool:
        return self._n_arr == 0 and not self._payload

    def leq(self, other: "AbsState") -> bool:
        if self is other:
            return True
        if type(other) is not ArrayAbsState:
            return self._leq_generic(other)
        for i, value in self._payload.items():
            ov = other._get_by_id(i)
            if ov is not value and not value.leq(ov):
                return False
        if self._n_arr == 0:
            return True
        n = len(self._lo)
        if n <= _VEC_MIN_WINDOW:
            # int loop with early exit: on small states this beats the
            # vector compare, and failing comparisons stop at the witness
            slo = self._lo.tolist()
            shi = self._hi.tolist()
            base = self._base
            ob = other._base
            olo_arr, ohi_arr = other._lo, other._hi
            on = olo_arr.shape[0]
            other_payload = other._payload
            for j in range(n):
                sl = slo[j]
                sh = shi[j]
                if sl > sh:
                    continue
                oj = base + j - ob
                if 0 <= oj < on:
                    if sl >= olo_arr.item(oj) and sh <= ohi_arr.item(oj):
                        continue
                ov = other_payload.get(base + j)
                if ov is None or not _value_of_bounds(sl, sh).leq(ov):
                    return False
            return True
        wlo, whi = self._aligned_window(other)
        present = self._lo <= self._hi
        bad = present & ~((self._lo >= wlo) & (self._hi <= whi))
        if not bad.any():
            return True
        # a row failing the vector containment may still be covered by a
        # payload value on the other side (absent row there)
        other_payload = other._payload
        if not other_payload:
            return False
        for j in np.nonzero(bad)[0].tolist():
            ov = other_payload.get(self._base + j)
            if ov is None:
                return False
            row = _value_of_bounds(self._lo.item(j), self._hi.item(j))
            if not row.leq(ov):
                return False
        return True

    def _merge_array(
        self,
        other: "ArrayAbsState",
        widen: bool,
        thresholds: tuple[int, ...] | None,
        collect: bool,
    ):
        """Vectorized in-place join/widen with another array state; returns
        the changed-location set (``collect``) or a changed bool. The bulk
        of the state merges as numpy min/max (join) or masked threshold
        selection (widen); payload entries on either side take the scalar
        reference path first, and their ids are masked out of the bulk."""
        thr = None
        if widen and thresholds:
            if all(-_LIM < t < _LIM for t in thresholds):
                thr = np.asarray(thresholds, dtype=np.int64)
            else:
                # absurd thresholds the encoding cannot express: reference path
                return self._merge_generic(other, widen, thresholds, collect)
        changed_locs: set[AbsLoc] = set()
        changed = False
        # 1. other's payload values (scalar; may reclassify self's rows)
        for i, value in other._payload.items():
            old = self._get_by_id(i)
            if old is value:
                continue
            if old.is_bottom():
                new = value
            else:
                new = old.widen(value, thresholds) if widen else old.join(value)
            if new is not old and new != old:
                self._set_by_id(i, new)
                changed = True
                if collect:
                    changed_locs.add(loc_of_id(i))
        # 2. other's bound rows hitting self payload values (scalar)
        exclude: list[int] = []
        if self._payload:
            ob = other._base
            olo_full, ohi_full = other._lo, other._hi
            on = len(olo_full)
            for i, old in list(self._payload.items()):
                j = i - ob
                if 0 <= j < on and olo_full[j] <= ohi_full[j]:
                    exclude.append(i)
                    value = _value_of_bounds(int(olo_full[j]), int(ohi_full[j]))
                    new = (
                        old.widen(value, thresholds) if widen else old.join(value)
                    )
                    if new is not old and new != old:
                        self._set_by_id(i, new)
                        changed = True
                        if collect:
                            changed_locs.add(loc_of_id(i))
        # 3. bulk merge over other's present-row window
        o_present = np.nonzero(other._lo <= other._hi)[0]
        if len(o_present) == 0:
            return changed_locs if collect else changed
        lo_id = other._base + int(o_present[0])
        hi_id = other._base + int(o_present[-1])
        self._grow_span(lo_id, hi_id)
        if hi_id - lo_id < _VEC_MIN_WINDOW:
            # 3a. small window: pure-int loop over other's present rows —
            # identical math to the vector path, without numpy's per-op
            # fixed cost (which dominates on the engines' localized states)
            skip = set(exclude)
            ids = (other._base + o_present).tolist()
            olos = other._lo[o_present].tolist()
            ohis = other._hi[o_present].tolist()
            s_lo, s_hi = self._lo, self._hi
            sb = self._base
            for k in range(len(ids)):
                i = ids[k]
                if i in skip:
                    continue
                ol = olos[k]
                oh = ohis[k]
                j = i - sb
                sl = s_lo.item(j)
                sh = s_hi.item(j)
                if not widen:
                    nl = sl if sl <= ol else ol
                    nh = sh if sh >= oh else oh
                elif sl > sh:
                    nl, nh = ol, oh  # ⊥ ∇ v = v
                else:
                    if sl == _NEG_INF or ol >= sl:
                        nl = sl
                    elif thresholds:
                        down = bisect_right(thresholds, ol) - 1
                        nl = thresholds[down] if down >= 0 else _NEG_INF
                    else:
                        nl = _NEG_INF
                    if sh == _POS_INF or oh <= sh:
                        nh = sh
                    elif thresholds:
                        up = bisect_left(thresholds, oh)
                        nh = (
                            thresholds[up]
                            if up < len(thresholds)
                            else _POS_INF
                        )
                    else:
                        nh = _POS_INF
                if nl != sl or nh != sh:
                    if sl > sh:
                        self._n_arr += 1
                    s_lo[j] = nl
                    s_hi[j] = nh
                    changed = True
                    if collect:
                        changed_locs.add(loc_of_id(i))
            return changed_locs if collect else changed
        a0 = lo_id - self._base
        a1 = hi_id + 1 - self._base
        slo = self._lo[a0:a1]
        shi = self._hi[a0:a1]
        c0 = lo_id - other._base
        c1 = hi_id + 1 - other._base
        olo = other._lo[c0:c1]
        ohi = other._hi[c0:c1]
        if exclude:
            olo = olo.copy()
            ohi = ohi.copy()
            for i in exclude:
                if lo_id <= i <= hi_id:
                    olo[i - lo_id] = _ABSENT_LO
                    ohi[i - lo_id] = _ABSENT_HI
        was_present = int(np.count_nonzero(slo <= shi))
        if not widen:
            # absent rows are absorbing sentinels: ⊥ ⊔ v = v for free
            nlo = np.minimum(slo, olo)
            nhi = np.maximum(shi, ohi)
        else:
            keep_lo = (slo == _NEG_INF) | (olo >= slo)
            keep_hi = (shi == _POS_INF) | (ohi <= shi)
            if thr is None:
                nlo = np.where(keep_lo, slo, _NEG_INF)
                nhi = np.where(keep_hi, shi, _POS_INF)
            else:
                # threshold widening: unstable bounds jump to the nearest
                # enclosing threshold (searchsorted = the scalar
                # _threshold_below/_threshold_above on the whole vector)
                down = np.searchsorted(thr, olo, side="right") - 1
                tlo = np.where(down >= 0, thr[np.maximum(down, 0)], _NEG_INF)
                up = np.searchsorted(thr, ohi, side="left")
                thi = np.where(
                    up < len(thr), thr[np.minimum(up, len(thr) - 1)], _POS_INF
                )
                nlo = np.where(keep_lo, slo, tlo)
                nhi = np.where(keep_hi, shi, thi)
            # self-⊥ rows take other's row verbatim (⊥ ∇ v = v)
            sp = slo <= shi
            nlo = np.where(sp, nlo, olo)
            nhi = np.where(sp, nhi, ohi)
        ch = (nlo != slo) | (nhi != shi)
        if ch.any():
            slo[:] = nlo
            shi[:] = nhi
            self._n_arr += int(np.count_nonzero(nlo <= nhi)) - was_present
            changed = True
            if collect:
                for j in np.nonzero(ch)[0].tolist():
                    changed_locs.add(loc_of_id(lo_id + j))
        return changed_locs if collect else changed

    def join_with(self, other: "AbsState") -> bool:
        """In-place join; returns True when this state grew."""
        if self is other:
            return False
        if type(other) is ArrayAbsState:
            return self._merge_array(other, False, None, False)
        return self._merge_generic(other, False, None, False)

    def widen_with(
        self, other: "AbsState", thresholds: tuple[int, ...] | None = None
    ) -> bool:
        """In-place widening (pointwise); returns True when this state grew."""
        if self is other:
            return False
        if type(other) is ArrayAbsState:
            return self._merge_array(other, True, thresholds, False)
        return self._merge_generic(other, True, thresholds, False)

    def join_changed(self, other: "AbsState") -> set[AbsLoc]:
        """In-place join returning exactly the locations that changed —
        lets the sparse engine propagate per location, not per node."""
        if self is other:
            return set()
        if type(other) is ArrayAbsState:
            return self._merge_array(other, False, None, True)
        return self._merge_generic(other, False, None, True)

    def widen_changed(
        self, other: "AbsState", thresholds: tuple[int, ...] | None = None
    ) -> set[AbsLoc]:
        if self is other:
            return set()
        if type(other) is ArrayAbsState:
            return self._merge_array(other, True, thresholds, True)
        return self._merge_generic(other, True, thresholds, True)

    def join_entries_from(self, other: "AbsState", locs: Iterable[AbsLoc]) -> bool:
        """Per-location push without AbsValue materialization when both
        sides hold plain bound rows (the sparse engines' hottest loop)."""
        if type(other) is not ArrayAbsState:
            return AbsState.join_entries_from(self, other, locs)
        grew = False
        other_payload = other._payload
        ob = other._base
        olo, ohi = other._lo, other._hi
        on = olo.shape[0]
        for loc in locs:
            i = _loc_ids_get(loc)
            if i is None:
                continue
            value = other_payload.get(i)
            if value is None:
                j = i - ob
                if not (0 <= j < on):
                    continue
                vlo = olo.item(j)
                vhi = ohi.item(j)
                if vlo > vhi:
                    continue  # ⊥ on the source side: nothing to push
                if i in self._payload:
                    old = self._payload[i]
                    new = old.join(_value_of_bounds(vlo, vhi))
                    if new is not old and new != old:
                        self._set_by_id(i, new)
                        grew = True
                    continue
                sj = i - self._base
                if 0 <= sj < len(self._lo):
                    slo_ = self._lo.item(sj)
                    shi_ = self._hi.item(sj)
                else:
                    slo_, shi_ = _ABSENT_LO, _ABSENT_HI
                nlo = min(slo_, vlo)
                nhi = max(shi_, vhi)
                if nlo != slo_ or nhi != shi_:
                    if self._row_fits(i):
                        self._grow_span(i, i)
                        sj = i - self._base
                        if self._lo[sj] > self._hi[sj]:
                            self._n_arr += 1
                        self._lo[sj] = nlo
                        self._hi[sj] = nhi
                    else:
                        self._payload[i] = _value_of_bounds(nlo, nhi)
                    grew = True
            else:
                old = self._get_by_id(i)
                if old is value:
                    continue
                new = old.join(value)
                if new is not old and new != old:
                    self._set_by_id(i, new)
                    grew = True
        return grew

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is ArrayAbsState:
            if self._n_arr != other._n_arr or self._payload != other._payload:
                return False
            if self._n_arr == 0:
                return True
            # equal row counts + equality over self's span ⇒ no present row
            # of other lies outside it
            wlo, whi = self._aligned_window(other)
            return bool(
                np.array_equal(self._lo, wlo) and np.array_equal(self._hi, whi)
            )
        return AbsState.__eq__(self, other)


# -- backend selection -------------------------------------------------------

_BACKENDS: dict[str, type] = {
    "array": ArrayAbsState,
    "scalar": ScalarAbsState,
    "dict": ScalarAbsState,
}

_ACTIVE: type = _BACKENDS.get(
    os.environ.get("REPRO_STORE", "array").strip().lower(), ArrayAbsState
)


def store_backend() -> str:
    """The active backend name (``"array"`` or ``"scalar"``)."""
    return "array" if _ACTIVE is ArrayAbsState else "scalar"


def set_store_backend(name: str) -> str:
    """Select the storage backend newly-constructed ``AbsState`` objects
    use (existing states keep their class; the backends interoperate).
    Returns the previous backend name — the A/B knob for benchmarks and
    the differential suites."""
    global _ACTIVE
    previous = store_backend()
    try:
        _ACTIVE = _BACKENDS[name.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown store backend {name!r}; use 'array' or 'scalar'"
        ) from None
    return previous
