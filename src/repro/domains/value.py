"""Abstract values (the paper's ``V̂``).

An abstract value is the product of:

* an :class:`Interval` abstracting the numeric part,
* a points-to set (``P̂ = 2^L̂``) of plain locations,
* a set of *array blocks*: the paper's array abstraction "a set of tuples of
  base address, offset, and size". Blocks with equal bases are merged by
  joining their offset/size intervals, so the set stays small.

The paper's value domain is ``V̂ = Ẑ × P̂`` with arrays folded into the
pointer part; we keep array blocks separate so the buffer-overrun checker
can reason about offsets and sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.domains.absloc import AbsLoc
from repro.domains.interval import BOT as ITV_BOT
from repro.domains.interval import TOP as ITV_TOP
from repro.domains.interval import Interval


@dataclass(frozen=True)
class ArrayBlock:
    """One array block: base summary location, offset and size intervals."""

    base: AbsLoc
    offset: Interval = field(default_factory=lambda: Interval.const(0))
    size: Interval = field(default_factory=Interval.top)

    def shift(self, delta: Interval) -> "ArrayBlock":
        """Pointer arithmetic: move the offset by ``delta``."""
        return ArrayBlock(self.base, self.offset.add(delta), self.size)

    def join(self, other: "ArrayBlock") -> "ArrayBlock":
        assert self.base == other.base
        return ArrayBlock(
            self.base, self.offset.join(other.offset), self.size.join(other.size)
        )

    def widen(self, other: "ArrayBlock") -> "ArrayBlock":
        assert self.base == other.base
        return ArrayBlock(
            self.base, self.offset.widen(other.offset), self.size.widen(other.size)
        )

    def leq(self, other: "ArrayBlock") -> bool:
        return (
            self.base == other.base
            and self.offset.leq(other.offset)
            and self.size.leq(other.size)
        )

    def __str__(self) -> str:
        return f"⟨{self.base}, off={self.offset}, sz={self.size}⟩"


def _merge_blocks(
    a: tuple[ArrayBlock, ...],
    b: tuple[ArrayBlock, ...],
    combine,
) -> tuple[ArrayBlock, ...]:
    by_base: dict[AbsLoc, ArrayBlock] = {blk.base: blk for blk in a}
    for blk in b:
        if blk.base in by_base:
            by_base[blk.base] = combine(by_base[blk.base], blk)
        else:
            by_base[blk.base] = blk
    return tuple(sorted(by_base.values(), key=lambda x: x.base.sort_key()))


@dataclass(frozen=True)
class AbsValue:
    """Product value: interval × points-to set × array blocks."""

    itv: Interval = ITV_BOT
    ptsto: frozenset[AbsLoc] = frozenset()
    arrays: tuple[ArrayBlock, ...] = ()

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def bottom() -> "AbsValue":
        return BOT

    @staticmethod
    def top() -> "AbsValue":
        """Unknown scalar: any number, but no valid pointer — matching the
        paper's treatment of unknown external values."""
        return TOP_NUM

    @staticmethod
    def of_interval(itv: Interval) -> "AbsValue":
        return AbsValue(itv=itv)

    @staticmethod
    def of_const(n: int) -> "AbsValue":
        return AbsValue(itv=Interval.const(n))

    @staticmethod
    def of_locs(locs: frozenset[AbsLoc] | set[AbsLoc]) -> "AbsValue":
        return AbsValue(ptsto=frozenset(locs))

    @staticmethod
    def of_block(block: ArrayBlock) -> "AbsValue":
        return AbsValue(arrays=(block,))

    # -- lattice ------------------------------------------------------------------

    def is_bottom(self) -> bool:
        return self.itv.is_bottom() and not self.ptsto and not self.arrays

    def leq(self, other: "AbsValue") -> bool:
        if not self.itv.leq(other.itv):
            return False
        if not self.ptsto <= other.ptsto:
            return False
        others = {blk.base: blk for blk in other.arrays}
        for blk in self.arrays:
            o = others.get(blk.base)
            if o is None or not blk.leq(o):
                return False
        return True

    def join(self, other: "AbsValue") -> "AbsValue":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        return AbsValue(
            itv=self.itv.join(other.itv),
            ptsto=self.ptsto | other.ptsto,
            arrays=_merge_blocks(
                self.arrays, other.arrays, lambda x, y: x.join(y)
            ),
        )

    def widen(
        self, other: "AbsValue", thresholds: tuple[int, ...] | None = None
    ) -> "AbsValue":
        return AbsValue(
            itv=self.itv.widen(other.itv, thresholds),
            ptsto=self.ptsto | other.ptsto,
            arrays=_merge_blocks(
                self.arrays, other.arrays, lambda x, y: x.widen(y)
            ),
        )

    def narrow(self, other: "AbsValue") -> "AbsValue":
        return AbsValue(
            itv=self.itv.narrow(other.itv),
            ptsto=self.ptsto & other.ptsto
            if self.ptsto and other.ptsto
            else other.ptsto | self.ptsto,
            arrays=self.arrays if self.arrays else other.arrays,
        )

    # -- accessors -------------------------------------------------------------------

    def all_pointees(self) -> set[AbsLoc]:
        """Every location a dereference of this value may touch: plain
        points-to targets plus array-block summary elements."""
        out = set(self.ptsto)
        out.update(blk.base for blk in self.arrays)
        return out

    def with_itv(self, itv: Interval) -> "AbsValue":
        return AbsValue(itv=itv, ptsto=self.ptsto, arrays=self.arrays)

    def only_itv(self) -> "AbsValue":
        return AbsValue(itv=self.itv)

    def has_pointers(self) -> bool:
        return bool(self.ptsto) or bool(self.arrays)

    def truthiness(self) -> Interval:
        """Boolean interval for branch decisions: pointers count as
        non-zero, the numeric part decides otherwise."""
        if self.has_pointers():
            if self.itv.is_bottom() or self.itv == Interval.const(0):
                from repro.domains.interval import ONE

                return ONE
            from repro.domains.interval import BOOL

            return BOOL
        return _truthiness_of_itv(self.itv)

    def __str__(self) -> str:
        parts = []
        if not self.itv.is_bottom():
            parts.append(str(self.itv))
        if self.ptsto:
            locs = ", ".join(sorted(str(l) for l in self.ptsto))
            parts.append("{" + locs + "}")
        for blk in self.arrays:
            parts.append(str(blk))
        return "(" + (" , ".join(parts) if parts else "⊥") + ")"


def _truthiness_of_itv(itv: Interval) -> Interval:
    from repro.domains.interval import BOOL, BOT, ONE, ZERO

    if itv.is_bottom():
        return BOT
    if itv == ZERO:
        return ZERO
    if itv.must_be_nonzero():
        return ONE
    return BOOL


BOT = AbsValue()
TOP_NUM = AbsValue(itv=ITV_TOP)
