"""Abstract values (the paper's ``V̂``).

An abstract value is the product of:

* an :class:`Interval` abstracting the numeric part,
* a points-to set (``P̂ = 2^L̂``) of plain locations,
* a set of *array blocks*: the paper's array abstraction "a set of tuples of
  base address, offset, and size". Blocks with equal bases are merged by
  joining their offset/size intervals, so the set stays small.

The paper's value domain is ``V̂ = Ẑ × P̂`` with arrays folded into the
pointer part; we keep array blocks separate so the buffer-overrun checker
can reason about offsets and sizes.

**Hash-consing**: like the BDD package (:mod:`repro.bdd`), values are
interned so that structurally-equal values are pointer-equal — equality
checks short-circuit on identity, the state layer can skip no-op joins
with an ``is`` test, and binary join/widen results are memoized by operand
identity in a bounded cache. Interning happens at the two choke points
where values enter long-lived structures (:meth:`AbsValue.join`/``widen``
results and :meth:`repro.domains.state.AbsState.set`), so transfer-function
scratch values cost nothing extra.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.domains.absloc import AbsLoc
from repro.domains.interval import BOT as ITV_BOT
from repro.domains.interval import TOP as ITV_TOP
from repro.domains.interval import Interval


@dataclass(frozen=True)
class ArrayBlock:
    """One array block: base summary location, offset and size intervals."""

    base: AbsLoc
    offset: Interval = field(default_factory=lambda: Interval.const(0))
    size: Interval = field(default_factory=Interval.top)

    def shift(self, delta: Interval) -> "ArrayBlock":
        """Pointer arithmetic: move the offset by ``delta``."""
        return ArrayBlock(self.base, self.offset.add(delta), self.size)

    def join(self, other: "ArrayBlock") -> "ArrayBlock":
        assert self.base == other.base
        return ArrayBlock(
            self.base, self.offset.join(other.offset), self.size.join(other.size)
        )

    def widen(self, other: "ArrayBlock") -> "ArrayBlock":
        assert self.base == other.base
        return ArrayBlock(
            self.base, self.offset.widen(other.offset), self.size.widen(other.size)
        )

    def leq(self, other: "ArrayBlock") -> bool:
        return (
            self.base == other.base
            and self.offset.leq(other.offset)
            and self.size.leq(other.size)
        )

    def __str__(self) -> str:
        return f"⟨{self.base}, off={self.offset}, sz={self.size}⟩"


def _merge_blocks(
    a: tuple[ArrayBlock, ...],
    b: tuple[ArrayBlock, ...],
    combine,
) -> tuple[ArrayBlock, ...]:
    by_base: dict[AbsLoc, ArrayBlock] = {blk.base: blk for blk in a}
    for blk in b:
        if blk.base in by_base:
            by_base[blk.base] = combine(by_base[blk.base], blk)
        else:
            by_base[blk.base] = blk
    return tuple(sorted(by_base.values(), key=lambda x: x.base.sort_key()))


# -- hash-consing ----------------------------------------------------------

#: table bounds — clearing on overflow only loses sharing, never soundness
_INTERN_LIMIT = 1 << 16
_MEMO_LIMIT = 1 << 15

_interned: dict["AbsValue", "AbsValue"] = {}
_interned_itvs: dict[Interval, Interval] = {}
_interned_ptsto: dict[frozenset, frozenset] = {}
#: (id(a), id(b)[, thresholds]) → (a, b, result); the stored operands keep
#: the keyed objects alive, so an id can never be reused while its entry
#: exists — hits verify identity against the stored operands.
_join_memo: dict[tuple[int, int], tuple] = {}
_widen_memo: dict[tuple, tuple] = {}

_memo_hits = 0
_memo_misses = 0
_enabled = True


def interning_enabled() -> bool:
    return _enabled


def set_interning(enabled: bool) -> None:
    """Toggle hash-consing and join/widen memoization (the bench ablation
    knob). Toggling clears every table so measurements start cold."""
    global _enabled
    _enabled = enabled
    clear_intern_tables()


#: callbacks run whenever the intern tables clear — dependent caches (the
#: array store's bound→value cache) register here so they never outlive the
#: canonical instances they were built from
_on_clear_hooks: list = []


def register_intern_clear_hook(hook) -> None:
    _on_clear_hooks.append(hook)


def clear_intern_tables() -> None:
    _interned.clear()
    _interned_itvs.clear()
    _interned_ptsto.clear()
    _clear_memos()


def _clear_memos() -> None:
    """Drop the join/widen memos (and dependent caches) together with any
    intern-table clear. A memo entry maps *canonical* operands to a
    *canonical* result; once a table clears, a structurally-equal value can
    be re-interned as a different object, so keeping the old entries would
    hand out stale non-canonical results — correct, but it defeats every
    identity fast path downstream and pins dead generations of values
    alive."""
    _join_memo.clear()
    _widen_memo.clear()
    for hook in _on_clear_hooks:
        hook()


def cache_stats() -> tuple[int, int]:
    """Cumulative (hits, misses) of the join/widen memo caches — solvers
    snapshot this around a run to report per-run hit rates."""
    return _memo_hits, _memo_misses


def intern_value(value: "AbsValue") -> "AbsValue":
    """The canonical instance structurally equal to ``value`` — after this,
    equality of interned values is pointer equality. Components (interval,
    points-to set) are canonicalized too, so even distinct values share
    their equal parts."""
    if not _enabled:
        return value
    found = _interned.get(value)
    if found is not None:
        return found
    if len(_interned) >= _INTERN_LIMIT:
        _interned.clear()
        _clear_memos()
    itv = value.itv
    cached_itv = _interned_itvs.get(itv)
    if cached_itv is None:
        if len(_interned_itvs) >= _INTERN_LIMIT:
            _interned_itvs.clear()
            _clear_memos()
        _interned_itvs[itv] = itv
    elif cached_itv is not itv:
        itv = cached_itv
    ptsto = value.ptsto
    if ptsto:
        cached_pts = _interned_ptsto.get(ptsto)
        if cached_pts is None:
            if len(_interned_ptsto) >= _INTERN_LIMIT:
                _interned_ptsto.clear()
                _clear_memos()
            _interned_ptsto[ptsto] = ptsto
        elif cached_pts is not ptsto:
            ptsto = cached_pts
    if itv is not value.itv or ptsto is not value.ptsto:
        value = AbsValue(itv, ptsto, value.arrays)
    _interned[value] = value
    return value


@dataclass(frozen=True, eq=False)
class AbsValue:
    """Product value: interval × points-to set × array blocks.

    Equality short-circuits on identity and the hash is computed once per
    instance — both matter because interning makes repeated values
    pointer-equal on the fixpoint hot paths.
    """

    itv: Interval = ITV_BOT
    ptsto: frozenset[AbsLoc] = frozenset()
    arrays: tuple[ArrayBlock, ...] = ()

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not AbsValue:
            return NotImplemented
        return (
            self.itv == other.itv
            and self.ptsto == other.ptsto
            and self.arrays == other.arrays
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((self.itv, self.ptsto, self.arrays))
            object.__setattr__(self, "_hash", h)
            return h

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def bottom() -> "AbsValue":
        return BOT

    @staticmethod
    def top() -> "AbsValue":
        """Unknown scalar: any number, but no valid pointer — matching the
        paper's treatment of unknown external values."""
        return TOP_NUM

    @staticmethod
    def of_interval(itv: Interval) -> "AbsValue":
        return AbsValue(itv=itv)

    @staticmethod
    def of_const(n: int) -> "AbsValue":
        return AbsValue(itv=Interval.const(n))

    @staticmethod
    def of_locs(locs: frozenset[AbsLoc] | set[AbsLoc]) -> "AbsValue":
        return AbsValue(ptsto=frozenset(locs))

    @staticmethod
    def of_block(block: ArrayBlock) -> "AbsValue":
        return AbsValue(arrays=(block,))

    # -- lattice ------------------------------------------------------------------

    def is_bottom(self) -> bool:
        return self.itv.is_bottom() and not self.ptsto and not self.arrays

    def leq(self, other: "AbsValue") -> bool:
        if self is other:
            return True
        if not self.itv.leq(other.itv):
            return False
        if not self.ptsto <= other.ptsto:
            return False
        others = {blk.base: blk for blk in other.arrays}
        for blk in self.arrays:
            o = others.get(blk.base)
            if o is None or not blk.leq(o):
                return False
        return True

    def join(self, other: "AbsValue") -> "AbsValue":
        if self is other:
            return self
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        global _memo_hits, _memo_misses
        if _enabled:
            key = (id(self), id(other))
            hit = _join_memo.get(key)
            if hit is not None and hit[0] is self and hit[1] is other:
                _memo_hits += 1
                return hit[2]
            _memo_misses += 1
        result = AbsValue(
            itv=self.itv.join(other.itv),
            ptsto=self.ptsto | other.ptsto,
            arrays=_merge_blocks(
                self.arrays, other.arrays, lambda x, y: x.join(y)
            ),
        )
        if _enabled:
            result = intern_value(result)
            if len(_join_memo) >= _MEMO_LIMIT:
                _join_memo.clear()
            _join_memo[key] = (self, other, result)
        return result

    def widen(
        self, other: "AbsValue", thresholds: tuple[int, ...] | None = None
    ) -> "AbsValue":
        if self is other:
            return self
        global _memo_hits, _memo_misses
        if _enabled:
            key = (id(self), id(other), thresholds)
            hit = _widen_memo.get(key)
            if hit is not None and hit[0] is self and hit[1] is other:
                _memo_hits += 1
                return hit[2]
            _memo_misses += 1
        result = AbsValue(
            itv=self.itv.widen(other.itv, thresholds),
            ptsto=self.ptsto | other.ptsto,
            arrays=_merge_blocks(
                self.arrays, other.arrays, lambda x, y: x.widen(y)
            ),
        )
        if _enabled:
            result = intern_value(result)
            if len(_widen_memo) >= _MEMO_LIMIT:
                _widen_memo.clear()
            _widen_memo[key] = (self, other, result)
        return result

    def narrow(self, other: "AbsValue") -> "AbsValue":
        return AbsValue(
            itv=self.itv.narrow(other.itv),
            ptsto=self.ptsto & other.ptsto
            if self.ptsto and other.ptsto
            else other.ptsto | self.ptsto,
            arrays=self.arrays if self.arrays else other.arrays,
        )

    # -- accessors -------------------------------------------------------------------

    def all_pointees(self) -> set[AbsLoc]:
        """Every location a dereference of this value may touch: plain
        points-to targets plus array-block summary elements."""
        out = set(self.ptsto)
        out.update(blk.base for blk in self.arrays)
        return out

    def with_itv(self, itv: Interval) -> "AbsValue":
        return AbsValue(itv=itv, ptsto=self.ptsto, arrays=self.arrays)

    def only_itv(self) -> "AbsValue":
        return AbsValue(itv=self.itv)

    def has_pointers(self) -> bool:
        return bool(self.ptsto) or bool(self.arrays)

    def truthiness(self) -> Interval:
        """Boolean interval for branch decisions: pointers count as
        non-zero, the numeric part decides otherwise."""
        if self.has_pointers():
            if self.itv.is_bottom() or self.itv == Interval.const(0):
                from repro.domains.interval import ONE

                return ONE
            from repro.domains.interval import BOOL

            return BOOL
        return _truthiness_of_itv(self.itv)

    def __str__(self) -> str:
        parts = []
        if not self.itv.is_bottom():
            parts.append(str(self.itv))
        if self.ptsto:
            locs = ", ".join(sorted(str(l) for l in self.ptsto))
            parts.append("{" + locs + "}")
        for blk in self.arrays:
            parts.append(str(blk))
        return "(" + (" , ".join(parts) if parts else "⊥") + ")"


def _truthiness_of_itv(itv: Interval) -> Interval:
    from repro.domains.interval import BOOL, BOT, ONE, ZERO

    if itv.is_bottom():
        return BOT
    if itv == ZERO:
        return ZERO
    if itv.must_be_nonzero():
        return ONE
    return BOOL


BOT = intern_value(AbsValue())
TOP_NUM = intern_value(AbsValue(itv=ITV_TOP))
