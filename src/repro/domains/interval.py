"""The interval abstract domain (Cousot & Cousot 1977).

``Interval(lo, hi)`` with ``lo, hi ∈ Z ∪ {-∞, +∞}`` and ``lo ≤ hi``; the
empty interval is the distinguished :data:`BOT`. Infinite bounds are
represented by ``None`` on the low/high side, which keeps arithmetic exact
(Python ints are unbounded — no float-infinity rounding surprises).

The module provides the full transfer-function kit: lattice operations,
widening/narrowing, sound arithmetic (+, -, *, /, %, <<, >>, bitops are
over-approximated where exact bounds are hard), comparisons returning
boolean intervals, and condition filters used by ``assume``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interval:
    """A (possibly empty/unbounded) integer interval.

    ``lo=None`` means -∞ and ``hi=None`` means +∞. ``empty=True`` is ⊥ —
    bounds are meaningless then.
    """

    lo: int | None = None
    hi: int | None = None
    empty: bool = False

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def const(n: int) -> "Interval":
        return Interval(n, n)

    @staticmethod
    def range(lo: int | None, hi: int | None) -> "Interval":
        if lo is not None and hi is not None and lo > hi:
            return BOT
        return Interval(lo, hi)

    @staticmethod
    def top() -> "Interval":
        return TOP

    @staticmethod
    def bottom() -> "Interval":
        return BOT

    # -- lattice -----------------------------------------------------------------

    def is_bottom(self) -> bool:
        return self.empty

    def is_top(self) -> bool:
        return not self.empty and self.lo is None and self.hi is None

    def leq(self, other: "Interval") -> bool:
        if self.empty:
            return True
        if other.empty:
            return False
        lo_ok = other.lo is None or (self.lo is not None and self.lo >= other.lo)
        hi_ok = other.hi is None or (self.hi is not None and self.hi <= other.hi)
        return lo_ok and hi_ok

    def join(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOT
        lo = self.lo if other.lo is None else (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None else min(self.hi, other.hi))
        if lo is not None and hi is not None and lo > hi:
            return BOT
        return Interval(lo, hi)

    def widen(
        self, other: "Interval", thresholds: tuple[int, ...] | None = None
    ) -> "Interval":
        """Interval widening: unstable bounds jump to ±∞ — or, with
        ``thresholds`` (a sorted tuple of landmark constants, typically the
        comparison constants of the program), to the nearest enclosing
        threshold first. Threshold widening trades a few extra iterations
        for loop bounds that survive without narrowing."""
        if self.empty:
            return other
        if other.empty:
            return self
        if self.lo is None or (other.lo is not None and other.lo >= self.lo):
            lo = self.lo
        else:
            lo = _threshold_below(other.lo, thresholds)
        if self.hi is None or (other.hi is not None and other.hi <= self.hi):
            hi = self.hi
        else:
            hi = _threshold_above(other.hi, thresholds)
        return Interval(lo, hi)

    def narrow(self, other: "Interval") -> "Interval":
        """Standard narrowing: refine only infinite bounds."""
        if self.empty or other.empty:
            return BOT
        lo = other.lo if self.lo is None else self.lo
        hi = other.hi if self.hi is None else self.hi
        if lo is not None and hi is not None and lo > hi:
            return BOT
        return Interval(lo, hi)

    # -- predicates ----------------------------------------------------------------

    def contains(self, n: int) -> bool:
        if self.empty:
            return False
        return (self.lo is None or self.lo <= n) and (self.hi is None or n <= self.hi)

    def is_const(self) -> bool:
        return not self.empty and self.lo is not None and self.lo == self.hi

    def may_be_zero(self) -> bool:
        return self.contains(0)

    def must_be_nonzero(self) -> bool:
        return not self.empty and not self.contains(0)

    # -- arithmetic ------------------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOT
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        if self.empty:
            return BOT
        lo = None if self.hi is None else -self.hi
        hi = None if self.lo is None else -self.lo
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOT
        if self.is_top() or other.is_top():
            # ⊤ * [0,0] is still 0; handle the exact-zero case.
            if other == ZERO or self == ZERO:
                return ZERO
            return TOP
        products = []
        unbounded = False
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if a is None or b is None:
                    unbounded = True
                else:
                    products.append(a * b)
        if unbounded:
            # One side is half-unbounded: compute the reachable sign bound.
            return _mul_unbounded(self, other)
        return Interval(min(products), max(products))

    def div(self, other: "Interval") -> "Interval":
        """C integer division (truncation toward zero), over-approximated."""
        if self.empty or other.empty:
            return BOT
        if other == ZERO:
            return BOT  # division by exactly zero: no defined result
        # Split the divisor around zero to keep bounds meaningful.
        out = BOT
        pos = other.meet(Interval(1, None))
        neg = other.meet(Interval(None, -1))
        for d in (pos, neg):
            if d.is_bottom():
                continue
            out = out.join(_div_nonzero(self, d))
        return out

    def mod(self, other: "Interval") -> "Interval":
        """C remainder; result magnitude < |divisor| with the sign of the
        dividend — conservatively bounded."""
        if self.empty or other.empty:
            return BOT
        if other == ZERO:
            return BOT
        bounds = [abs(b) for b in (other.lo, other.hi) if b is not None]
        if not bounds or (other.lo is None or other.hi is None):
            max_mag = None
        else:
            max_mag = max(bounds)
        if max_mag is None:
            return TOP
        lo = 0 if (self.lo is not None and self.lo >= 0) else -(max_mag - 1)
        hi = 0 if (self.hi is not None and self.hi <= 0) else max_mag - 1
        result = Interval(lo, hi)
        # Exact case: a non-negative dividend strictly below every possible
        # divisor magnitude is unchanged by %.
        if self.lo is not None and self.lo >= 0 and self.hi is not None:
            if other.lo is not None and other.lo >= 1:
                min_mag = other.lo
            elif other.hi is not None and other.hi <= -1:
                min_mag = -other.hi
            else:
                min_mag = 1  # divisor straddles zero (0 itself excluded)
            if self.hi < min_mag:
                return self
        return result

    def shl(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOT
        if other.is_const() and other.lo is not None and 0 <= other.lo <= 64:
            return self.mul(Interval.const(1 << other.lo))
        return TOP

    def shr(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOT
        if (
            other.is_const()
            and other.lo is not None
            and 0 <= other.lo <= 64
            and self.lo is not None
            and self.lo >= 0
        ):
            lo = self.lo >> other.lo
            hi = None if self.hi is None else self.hi >> other.lo
            return Interval(lo, hi)
        return TOP

    def bitand(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOT
        if (
            self.lo is not None
            and self.lo >= 0
            and other.lo is not None
            and other.lo >= 0
        ):
            # Non-negative & non-negative is bounded by the smaller operand.
            hi_candidates = [h for h in (self.hi, other.hi) if h is not None]
            hi = min(hi_candidates) if hi_candidates else None
            return Interval(0, hi)
        return TOP

    def bitor(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return BOT
        if (
            self.lo is not None
            and self.lo >= 0
            and other.lo is not None
            and other.lo >= 0
            and self.hi is not None
            and other.hi is not None
        ):
            # Bounded above by the next power of two of max(hi) minus one.
            bound = max(self.hi, other.hi)
            hi = (1 << bound.bit_length()) - 1 if bound > 0 else 0
            return Interval(0, hi)
        return TOP

    def bitxor(self, other: "Interval") -> "Interval":
        return self.bitor(other)

    def lnot(self) -> "Interval":
        """Logical not: 1 if definitely zero, 0 if definitely nonzero."""
        if self.empty:
            return BOT
        if self == ZERO:
            return ONE
        if self.must_be_nonzero():
            return ZERO
        return BOOL

    def bnot(self) -> "Interval":
        """Bitwise complement: ~x = -x - 1."""
        return self.neg().sub(ONE)

    # -- comparisons (return boolean intervals) -----------------------------------

    def cmp(self, op: str, other: "Interval") -> "Interval":
        """Evaluate ``self op other`` to a boolean interval ([0,0], [1,1],
        or [0,1] when undecided)."""
        if self.empty or other.empty:
            return BOT
        lt = self._always_lt(other)
        gt = other._always_lt(self)
        le = self._always_le(other)
        ge = other._always_le(self)
        eq = self.is_const() and other.is_const() and self.lo == other.lo
        disjoint = self.meet(other).is_bottom()
        table = {
            "<": (lt, ge),
            ">": (gt, le),
            "<=": (le, gt),
            ">=": (ge, lt),
            "==": (eq, disjoint),
            "!=": (disjoint, eq),
        }
        always, never = table[op]
        if always:
            return ONE
        if never:
            return ZERO
        return BOOL

    def _always_lt(self, other: "Interval") -> bool:
        return (
            self.hi is not None and other.lo is not None and self.hi < other.lo
        )

    def _always_le(self, other: "Interval") -> bool:
        return (
            self.hi is not None and other.lo is not None and self.hi <= other.lo
        )

    # -- condition filters (assume transfer functions) ------------------------------

    def filter(self, op: str, other: "Interval") -> "Interval":
        """Refine ``self`` assuming ``self op other`` holds."""
        if self.empty or other.empty:
            return BOT
        if op == "<":
            if other.hi is None:
                return self
            return self.meet(Interval(None, other.hi - 1))
        if op == "<=":
            return self.meet(Interval(None, other.hi))
        if op == ">":
            if other.lo is None:
                return self
            return self.meet(Interval(other.lo + 1, None))
        if op == ">=":
            return self.meet(Interval(other.lo, None))
        if op == "==":
            return self.meet(other)
        if op == "!=":
            if other.is_const() and other.lo is not None:
                n = other.lo
                if self.lo == n and self.hi == n:
                    return BOT
                if self.lo == n:
                    return Interval(n + 1, self.hi)
                if self.hi == n:
                    return Interval(self.lo, n - 1)
            return self
        return self

    # -- misc ---------------------------------------------------------------------

    def __str__(self) -> str:
        if self.empty:
            return "⊥"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


def _div_nonzero(num: Interval, den: Interval) -> Interval:
    """Division by a sign-constant divisor interval (all > 0 or all < 0).

    For such divisors truncated division is monotone in each bound, so
    evaluating at finite corners is exact; infinite bounds map through the
    divisor's sign.
    """
    if num.lo is None and num.hi is None:
        return TOP

    def q(a: int, b: int) -> int:
        quotient = abs(a) // abs(b)
        return quotient if (a >= 0) == (b > 0) else -quotient

    den_pos = den.lo is not None and den.lo >= 1
    finite_bs = [b for b in (den.lo, den.hi) if b is not None]
    candidates = [
        q(a, b) for a in (num.lo, num.hi) if a is not None for b in finite_bs
    ]
    if den.lo is None or den.hi is None:
        candidates.append(0)  # |den| unbounded: quotients approach 0
    lo_unbounded = (num.lo is None and den_pos) or (num.hi is None and not den_pos)
    hi_unbounded = (num.hi is None and den_pos) or (num.lo is None and not den_pos)
    lo = None if lo_unbounded else min(candidates)
    hi = None if hi_unbounded else max(candidates)
    return Interval(lo, hi)


def _mul_unbounded(a: Interval, b: Interval) -> Interval:
    """Multiplication where at least one bound is infinite: track signs."""
    a_nonneg = a.lo is not None and a.lo >= 0
    a_nonpos = a.hi is not None and a.hi <= 0
    b_nonneg = b.lo is not None and b.lo >= 0
    b_nonpos = b.hi is not None and b.hi <= 0
    if (a_nonneg and b_nonneg) or (a_nonpos and b_nonpos):
        return Interval(0 if (a.contains(0) or b.contains(0)) else 1, None)
    if (a_nonneg and b_nonpos) or (a_nonpos and b_nonneg):
        return Interval(None, 0)
    return TOP


def _threshold_above(bound: int | None, thresholds: tuple[int, ...] | None) -> int | None:
    """Smallest threshold ≥ bound, or None (+∞) when none encloses it."""
    if bound is None or not thresholds:
        return None
    for t in thresholds:
        if t >= bound:
            return t
    return None


def _threshold_below(bound: int | None, thresholds: tuple[int, ...] | None) -> int | None:
    """Largest threshold ≤ bound, or None (−∞)."""
    if bound is None or not thresholds:
        return None
    best: int | None = None
    for t in thresholds:
        if t <= bound:
            best = t
        else:
            break
    return best


BOT = Interval(empty=True)
TOP = Interval(None, None)
ZERO = Interval(0, 0)
ONE = Interval(1, 1)
BOOL = Interval(0, 1)
