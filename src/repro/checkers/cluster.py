"""Sound alarm clustering.

SPARROW post-processes its alarms by *clustering*: when one alarm
dominates others — fixing the dominating one necessarily silences its
followers — only the cluster leader needs triage (Lee et al., VMCAI 2012,
cited by the paper as part of the SPARROW tool chain).

This module implements the dominance-based core of that idea for the
buffer-overrun checker: two alarms on the *same block* cluster when the
leader's control point dominates the follower's and the follower's access
offsets are contained in the leader's. Then any fix that constrains the
leader's offsets (e.g. a guard hoisted above it) constrains the
follower's too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checkers.overrun import AccessReport, Verdict
from repro.ir.dominators import DomInfo, compute_dominators
from repro.ir.program import Program


@dataclass
class AlarmCluster:
    """A leader alarm plus the alarms it dominates."""

    leader: AccessReport
    followers: list[AccessReport] = field(default_factory=list)

    def size(self) -> int:
        return 1 + len(self.followers)


def _dominators_by_proc(program: Program) -> dict[str, DomInfo]:
    out: dict[str, DomInfo] = {}
    for proc, cfg in program.cfgs.items():
        if cfg.entry is None:
            continue
        out[proc] = compute_dominators(cfg.entry.nid, cfg.succs, cfg.preds)
    return out


def cluster_alarms(
    program: Program, reports: list[AccessReport]
) -> list[AlarmCluster]:
    """Group overrun alarms into dominance clusters.

    Clustering is *intra-procedural* and per-block: sound (a follower is
    only attached when the leader's offsets subsume it on the same block
    and control must pass the leader first) but not complete — cross-
    procedure clusters are left as singletons.
    """
    alarms = [r for r in reports if r.verdict is Verdict.ALARM]
    doms = _dominators_by_proc(program)

    # group by (procedure, block size-signature): same-block heuristics use
    # the size interval as the block identity surrogate exposed by reports
    by_group: dict[tuple, list[AccessReport]] = {}
    for alarm in alarms:
        key = (alarm.proc, str(alarm.size))
        by_group.setdefault(key, []).append(alarm)

    clusters: list[AlarmCluster] = []
    for (proc, _sig), group in sorted(by_group.items()):
        dom = doms.get(proc)
        group = sorted(group, key=lambda a: a.nid)
        taken: set[int] = set()
        for i, leader in enumerate(group):
            if id(leader) in taken:
                continue
            cluster = AlarmCluster(leader)
            for follower in group[i + 1 :]:
                if id(follower) in taken:
                    continue
                if dom is None or not dom.dominates(leader.nid, follower.nid):
                    continue
                if follower.offset.leq(leader.offset):
                    cluster.followers.append(follower)
                    taken.add(id(follower))
            taken.add(id(leader))
            clusters.append(cluster)
    return clusters


def triage_summary(clusters: list[AlarmCluster]) -> str:
    """Human-readable cluster report: what to look at first."""
    total = sum(c.size() for c in clusters)
    lines = [
        f"{total} alarms in {len(clusters)} clusters "
        f"({total - len(clusters)} dominated):"
    ]
    for cluster in sorted(clusters, key=lambda c: -c.size()):
        lines.append(
            f"  ▸ line {cluster.leader.line} {cluster.leader.access} "
            f"(+{len(cluster.followers)} dominated)"
        )
        for f in cluster.followers:
            lines.append(f"      line {f.line} {f.access}")
    return "\n".join(lines)
