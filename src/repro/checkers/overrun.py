"""Buffer-overrun checker — SPARROW's flagship client.

Walks every array access (``a[i]``, ``*(p + k)``) in the program and checks
the analysis result: the paper's array abstraction gives every pointer value
a set of blocks ⟨base, offset, size⟩, so an access is *provably safe* when
``0 ≤ offset + index < size`` holds for every block, an *alarm* otherwise.

The checker evaluates access expressions over the *incoming* state of each
control point (the join of predecessor states), which both the dense and
sparse results can reconstruct through their retained graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.analysis.semantics import AnalysisContext, Evaluator
from repro.domains.interval import Interval
from repro.domains.state import AbsState
from repro.domains.value import AbsValue
from repro.ir.cfg import Node
from repro.ir.commands import (
    CAlloc,
    CAssume,
    CCall,
    CReturn,
    CSet,
    DerefLv,
    EAddrOf,
    EBinOp,
    ELval,
    EUnOp,
    Expr,
    FieldLv,
    IndexLv,
    Lval,
)
from repro.ir.program import Program


class Verdict(Enum):
    SAFE = "safe"
    ALARM = "alarm"
    UNKNOWN = "unknown"  # no block information (e.g. external pointer)


@dataclass(frozen=True)
class AccessReport:
    """One checked array access."""

    nid: int
    line: int
    proc: str
    access: str
    verdict: Verdict
    offset: Interval
    size: Interval

    def __str__(self) -> str:
        tag = self.verdict.value.upper()
        return (
            f"[{tag}] line {self.line} ({self.proc}): {self.access} — "
            f"offset {self.offset}, size {self.size}"
        )


def _in_state(result, program: Program, nid: int) -> AbsState:
    """The state the access expression is evaluated under.

    Dense results reconstruct it as the join of predecessor states; sparse
    results assemble it from incoming data dependencies (the access's base
    and index are uses of the node, so their carriers are dependencies).
    """
    state = AbsState()
    deps = getattr(result, "deps", None)
    if deps is not None:
        for src, locs in deps.in_edges(nid):
            src_state = result.table.get(src)
            if src_state is None:
                continue
            for loc in locs:
                value = src_state.get(loc)
                if not value.is_bottom():
                    state.weak_set(loc, value)
        return state
    for pred in result.graph.preds.get(nid, ()):
        ps = result.table.get(pred)
        if ps is not None:
            state.join_with(ps)
    return state


def _judge(offset: Interval, size: Interval) -> Verdict:
    if offset.is_bottom() or size.is_bottom():
        return Verdict.UNKNOWN
    lo_ok = offset.lo is not None and offset.lo >= 0
    hi_ok = (
        offset.hi is not None
        and size.lo is not None
        and offset.hi < size.lo
    )
    if lo_ok and hi_ok:
        return Verdict.SAFE
    return Verdict.ALARM


def check_overruns(program: Program, result) -> list[AccessReport]:
    """Check every array access against an analysis result (the
    ``DenseResult``/``SparseResult`` of the interval analyzers)."""
    ctx = AnalysisContext(program, result.pre.site_callees)
    reports: list[AccessReport] = []
    for node in program.nodes():
        accesses = _accesses_of(node)
        if not accesses:
            continue
        state = _in_state(result, program, node.nid)
        ev = Evaluator(ctx, state)
        for base_expr, index_expr, text in accesses:
            base = ev.eval(base_expr)
            index = (
                ev.eval(index_expr).itv
                if index_expr is not None
                else Interval.const(0)
            )
            if not base.arrays:
                verdict = Verdict.UNKNOWN
                reports.append(
                    AccessReport(
                        node.nid,
                        node.line,
                        node.proc,
                        text,
                        verdict,
                        index,
                        Interval.bottom(),
                    )
                )
                continue
            for block in base.arrays:
                effective = block.offset.add(index)
                verdict = _judge(effective, block.size)
                reports.append(
                    AccessReport(
                        node.nid,
                        node.line,
                        node.proc,
                        text,
                        verdict,
                        effective,
                        block.size,
                    )
                )
    return reports


def alarms(reports: list[AccessReport]) -> list[AccessReport]:
    return [r for r in reports if r.verdict is Verdict.ALARM]


def _accesses_of(node: Node) -> list[tuple[Expr, Expr | None, str]]:
    """Collect (base expression, index expression, printable form) for
    every array access the node's command performs."""
    out: list[tuple[Expr, Expr | None, str]] = []

    def walk_expr(expr: Expr) -> None:
        if isinstance(expr, ELval):
            walk_lval(expr.lval)
        elif isinstance(expr, EAddrOf):
            walk_lval(expr.lval)
        elif isinstance(expr, EBinOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, EUnOp):
            walk_expr(expr.operand)

    def walk_lval(lval: Lval) -> None:
        if isinstance(lval, IndexLv):
            walk_expr(lval.base)
            walk_expr(lval.index)
            out.append((lval.base, lval.index, str(lval)))
        elif isinstance(lval, DerefLv):
            walk_expr(lval.ptr)
            # *(p + k) is an array access when p carries blocks.
            out.append((lval.ptr, None, str(lval)))
        elif isinstance(lval, FieldLv):
            walk_lval(lval.base)

    cmd = node.cmd
    if isinstance(cmd, CSet):
        walk_lval(cmd.lval)
        walk_expr(cmd.expr)
    elif isinstance(cmd, CAlloc):
        walk_expr(cmd.size)
    elif isinstance(cmd, CAssume):
        walk_expr(cmd.cond)
    elif isinstance(cmd, CCall):
        for arg in cmd.args:
            walk_expr(arg)
    elif isinstance(cmd, CReturn) and cmd.value is not None:
        walk_expr(cmd.value)
    return out
