"""Null-dereference checker.

Flags pointer dereferences whose abstract value may be the null constant:
in the value domain a pointer is ⟨itv, points-to, blocks⟩ and the null
pointer is the integer 0, so a dereference is suspicious when the numeric
part contains 0 — unless a guard (``if (p) …``) has filtered it out —
and *definitely broken* when the value has no targets at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.analysis.semantics import AnalysisContext, Evaluator
from repro.checkers.overrun import _in_state
from repro.ir.cfg import Node
from repro.ir.commands import (
    CAlloc,
    CAssume,
    CCall,
    CReturn,
    CSet,
    DerefLv,
    EAddrOf,
    EBinOp,
    ELval,
    EUnOp,
    Expr,
    FieldLv,
    IndexLv,
    Lval,
)
from repro.ir.program import Program


class NullVerdict(Enum):
    SAFE = "safe"          # has targets, cannot be 0
    MAY_NULL = "may-null"  # has targets but 0 is possible
    NO_TARGET = "no-target"  # nothing to dereference at all


@dataclass(frozen=True)
class NullReport:
    nid: int
    line: int
    proc: str
    expr: str
    verdict: NullVerdict

    def __str__(self) -> str:
        return (
            f"[{self.verdict.value.upper()}] line {self.line} "
            f"({self.proc}): {self.expr}"
        )


def check_null_derefs(program: Program, result) -> list[NullReport]:
    ctx = AnalysisContext(program, result.pre.site_callees)
    reports: list[NullReport] = []
    for node in program.nodes():
        derefs = _derefs_of(node)
        if not derefs:
            continue
        state = _in_state(result, program, node.nid)
        ev = Evaluator(ctx, state)
        for ptr_expr, text in derefs:
            value = ev.eval(ptr_expr)
            has_targets = bool(value.all_pointees())
            may_be_zero = value.itv.may_be_zero()
            if not has_targets and value.itv.is_bottom():
                continue  # dead code: nothing reaches here
            if not has_targets:
                verdict = NullVerdict.NO_TARGET
            elif may_be_zero:
                verdict = NullVerdict.MAY_NULL
            else:
                verdict = NullVerdict.SAFE
            reports.append(
                NullReport(node.nid, node.line, node.proc, text, verdict)
            )
    return reports


def null_alarms(reports: list[NullReport]) -> list[NullReport]:
    return [r for r in reports if r.verdict is not NullVerdict.SAFE]


def _derefs_of(node: Node) -> list[tuple[Expr, str]]:
    out: list[tuple[Expr, str]] = []

    def walk_expr(e: Expr) -> None:
        if isinstance(e, ELval):
            walk_lval(e.lval)
        elif isinstance(e, EAddrOf):
            walk_lval(e.lval)
        elif isinstance(e, EBinOp):
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, EUnOp):
            walk_expr(e.operand)

    def walk_lval(lv: Lval) -> None:
        if isinstance(lv, DerefLv):
            out.append((lv.ptr, str(lv)))
            walk_expr(lv.ptr)
        elif isinstance(lv, IndexLv):
            walk_expr(lv.base)
            walk_expr(lv.index)
        elif isinstance(lv, FieldLv):
            walk_lval(lv.base)

    cmd = node.cmd
    if isinstance(cmd, CSet):
        walk_lval(cmd.lval)
        walk_expr(cmd.expr)
    elif isinstance(cmd, CAlloc):
        walk_expr(cmd.size)
    elif isinstance(cmd, CAssume):
        walk_expr(cmd.cond)
    elif isinstance(cmd, CCall):
        for a in cmd.args:
            walk_expr(a)
    elif isinstance(cmd, CReturn) and cmd.value is not None:
        walk_expr(cmd.value)
    return out
