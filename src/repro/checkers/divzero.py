"""Division-by-zero checker.

A second SPARROW-style client on the interval analysis: every ``/`` and
``%`` whose divisor interval may contain zero is reported. Guarded
divisions (``if (n != 0) x / n``) are proven safe through the assume
refinement the analysis already performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.analysis.semantics import AnalysisContext, Evaluator
from repro.checkers.overrun import _in_state
from repro.ir.cfg import Node
from repro.ir.commands import (
    CAlloc,
    CAssume,
    CCall,
    CReturn,
    CSet,
    DerefLv,
    EAddrOf,
    EBinOp,
    ELval,
    EUnOp,
    Expr,
    FieldLv,
    IndexLv,
    Lval,
)
from repro.ir.program import Program


class DivVerdict(Enum):
    SAFE = "safe"  # divisor provably nonzero
    ALARM = "alarm"  # divisor may be zero


@dataclass(frozen=True)
class DivReport:
    nid: int
    line: int
    proc: str
    expr: str
    verdict: DivVerdict
    divisor: str

    def __str__(self) -> str:
        return (
            f"[{self.verdict.value.upper()}] line {self.line} "
            f"({self.proc}): {self.expr} — divisor ∈ {self.divisor}"
        )


def check_divisions(program: Program, result) -> list[DivReport]:
    """Check every division/modulo in the program against the analysis."""
    ctx = AnalysisContext(program, result.pre.site_callees)
    reports: list[DivReport] = []
    for node in program.nodes():
        divisions = _divisions_of(node)
        if not divisions:
            continue
        state = _in_state(result, program, node.nid)
        ev = Evaluator(ctx, state)
        for expr in divisions:
            divisor = ev.eval(expr.right)
            itv = divisor.itv
            if itv.is_bottom() and divisor.has_pointers():
                continue  # pointer arithmetic; not a numeric division
            if itv.must_be_nonzero():
                verdict = DivVerdict.SAFE
            else:
                verdict = DivVerdict.ALARM
            reports.append(
                DivReport(
                    node.nid, node.line, node.proc, str(expr), verdict, str(itv)
                )
            )
    return reports


def div_alarms(reports: list[DivReport]) -> list[DivReport]:
    return [r for r in reports if r.verdict is DivVerdict.ALARM]


def _divisions_of(node: Node) -> list[EBinOp]:
    out: list[EBinOp] = []

    def walk_expr(e: Expr) -> None:
        if isinstance(e, EBinOp):
            if e.op in ("/", "%"):
                out.append(e)
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, EUnOp):
            walk_expr(e.operand)
        elif isinstance(e, ELval):
            walk_lval(e.lval)
        elif isinstance(e, EAddrOf):
            walk_lval(e.lval)

    def walk_lval(lv: Lval) -> None:
        if isinstance(lv, DerefLv):
            walk_expr(lv.ptr)
        elif isinstance(lv, IndexLv):
            walk_expr(lv.base)
            walk_expr(lv.index)
        elif isinstance(lv, FieldLv):
            walk_lval(lv.base)

    cmd = node.cmd
    if isinstance(cmd, CSet):
        walk_lval(cmd.lval)
        walk_expr(cmd.expr)
    elif isinstance(cmd, CAlloc):
        walk_expr(cmd.size)
    elif isinstance(cmd, CAssume):
        walk_expr(cmd.cond)
    elif isinstance(cmd, CCall):
        for a in cmd.args:
            walk_expr(a)
    elif isinstance(cmd, CReturn) and cmd.value is not None:
        walk_expr(cmd.value)
    return out
