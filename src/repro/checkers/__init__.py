"""Client checkers built on the analysis results."""

from repro.checkers.divzero import (
    DivReport,
    DivVerdict,
    check_divisions,
    div_alarms,
)
from repro.checkers.nullderef import (
    NullReport,
    NullVerdict,
    check_null_derefs,
    null_alarms,
)
from repro.checkers.overrun import AccessReport, Verdict, alarms, check_overruns

__all__ = [
    "AccessReport",
    "Verdict",
    "alarms",
    "check_overruns",
    "DivReport",
    "DivVerdict",
    "check_divisions",
    "div_alarms",
    "NullReport",
    "NullVerdict",
    "check_null_derefs",
    "null_alarms",
]
