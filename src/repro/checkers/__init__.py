"""Client checkers built on the analysis results."""

from repro.checkers.divzero import (
    DivReport,
    DivVerdict,
    check_divisions,
    div_alarms,
)
from repro.checkers.nullderef import (
    NullReport,
    NullVerdict,
    check_null_derefs,
    null_alarms,
)
from repro.checkers.overrun import AccessReport, Verdict, alarms, check_overruns

#: checker name → entry point (all take ``(program, result)``)
CHECKERS = {
    "overrun": check_overruns,
    "divzero": check_divisions,
    "nullderef": check_null_derefs,
}


def run_checker(name: str, program, result, telemetry=None) -> list:
    """Dispatch one checker by name, traced as a ``checkers`` phase span.

    The span carries the checker name and report count; the registry's
    ``checkers.reports`` counter accumulates across checkers so the phase
    report shows one total.
    """
    from repro.telemetry.core import Telemetry

    fn = CHECKERS.get(name)
    if fn is None:
        raise ValueError(f"unknown checker {name!r}")
    tel = Telemetry.coerce(telemetry)
    with tel.span("checkers", checker=name) as sp:
        reports = fn(program, result)
        sp.set(reports=len(reports))
    tel.count("checkers.reports", len(reports))
    return reports


__all__ = [
    "AccessReport",
    "Verdict",
    "alarms",
    "check_overruns",
    "DivReport",
    "DivVerdict",
    "check_divisions",
    "div_alarms",
    "NullReport",
    "NullVerdict",
    "check_null_derefs",
    "null_alarms",
    "CHECKERS",
    "run_checker",
]
