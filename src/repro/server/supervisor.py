"""Supervised serve runtime: a crash-recovering session worker.

``repro serve --supervised`` splits the query server into two processes:

* a **session worker** child that owns the :class:`ServeSession` (all
  resident per-combo fixpoints) and speaks the PR 9 line protocol over a
  pipe pair. It writes a heartbeat file around every request, records
  every acked ``edit``'s post-edit source durably *before* replying
  (``serve-source.ckpt``, PR 5 codec), and auto-snapshots the resident
  tables every ``snapshot_every`` requests and after every edit
  (``serve-resident.ckpt``);
* a **supervisor** parent that forwards client requests to the worker and
  watches it: a worker that exits, is killed, blows the per-request hard
  ``request_deadline`` (a watchdog SIGKILL, *not* the cooperative
  :class:`~repro.runtime.budget.Budget`), or stops touching its heartbeat
  mid-request is killed and respawned with seeded exponential-backoff
  delays (:mod:`repro.runtime.backoff`). The in-flight request is
  answered with ``{"ok": false, "error": "retry", "cause": ...,
  "retry_after": ...}`` instead of the server dying; the respawned worker
  reloads the durable source (so acked edits survive) and warm-starts
  from the latest snapshot when its fingerprint still matches — a
  corrupted or stale snapshot fails closed and the worker simply
  re-solves lazily.

Recovery invariant (property-tested in ``tests/server/test_chaos.py``):
because edits are durable-before-ack and snapshots are a pure performance
cache keyed by a source fingerprint, every post-restart answer is
byte-identical to the answer of a never-crashed session that processed
the same acked requests.

On top of supervision the transports add **overload-aware admission
control**: reader threads push requests into a bounded pending queue and
immediately shed with ``{"ok": false, "error": "overloaded"}`` once the
queue holds ``max_pending`` requests. Memory pressure inside the worker
is handled by the session itself (``max_resident_bytes`` LRU eviction,
:meth:`ServeSession.maybe_evict`).

Fault injection: a :class:`~repro.runtime.faults.FaultPlan` with
``kill_request_at`` / ``hang_request_at`` / ``kill_edit_at`` is shipped to
the worker's *first* incarnation only; ``corrupt_snapshot`` is
supervisor-side (bytes of the resident snapshot are flipped before the
first respawn, exercising the fail-closed restore).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import queue as queuelib
import random
import signal
import socket as socketlib
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.runtime.backoff import BackoffPolicy
from repro.runtime.checkpoint import load_checkpoint, save_checkpoint
from repro.runtime.errors import CheckpointError, ReproError
from repro.runtime.faults import FaultPlan, corrupt_file_tail
from repro.telemetry.core import Telemetry

#: file names inside the supervisor's state directory
SOURCE_CKPT = "serve-source.ckpt"
RESIDENT_CKPT = "serve-resident.ckpt"
HEARTBEAT_FILE = "serve-worker.hb"

_SOURCE_KIND = "serve-source"

#: seconds between SIGTERM and SIGKILL when stopping a worker
_TERM_GRACE = 3.0
#: supervisor poll period while waiting on a worker response (seconds)
_POLL = 0.02


@dataclass
class SupervisorConfig:
    """Supervision policy for one serve runtime."""

    #: hard wall-clock ceiling per request; ``None`` disables the watchdog
    request_deadline: float | None = 60.0
    #: mid-request heartbeat staleness that counts as a hung worker
    #: (typically < ``request_deadline`` for earlier detection)
    heartbeat_timeout: float | None = None
    #: how long a fresh worker may take to report ready (loading a large
    #: program + snapshot restore happen here)
    startup_timeout: float = 300.0
    #: auto-snapshot the resident tables every N requests (0 disables the
    #: periodic cadence; edits always snapshot)
    snapshot_every: int = 16
    #: admission-control cap on queued-but-unserved requests
    max_pending: int = 64
    #: consecutive startup failures before the supervisor gives up on
    #: respawning and answers every request with ``unavailable``
    max_restarts: int = 8
    #: respawn delay schedule (seeded; one jitter draw per respawn)
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(
            base=0.05, factor=2.0, jitter=0.25, max_delay=2.0
        )
    )
    seed: int = 0
    #: fault plan shipped to the first worker incarnation (testing)
    faults: FaultPlan | None = None


def _touch(path: str) -> None:
    with open(path, "w") as f:
        f.write(str(time.time()))


def _load_durable_source(state_dir: str) -> tuple[str | None, int]:
    """The last durably-recorded (edited) source text and generation, or
    ``(None, 0)`` when there is none / it fails validation (fail closed:
    fall back to the original program text)."""
    path = os.path.join(state_dir, SOURCE_CKPT)
    if not os.path.exists(path):
        return None, 0
    try:
        payload = load_checkpoint(path)
    except CheckpointError:
        try:
            os.unlink(path)
        except OSError:
            pass
        return None, 0
    if payload.get("kind") != _SOURCE_KIND:
        return None, 0
    return payload.get("source"), int(payload.get("generation", 0))


def _worker_main(
    spec: dict, req_conn, resp_conn, state_dir: str, faults_dict: dict | None
) -> None:
    """Session-worker child entry: restore durable state, report ready,
    then serve requests from the pipe until EOF/shutdown.

    The worker never answers a request with anything but one line of
    JSON; a crash (injected or real) simply leaves the supervisor without
    a response, which is its retry signal.
    """
    from repro.server.protocol import (
        MAX_REQUEST_BYTES,
        ProtocolError,
        decode_request,
        dispatch_request,
        encode_response,
        error_response,
    )
    from repro.server.session import ServeSession

    hb_path = os.path.join(state_dir, HEARTBEAT_FILE)
    resident_path = os.path.join(state_dir, RESIDENT_CKPT)
    source_path = os.path.join(state_dir, SOURCE_CKPT)
    _touch(hb_path)

    injector = None
    if faults_dict:
        plan = dict(faults_dict)
        if plan.get("drop_dep_edge") is not None:
            plan["drop_dep_edge"] = tuple(plan["drop_dep_edge"])
        injector = FaultPlan(**plan).injector()

    # Acked edits outlive crashes: prefer the durably-recorded source over
    # the original program text the supervisor was started with.
    durable_source, generation = _load_durable_source(state_dir)
    session = ServeSession(
        durable_source if durable_source is not None else spec["source"],
        spec["filename"],
        **spec["session"],
    )
    session.generation = generation

    restored: list[str] = []
    restore_error: str | None = None
    if os.path.exists(resident_path):
        try:
            restored = session.restore(resident_path)["residents"]
        except (CheckpointError, ReproError) as exc:
            # fail closed: a poisoned or source-mismatched snapshot is
            # dropped and the session re-solves lazily
            restore_error = str(exc)
            try:
                os.unlink(resident_path)
            except OSError:
                pass
    if spec.get("preload"):
        res = session.resident()
        session._ensure_solved(res, frozenset(res.plan.node_ids))
    _touch(hb_path)
    resp_conn.send(
        json.dumps(
            {
                "ready": True,
                "generation": session.generation,
                "recovered_source": durable_source is not None,
                "restored": restored,
                "restore_error": restore_error,
            }
        )
    )

    snapshot_every = int(spec.get("snapshot_every") or 0)
    max_request_bytes = int(spec.get("max_request_bytes") or MAX_REQUEST_BYTES)
    n_requests = 0
    n_edits = 0

    def snapshot_now() -> None:
        try:
            session.snapshot(resident_path)
        except Exception:  # noqa: BLE001 - snapshots are best-effort cache
            pass

    while True:
        try:
            line = req_conn.recv()
        except (EOFError, OSError):
            break
        if line is None:  # supervisor-side close sentinel
            break
        _touch(hb_path)
        n_requests += 1
        if injector is not None:
            injector.before_request(n_requests)
        request_id = None
        try:
            request = decode_request(line, max_request_bytes)
            request_id = request.get("id")
            op = request["op"]
            if op == "shutdown":
                resp: dict = {"ok": True, "op": "shutdown"}
                if request_id is not None:
                    resp["id"] = request_id
                resp_conn.send(encode_response(resp))
                break
            response = dispatch_request(session, request)
            if op == "edit":
                n_edits += 1
                if injector is not None:
                    # the atomicity window: the edit is applied in memory
                    # but not yet durable — a kill here must roll it back
                    injector.after_edit_applied(n_edits)
                save_checkpoint(
                    source_path,
                    {
                        "kind": _SOURCE_KIND,
                        "source": session.source,
                        "generation": session.generation,
                    },
                )
                snapshot_now()
            if request_id is not None:
                response["id"] = request_id
            resp_conn.send(encode_response(response))
        except ProtocolError as exc:
            resp_conn.send(
                encode_response(error_response(exc.code, str(exc), request_id))
            )
        except (ReproError, ValueError) as exc:
            resp_conn.send(
                encode_response(error_response("error", str(exc), request_id))
            )
        except Exception as exc:  # noqa: BLE001 - worker must survive
            resp_conn.send(
                encode_response(
                    error_response(
                        "internal", f"{type(exc).__name__}: {exc}", request_id
                    )
                )
            )
        if snapshot_every and n_requests % snapshot_every == 0:
            snapshot_now()
        _touch(hb_path)


def _peek(line: str) -> tuple[object, str | None]:
    """Best-effort (id, op) of a raw request line, for synthesizing
    supervisor-side answers. Garbage decodes to (None, None) — the worker
    produces the proper protocol error for it."""
    try:
        payload = json.loads(line)
    except ValueError:
        return None, None
    if not isinstance(payload, dict):
        return None, None
    op = payload.get("op")
    return payload.get("id"), op if isinstance(op, str) else None


class Supervisor:
    """Parent-side state machine: spawn, watch, kill, respawn, answer.

    Programmatic use (tests, benchmarks, the chaos harness)::

        sup = Supervisor(source, "prog.c", strict=False, widen=False)
        sup.start()
        resp = sup.ask({"op": "query", "kind": "interval",
                        "proc": "main", "var": "x"})
        sup.stop()

    ``handle_line`` is the transport-facing entry: one raw request line
    in, exactly one response line out, never an exception (interrupts
    excepted). It must only be called from one thread at a time — the
    transports below funnel every admitted request through a single
    consumer loop.
    """

    def __init__(
        self,
        source: str,
        filename: str = "<serve>",
        *,
        state_dir: str | None = None,
        config: SupervisorConfig | None = None,
        max_request_bytes: int | None = None,
        preload: bool = False,
        telemetry=None,
        **session_kwargs,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.telemetry = Telemetry.coerce(telemetry)
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if state_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-")
            state_dir = self._tmpdir.name
        os.makedirs(state_dir, exist_ok=True)
        self.state_dir = state_dir
        self._spec = {
            "source": source,
            "filename": filename,
            "session": dict(session_kwargs),
            "snapshot_every": self.config.snapshot_every,
            "max_request_bytes": max_request_bytes,
            "preload": preload,
        }
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._rng = random.Random(self.config.seed)
        self.incarnation = 0
        self.closing = False
        self._defunct = False
        self._consecutive_failures = 0
        self._corruption_done = False
        self._worker = None
        self._req_conn = None
        self._resp_conn = None
        self.ready_info: dict = {}
        self.counters = {
            "requests": 0,
            "restarts": 0,
            "crashes": 0,
            "deadline_kills": 0,
            "heartbeat_kills": 0,
            "shed": 0,
            "retry_answers": 0,
            "spawn_failures": 0,
            "snapshot_restores": 0,
            "restore_failures": 0,
        }

    # -- worker lifecycle ------------------------------------------------------

    @property
    def worker_pid(self) -> int | None:
        return self._worker.pid if self._worker is not None else None

    def _heartbeat_age(self) -> float | None:
        try:
            return time.time() - os.path.getmtime(
                os.path.join(self.state_dir, HEARTBEAT_FILE)
            )
        except OSError:
            return None

    def _close_conns(self) -> None:
        for conn in (self._req_conn, self._resp_conn):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self._req_conn = self._resp_conn = None

    def _kill_worker(self) -> None:
        """SIGKILL + reap. Used by the watchdog — no grace: a hung worker
        by definition is not going to flush anything useful."""
        if self._worker is None:
            return
        if self._worker.is_alive():
            self._worker.kill()
        self._worker.join()
        self._worker = None
        self._close_conns()

    def _stop_worker(self, signum: int = signal.SIGTERM) -> None:
        """Forward ``signum`` to the worker, give it a grace period, then
        SIGKILL; always reaps the child before returning."""
        if self._worker is None:
            return
        if self._worker.is_alive():
            try:
                os.kill(self._worker.pid, signum)
            except (OSError, TypeError):
                pass
            self._worker.join(_TERM_GRACE)
            if self._worker.is_alive():
                self._worker.kill()
        self._worker.join()
        self._worker = None
        self._close_conns()

    def _spawn(self) -> bool:
        """One spawn attempt; True when the worker reported ready."""
        self.incarnation += 1
        faults = self.config.faults
        if (
            faults is not None
            and faults.corrupt_snapshot
            and self.incarnation == 2
            and not self._corruption_done
        ):
            resident = os.path.join(self.state_dir, RESIDENT_CKPT)
            if os.path.exists(resident):
                corrupt_file_tail(resident)
                self._corruption_done = True
        faults_dict = None
        if faults is not None and self.incarnation == 1:
            faults_dict = dataclasses.asdict(faults)
        req_parent, req_child = self._ctx.Pipe()
        resp_child, resp_parent = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._spec, req_child, resp_child, self.state_dir, faults_dict),
            daemon=True,
        )
        proc.start()
        req_child.close()
        resp_child.close()
        deadline = time.monotonic() + self.config.startup_timeout
        while time.monotonic() < deadline:
            try:
                if resp_parent.poll(0.05):
                    msg = json.loads(resp_parent.recv())
                    if msg.get("ready"):
                        self._worker = proc
                        self._req_conn = req_parent
                        self._resp_conn = resp_parent
                        self.ready_info = msg
                        if msg.get("restored"):
                            self.counters["snapshot_restores"] += 1
                            self.telemetry.count("serve.snapshot_restores")
                        if msg.get("restore_error"):
                            self.counters["restore_failures"] += 1
                            self.telemetry.count("serve.restore_failures")
                        return True
                    break  # first message was not a ready banner: bad spawn
            except (EOFError, OSError):
                break
            if not proc.is_alive():
                break
        if proc.is_alive():
            proc.kill()
        proc.join()
        for conn in (req_parent, resp_parent):
            try:
                conn.close()
            except OSError:
                pass
        self.counters["spawn_failures"] += 1
        self.telemetry.count("serve.spawn_failures")
        return False

    def _ensure_worker(self) -> bool:
        """A live, ready worker — respawning (with backoff) as needed."""
        if self._defunct:
            return False
        if self._worker is not None and self._worker.is_alive():
            return True
        startup_failures = 0
        while True:
            if self.incarnation > 0:
                attempt = max(1, min(self._consecutive_failures, 12))
                time.sleep(self.config.backoff.delay(attempt, self._rng))
            if self._spawn():
                if self.incarnation > 1:
                    self.counters["restarts"] += 1
                    self.telemetry.count("serve.restarts")
                return True
            startup_failures += 1
            self._consecutive_failures += 1
            if startup_failures > self.config.max_restarts:
                self._defunct = True
                return False

    def start(self) -> dict:
        """Spawn the first worker; raises :class:`ReproError` when it
        cannot come up at all."""
        if not self._ensure_worker():
            raise ReproError(
                f"serve worker failed to start after "
                f"{self.config.max_restarts + 1} attempts"
            )
        return self.ready_info

    def stop(self, signum: int = signal.SIGTERM) -> None:
        """Forward ``signum`` to the worker, reap it, release state."""
        self.closing = True
        self._stop_worker(signum)
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # -- request path ----------------------------------------------------------

    def _retry_after(self) -> float:
        # informational estimate of the next respawn delay (jitter-free so
        # it does not consume the seeded schedule)
        attempt = max(1, min(self._consecutive_failures, 12))
        delay = self.config.backoff.base * self.config.backoff.factor ** (
            attempt - 1
        )
        if self.config.backoff.max_delay is not None:
            delay = min(delay, self.config.backoff.max_delay)
        return round(delay, 4)

    def _retry_answer(self, request_id, cause: str) -> str:
        from repro.server.protocol import encode_response

        self.counters["retry_answers"] += 1
        self.telemetry.count("serve.retry_answers")
        resp: dict = {
            "ok": False,
            "error": "retry",
            "cause": cause,
            "retry_after": self._retry_after(),
            "message": f"worker lost mid-request ({cause}); retry the request",
        }
        if request_id is not None:
            resp["id"] = request_id
        return encode_response(resp)

    def _error_line(self, request_id, code: str, message: str) -> str:
        from repro.server.protocol import encode_response, error_response

        return encode_response(error_response(code, message, request_id))

    def _merge_stats(self, resp_line: str) -> str:
        from repro.server.protocol import encode_response

        try:
            resp = json.loads(resp_line)
        except ValueError:
            return resp_line
        if isinstance(resp, dict) and resp.get("ok"):
            resp["supervisor"] = {
                **self.counters,
                "incarnation": self.incarnation,
                "worker_pid": self.worker_pid,
            }
            return encode_response(resp)
        return resp_line

    def _worker_lost(self, request_id, cause: str) -> str:
        self.counters["crashes"] += 1
        self.telemetry.count("serve.crashes")
        self._consecutive_failures += 1
        self._kill_worker()
        return self._retry_answer(request_id, cause)

    def handle_line(self, line: str) -> str:
        """Process one raw request line; returns exactly one response
        line. Crash/hang/deadline events surface as ``retry`` answers."""
        request_id, op = _peek(line)
        self.counters["requests"] += 1
        if self.closing:
            return self._error_line(
                request_id, "shutting-down", "server is shutting down"
            )
        if not self._ensure_worker():
            return self._error_line(
                request_id,
                "unavailable",
                "session worker cannot be (re)started; giving up",
            )
        try:
            self._req_conn.send(line)
        except (OSError, ValueError):
            return self._worker_lost(request_id, "crash")
        started = time.monotonic()
        deadline = (
            started + self.config.request_deadline
            if self.config.request_deadline is not None
            else None
        )
        while True:
            try:
                have_resp = self._resp_conn.poll(_POLL)
            except (OSError, EOFError):
                return self._worker_lost(request_id, "crash")
            if have_resp:
                try:
                    resp_line = self._resp_conn.recv()
                except (EOFError, OSError):
                    return self._worker_lost(request_id, "crash")
                self._consecutive_failures = 0
                if op == "stats":
                    resp_line = self._merge_stats(resp_line)
                if op == "shutdown":
                    self.closing = True
                    self._stop_worker()
                return resp_line
            if not self._worker.is_alive():
                # a response may have raced the death through the pipe
                try:
                    if self._resp_conn.poll(0.2):
                        continue
                except (OSError, EOFError):
                    pass
                return self._worker_lost(request_id, "crash")
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                self.counters["deadline_kills"] += 1
                self.telemetry.count("serve.deadline_kills")
                self._consecutive_failures += 1
                self._kill_worker()
                return self._retry_answer(request_id, "deadline")
            hb = self.config.heartbeat_timeout
            if hb is not None:
                age = self._heartbeat_age()
                in_flight = now - started
                if age is not None and age >= hb and in_flight >= hb:
                    self.counters["heartbeat_kills"] += 1
                    self.telemetry.count("serve.heartbeat_kills")
                    self._consecutive_failures += 1
                    self._kill_worker()
                    return self._retry_answer(request_id, "heartbeat")

    def ask(self, request: dict) -> dict:
        """Round-trip one request dict (programmatic convenience)."""
        return json.loads(self.handle_line(json.dumps(request)))

    def shed(self, line: str, write) -> None:
        """Admission control: answer an unadmitted request immediately
        with ``overloaded`` (called from transport reader threads)."""
        request_id, _ = _peek(line)
        self.counters["shed"] += 1
        self.telemetry.count("serve.shed")
        write(
            self._error_line(
                request_id,
                "overloaded",
                f"pending queue full (max {self.config.max_pending}); "
                "retry later",
            )
        )


# --------------------------------------------------------------------------
# Transports with admission control
# --------------------------------------------------------------------------

_EOF = object()


def serve_supervised_stdio(sup: Supervisor, stdin, stdout) -> int:
    """Drive a supervisor over text streams. A reader thread admits
    requests into a bounded queue (shedding with ``overloaded`` beyond
    ``max_pending``); the calling thread is the single consumer, so
    signals still interrupt it cleanly."""
    lock = threading.Lock()

    def write(line: str) -> None:
        with lock:
            stdout.write(line + "\n")
            stdout.flush()

    pending: queuelib.Queue = queuelib.Queue()

    def reader() -> None:
        try:
            for raw in stdin:
                line = raw.strip()
                if not line:
                    continue
                if pending.qsize() >= sup.config.max_pending:
                    sup.shed(line, write)
                    continue
                pending.put(line)
        finally:
            pending.put(_EOF)

    thread = threading.Thread(target=reader, daemon=True, name="serve-stdin")
    thread.start()
    handled = 0
    eof = False
    while not (eof and pending.empty()):
        try:
            item = pending.get(timeout=0.1)
        except queuelib.Empty:
            continue
        if item is _EOF:
            eof = True
            continue
        handled += 1
        write(sup.handle_line(item))
        if sup.closing:
            break
    return handled


def serve_supervised_socket(sup: Supervisor, path: str) -> int:
    """Serve concurrent client connections on a Unix domain socket, all
    funneled through one bounded admission queue. Responses carry the
    request ``id``; shed responses may overtake queued ones."""
    from repro.server.protocol import prepare_socket_path

    prepare_socket_path(path)
    pending: queuelib.Queue = queuelib.Queue()
    stop = threading.Event()
    handled = 0

    def conn_reader(conn) -> None:
        stream = conn.makefile("rw", encoding="utf-8")
        wlock = threading.Lock()

        def write(line: str) -> None:
            try:
                with wlock:
                    stream.write(line + "\n")
                    stream.flush()
            except OSError:
                pass  # client went away; answers to it are moot

        with conn:
            for raw in stream:
                line = raw.strip()
                if not line:
                    continue
                if pending.qsize() >= sup.config.max_pending:
                    sup.shed(line, write)
                    continue
                pending.put((line, write))

    srv = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    try:
        srv.bind(path)
        srv.listen(8)
        srv.settimeout(0.1)

        def acceptor() -> None:
            while not stop.is_set():
                try:
                    conn, _ = srv.accept()
                except socketlib.timeout:
                    continue
                except OSError:
                    return
                threading.Thread(
                    target=conn_reader, args=(conn,), daemon=True,
                    name="serve-conn",
                ).start()

        threading.Thread(
            target=acceptor, daemon=True, name="serve-accept"
        ).start()
        while not sup.closing:
            try:
                line, write = pending.get(timeout=0.1)
            except queuelib.Empty:
                continue
            handled += 1
            write(sup.handle_line(line))
    finally:
        stop.set()
        srv.close()
        try:
            os.unlink(path)
        except OSError:
            pass
    return handled
