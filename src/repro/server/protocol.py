"""Line-oriented JSON protocol for ``repro serve``.

One request per line on stdin (or a Unix socket), one JSON object per
line back. Every request is an object with an ``op`` field and an
optional client-chosen ``id`` echoed verbatim in the response::

    {"id": 1, "op": "query", "kind": "interval", "proc": "main", "var": "x"}
    {"id": 1, "ok": true, "kind": "interval", "interval": [0, 9], ...}

Malformed input never kills the session: oversized lines, broken JSON,
non-object payloads, unknown ops, and analysis-level errors all produce a
one-line ``{"ok": false, "error": ..., "message": ...}`` response and the
loop keeps reading. Only a ``shutdown`` request — or a SIGINT/SIGTERM
delivered through :func:`repro.runtime.interrupt.raising_signal_handlers`,
which exits the process with the conventional ``128 + signum`` code — ends
a session.

Supported ops: ``query`` (kinds ``interval`` and ``check``), ``edit``,
``snapshot``, ``restore``, ``stats``, ``ping``, ``shutdown``.
"""

from __future__ import annotations

import json
import socket as socketlib
from typing import Any, Callable, Iterable

from repro.runtime.errors import AnalysisInterrupted, ReproError

#: Default per-request size ceiling. A line longer than this is rejected
#: without being parsed (the bytes are still drained from the stream so
#: the next request stays aligned).
MAX_REQUEST_BYTES = 1 << 20

#: Known request operations, for early rejection with a helpful message.
KNOWN_OPS = (
    "query",
    "edit",
    "snapshot",
    "restore",
    "stats",
    "ping",
    "shutdown",
)


class ProtocolError(ReproError):
    """A request that could not be accepted: too large, not JSON, not an
    object, or missing/unknown ``op``. Carries a stable machine-readable
    ``code`` for the error response."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


def decode_request(line: str, max_bytes: int = MAX_REQUEST_BYTES) -> dict[str, Any]:
    """Parse one request line, raising :class:`ProtocolError` on anything
    that is not a JSON object with a known ``op``."""
    if len(line.encode("utf-8", errors="replace")) > max_bytes:
        raise ProtocolError(
            "oversized", f"request exceeds {max_bytes} bytes"
        )
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-json", f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "request is missing an 'op' string")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            "unknown-op", f"unknown op {op!r}; expected one of {', '.join(KNOWN_OPS)}"
        )
    return payload


def encode_response(payload: dict[str, Any]) -> str:
    """Serialize a response as a single line (no embedded newlines)."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def error_response(
    code: str, message: str, request_id: Any = None
) -> dict[str, Any]:
    resp: dict[str, Any] = {"ok": False, "error": code, "message": str(message)}
    if request_id is not None:
        resp["id"] = request_id
    return resp


def dispatch_request(session, request: dict[str, Any]) -> dict[str, Any]:
    """Dispatch one decoded request against a session and return the
    response body (without the echoed ``id``). Shared by the in-process
    loop below and the supervised session worker."""
    return _dispatch(session, request)


def _dispatch(session, request: dict[str, Any]) -> dict[str, Any]:
    op = request["op"]
    if op == "ping":
        return {"ok": True, "op": "ping", "generation": session.generation}
    if op == "stats":
        return {"ok": True, "op": "stats", **session.stats()}
    if op == "query":
        kind = request.get("kind", "interval")
        if kind == "interval":
            result = session.query_interval(
                request.get("proc"),
                request.get("var"),
                line=request.get("line"),
                domain=request.get("domain"),
                mode=request.get("mode"),
            )
            return {"ok": True, "op": "query", **result.as_dict()}
        if kind == "check":
            result = session.query_check(
                request.get("proc"),
                domain=request.get("domain"),
                mode=request.get("mode"),
            )
            return {"ok": True, "op": "query", **result.as_dict()}
        raise ProtocolError("bad-request", f"unknown query kind {kind!r}")
    if op == "edit":
        if "source" in request:
            info = session.edit(source=request["source"])
        elif "function" in request and "body" in request:
            info = session.edit(
                function=request["function"], body=request["body"]
            )
        else:
            raise ProtocolError(
                "bad-request",
                "edit needs either 'source' or 'function' + 'body'",
            )
        return {"ok": True, "op": "edit", **info}
    if op == "snapshot":
        path = request.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError("bad-request", "snapshot needs a 'path' string")
        info = session.snapshot(path)
        return {"ok": True, "op": "snapshot", **info}
    if op == "restore":
        path = request.get("path")
        if not isinstance(path, str) or not path:
            raise ProtocolError("bad-request", "restore needs a 'path' string")
        info = session.restore(path)
        return {"ok": True, "op": "restore", **info}
    raise ProtocolError("unknown-op", f"unknown op {op!r}")


def serve_lines(
    session,
    lines: Iterable[str],
    write: Callable[[str], None],
    *,
    max_request_bytes: int = MAX_REQUEST_BYTES,
) -> int:
    """Drive a session over an iterable of request lines, emitting one
    response line per request through ``write``. Returns the number of
    requests handled. Robust by construction: every exception except
    :class:`AnalysisInterrupted` (and ``shutdown``) is converted into an
    error response and the loop continues."""
    handled = 0
    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        handled += 1
        request_id = None
        try:
            request = decode_request(line, max_request_bytes)
            request_id = request.get("id")
            if request["op"] == "shutdown":
                session.shutdown_requested = True
                resp: dict[str, Any] = {"ok": True, "op": "shutdown"}
                if request_id is not None:
                    resp["id"] = request_id
                write(encode_response(resp))
                break
            response = _dispatch(session, request)
            if request_id is not None:
                response["id"] = request_id
            write(encode_response(response))
        except AnalysisInterrupted:
            raise
        except ProtocolError as exc:
            write(encode_response(error_response(exc.code, str(exc), request_id)))
        except (ReproError, ValueError) as exc:
            write(encode_response(error_response("error", str(exc), request_id)))
        except Exception as exc:  # noqa: BLE001 - session must survive
            write(
                encode_response(
                    error_response(
                        "internal", f"{type(exc).__name__}: {exc}", request_id
                    )
                )
            )
    return handled


def serve_stdio(session, stdin, stdout, **kwargs) -> int:
    """Serve over text streams (the default stdin/stdout transport)."""

    def write(line: str) -> None:
        stdout.write(line + "\n")
        stdout.flush()

    return serve_lines(session, stdin, write, **kwargs)


def probe_unix_socket(path: str, timeout: float = 0.5) -> dict[str, Any] | None:
    """Is a live server listening on ``path``? Returns its ``ping``
    response (or ``{}`` when something accepted the connection but did
    not answer in time — still live), ``None`` when nothing is listening
    (connection refused / not a socket: the path is stale)."""
    try:
        with socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM) as probe:
            probe.settimeout(timeout)
            probe.connect(path)
            try:
                probe.sendall(b'{"op": "ping"}\n')
                with probe.makefile("r", encoding="utf-8") as stream:
                    line = stream.readline().strip()
                return json.loads(line) if line else {}
            except (OSError, ValueError):
                # connected but mute/garbled: someone owns the path — the
                # connect succeeding is what makes it live
                return {}
    except OSError:
        return None


def prepare_socket_path(path: str) -> None:
    """Make ``path`` safe to bind: refuse (one-line :class:`ReproError`)
    when a live server already answers there, silently remove a genuinely
    stale socket file left by a crashed or killed predecessor."""
    import os

    if not os.path.exists(path):
        return
    alive = probe_unix_socket(path)
    if alive is not None:
        detail = (
            f" (generation {alive['generation']})" if "generation" in alive else ""
        )
        raise ReproError(
            f"a live repro serve already answers on {path}{detail}; "
            "refusing to replace it — shut it down or pick another path"
        )
    os.unlink(path)


def serve_unix_socket(session, path: str, **kwargs) -> int:
    """Serve sequential client connections on a Unix domain socket. Each
    accepted connection is one line-oriented conversation; a ``shutdown``
    request (or interrupt) ends the server, EOF just ends that client.
    A live server on ``path`` is never clobbered (see
    :func:`prepare_socket_path`), and the socket file is unlinked even on
    abnormal exit."""
    import os

    prepare_socket_path(path)
    total = 0
    try:
        with socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM) as srv:
            srv.bind(path)
            srv.listen(1)
            while not session.shutdown_requested:
                conn, _ = srv.accept()
                with conn, conn.makefile("rw", encoding="utf-8") as stream:

                    def write(line: str) -> None:
                        stream.write(line + "\n")
                        stream.flush()

                    total += serve_lines(session, stream, write, **kwargs)
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
    return total
