"""Resident analysis state behind ``repro serve``.

A :class:`ServeSession` loads a program once and keeps, per engine×domain
combo, a *resident* analysis: the prepared :class:`EnginePlan` (control
graph, WTO, dependency graph, packs) plus a partially- or fully-solved
state table and the set of nodes whose entries are known-final. Point
queries are answered in one of three ways, cheapest first:

``resident``
    every node in the query's backward cone is already solved — the
    answer is a pure table read, no engine work at all;
``cone``
    the unsolved part of the cone is widening-free, so the existing
    :class:`FixpointEngine` runs restricted to it (membraned by
    :class:`~repro.analysis.incremental.ConeSpace`), warm-started from
    the resident table;
``global`` / ``global-fallback``
    strict/narrowing/widening configurations — or a cone that blows its
    per-query budget — fall back to the from-scratch whole-program solve
    (identical construction to the batch drivers), which is then cached
    as the new resident table.

Every answer is byte-identical to what a fresh ``analyze()`` of the
current program text would return: the solved set is kept backward-closed
(a solved node's inputs are always solved), cone solves are attempted
only under :func:`~repro.analysis.incremental.cone_is_exact`, and edits
retain exactly the complement of the dirty forward closure
(:func:`~repro.analysis.incremental.surviving_state`).

On ``edit`` the new program is built with the recovering frontend (an
unparseable body quarantines that function behind a havoc stub, exactly
the PR 6 contract), plans are rebuilt, resident tables are carried across
via the node correspondence, and *all* program-shape memos — the call
graph, its SCC memoization, the shard-spec cache — are invalidated by
construction: they are keyed by generation and the generation number
advances before any of them can be consulted again.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.analysis.dense import EnginePlan, prepare_interval_dense
from repro.analysis.engine import FixpointResult, FixpointStats
from repro.analysis.incremental import (
    backward_cone,
    cone_is_exact,
    demand_region,
    dep_closure,
    diff_programs,
    solve_cone,
    solve_global,
    surviving_state,
)
from repro.analysis.preanalysis import run_preanalysis
from repro.analysis.relational import prepare_rel_dense, prepare_rel_sparse
from repro.analysis.sparse import prepare_interval_sparse
from repro.frontend.errors import DiagnosticBag
from repro.ir.callgraph import build_callgraph
from repro.ir.program import build_program
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import (
    load_checkpoint,
    save_checkpoint,
    state_from_wire,
    state_to_wire,
)
from repro.runtime.errors import BudgetExceeded
from repro.telemetry.core import Telemetry

DOMAINS = ("interval", "octagon")
MODES = ("vanilla", "base", "sparse")

#: Above this fraction of the program, a cone solve stops being cheaper
#: than reusing the cached global solve machinery — fall through.
DEFAULT_CONE_THRESHOLD = 0.9

_SNAPSHOT_KIND = "serve-resident"


@dataclass
class ResidentAnalysis:
    """One combo's warm state: the prepared plan, the (partial) fixpoint
    table, and the backward-closed set of nodes whose entries are final."""

    domain: str
    mode: str
    plan: EnginePlan
    table: dict[int, object] = field(default_factory=dict)
    solved: set[int] = field(default_factory=set)
    #: memoized backward cones for this plan (cleared on edit)
    cone_cache: dict[int, frozenset[int]] = field(default_factory=dict)
    #: cached AnalysisRun facade over the current table (its reaching-walk
    #: memo must be dropped whenever the table changes)
    facade: object = None
    #: LRU clock tick of the last query that touched this combo
    last_used: int = 0
    #: memoized :meth:`approx_bytes` (``None`` = table changed, recompute)
    bytes_cache: int | None = None

    def cone(self, nid: int) -> frozenset[int]:
        hit = self.cone_cache.get(nid)
        if hit is None:
            hit = frozenset(backward_cone(self.plan, (nid,)))
            self.cone_cache[nid] = hit
        return hit

    def mark_table_changed(self) -> None:
        self.facade = None
        self.bytes_cache = None

    def approx_bytes(self) -> int:
        """Resident footprint estimate: the wire-encoded size of every
        table cell (backend-independent, and exactly what a snapshot of
        this combo would cost). Memoized until the table changes."""
        if self.bytes_cache is None:
            total = 0
            for state in self.table.values():
                total += len(
                    json.dumps(state_to_wire(state), separators=(",", ":"))
                )
            self.bytes_cache = total
        return self.bytes_cache


class ServeSession:
    """A long-running query/edit session over one translation unit."""

    def __init__(
        self,
        source: str,
        filename: str = "<serve>",
        *,
        domain: str = "interval",
        mode: str = "sparse",
        strict: bool = True,
        widen: bool = True,
        narrowing_passes: int = 0,
        preprocess_source: bool = False,
        scheduler: str = "wto",
        query_budget_seconds: float | None = None,
        query_max_iterations: int | None = None,
        cone_threshold: float = DEFAULT_CONE_THRESHOLD,
        max_resident_bytes: int | None = None,
        telemetry=None,
    ) -> None:
        if domain not in DOMAINS:
            raise ValueError(f"unknown domain {domain!r}")
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}")
        self.filename = filename
        self.default_domain = domain
        self.default_mode = mode
        self.strict = strict
        self.widen = widen
        self.narrowing_passes = narrowing_passes
        self.preprocess_source = preprocess_source
        self.scheduler = scheduler
        self.query_budget_seconds = query_budget_seconds
        self.query_max_iterations = query_max_iterations
        self.cone_threshold = cone_threshold
        self.max_resident_bytes = max_resident_bytes
        self.telemetry = Telemetry.coerce(telemetry)
        self.generation = 0
        self.shutdown_requested = False
        self._use_clock = 0
        self.counters = {
            "resident": 0,
            "cone": 0,
            "global": 0,
            "fallback": 0,
            "edits": 0,
            "evictions": 0,
            "snapshots": 0,
        }
        #: stats of the most recent engine run (None for pure table reads)
        self.last_stats: FixpointStats | None = None
        #: how the most recent query was answered
        self.last_solve: str | None = None
        self.residents: dict[tuple[str, str], ResidentAnalysis] = {}
        self._packs_cache: tuple[int, object] | None = None
        self._callgraph_cache: tuple[int, object] | None = None
        self._scc_dag_cache: tuple[int, object] | None = None
        self.source = ""
        self.program, self.pre = self._build(source)
        self.source = source

    # -- program loading -------------------------------------------------------

    def _build(self, source: str):
        """Frontend + pre-analysis for one program text, with PR 6
        recovery semantics (quarantine, not failure, for bad bodies)."""
        bag = DiagnosticBag()
        text = source
        with self.telemetry.span("frontend", file=self.filename):
            if self.preprocess_source:
                from repro.frontend.preprocessor import preprocess

                text = preprocess(text, self.filename, diagnostics=bag)
            program = build_program(
                text, self.filename, telemetry=self.telemetry, diagnostics=bag
            )
        if bag.errors() and not program.analyzed_functions():
            raise bag.to_error(f"no recoverable functions in {self.filename}")
        pre = run_preanalysis(program, telemetry=self.telemetry)
        return program, pre

    def _packs(self):
        if self._packs_cache is None or self._packs_cache[0] != self.generation:
            from repro.domains.packs import build_packs

            self._packs_cache = (self.generation, build_packs(self.program))
        return self._packs_cache[1]

    def callgraph(self):
        """The current program's call graph. Memoized per generation —
        an edit advances the generation before any lookup can happen, so
        a stale SCC decomposition is impossible by construction."""
        if (
            self._callgraph_cache is None
            or self._callgraph_cache[0] != self.generation
        ):
            pre = self.pre
            self._callgraph_cache = (
                self.generation,
                build_callgraph(
                    self.program,
                    resolve=lambda node: pre.site_callees.get(node.nid, ()),
                ),
            )
        return self._callgraph_cache[1]

    def scc_dag(self):
        """The call graph's SCC condensation (shard spec source), with the
        same generation-keyed invalidation as :meth:`callgraph`."""
        if (
            self._scc_dag_cache is None
            or self._scc_dag_cache[0] != self.generation
        ):
            self._scc_dag_cache = (self.generation, self.callgraph().condense())
        return self._scc_dag_cache[1]

    def _prepare(self, domain: str, mode: str) -> EnginePlan:
        if domain == "interval":
            if mode == "sparse":
                return prepare_interval_sparse(
                    self.program,
                    self.pre,
                    strict=self.strict,
                    widen=self.widen,
                    telemetry=self.telemetry,
                )
            return prepare_interval_dense(
                self.program,
                self.pre,
                localize=(mode == "base"),
                strict=self.strict,
                widen=self.widen,
            )
        if mode == "sparse":
            return prepare_rel_sparse(
                self.program,
                self.pre,
                packs=self._packs(),
                strict=self.strict,
                widen=self.widen,
                telemetry=self.telemetry,
            )
        return prepare_rel_dense(
            self.program,
            self.pre,
            packs=self._packs(),
            localize=(mode == "base"),
            strict=self.strict,
            widen=self.widen,
        )

    def resident(self, domain: str | None = None, mode: str | None = None):
        """The (lazily created) resident analysis for a combo."""
        domain = domain or self.default_domain
        mode = mode or self.default_mode
        if domain not in DOMAINS:
            raise ValueError(f"unknown domain {domain!r}")
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}")
        key = (domain, mode)
        res = self.residents.get(key)
        if res is None:
            res = ResidentAnalysis(domain, mode, self._prepare(domain, mode))
            self.residents[key] = res
        self._use_clock += 1
        res.last_used = self._use_clock
        return res

    # -- memory-pressure degradation -------------------------------------------

    def resident_bytes(self) -> int:
        """Estimated bytes held by all resident tables (wire-encoded)."""
        return sum(res.approx_bytes() for res in self.residents.values())

    def maybe_evict(self) -> list[str]:
        """Graceful degradation under memory pressure: while the resident
        footprint exceeds ``max_resident_bytes``, drop whole per-combo
        resident analyses least-recently-used first. Evicted combos fall
        back to a lazy re-solve on their next query — strictly a
        performance loss, never a precision or correctness one."""
        if self.max_resident_bytes is None or not self.residents:
            return []
        evicted: list[str] = []
        total = self.resident_bytes()
        while total > self.max_resident_bytes and self.residents:
            key, res = min(
                self.residents.items(), key=lambda kv: kv[1].last_used
            )
            total -= res.approx_bytes()
            del self.residents[key]
            evicted.append("/".join(key))
            self.counters["evictions"] += 1
            self.telemetry.count("serve.evictions")
        return evicted

    # -- solving ---------------------------------------------------------------

    def _query_budget(self) -> Budget | None:
        if self.query_budget_seconds is None and self.query_max_iterations is None:
            return None
        return Budget(
            max_seconds=self.query_budget_seconds,
            max_iterations=self.query_max_iterations,
            check_every=1,
        )

    def _solve_globally(self, res: ResidentAnalysis) -> None:
        table, stats = solve_global(
            res.plan,
            narrowing_passes=self.narrowing_passes,
            scheduler=self.scheduler,
            telemetry=self.telemetry,
        )
        res.table = table
        res.solved = set(res.plan.node_ids)
        res.mark_table_changed()
        self.last_stats = stats

    def _ensure_solved(self, res: ResidentAnalysis, need: frozenset[int]) -> str:
        """Make every node in ``need`` final in the resident table, the
        cheapest correct way; returns how (``resident``/``cone``/
        ``global``/``global-fallback``)."""
        pending = set(need) - res.solved
        if not pending:
            self.last_stats = None
            return "resident"
        plan = res.plan
        cone_ok = (
            cone_is_exact(plan, pending, self.narrowing_passes)
            and len(pending) <= self.cone_threshold * len(plan.node_ids)
        )
        if cone_ok:
            try:
                table, stats = solve_cone(
                    plan,
                    pending,
                    res.table,
                    budget=self._query_budget(),
                    scheduler=self.scheduler,
                    telemetry=self.telemetry,
                )
            except BudgetExceeded:
                self._solve_globally(res)
                return "global-fallback"
            for nid in pending:
                if nid in table:
                    res.table[nid] = table[nid]
                else:
                    res.table.pop(nid, None)
            res.solved |= pending
            res.mark_table_changed()
            self.last_stats = stats
            return "cone"
        self._solve_globally(res)
        return "global"

    def _facade(self, res: ResidentAnalysis):
        """An :class:`repro.api.AnalysisRun` over the resident table, for
        its reaching-definition query logic. Rebuilt whenever the table
        changes (the facade memoizes lookups)."""
        if res.facade is None:
            from repro.api import AnalysisRun

            result = FixpointResult(
                res.table,
                FixpointStats(),
                pre=self.pre,
                defuse=res.plan.defuse,
                deps=res.plan.deps,
                graph=res.plan.graph,
                packs=res.plan.packs,
                bottom=res.plan.state_factory,
            )
            res.facade = AnalysisRun(
                self.program,
                self.pre,
                res.domain,
                res.mode,
                result,
                telemetry=self.telemetry,
            )
        return res.facade

    def _demand(
        self, res: ResidentAnalysis, nid: int, var: str, owner: str | None
    ) -> frozenset[int]:
        """The nodes whose table entries must be final before the facade
        can answer an interval query at ``nid``. Sparse plans know the
        reaching-walk's read region statically (D̂ sites shadow), so the
        demand set is its dependency-backward closure — usually a small
        slice, and in particular disjoint from dirty regions no dependency
        path connects to the query. Dense plans read joins over control
        predecessors, so they need the full backward cone."""
        from repro.domains.absloc import VarLoc

        plan = res.plan
        if not plan.sparse or plan.strict or plan.defuse is None:
            return res.cone(nid)
        loc = VarLoc(var, owner)
        if res.domain == "interval":
            keys = [loc]
        else:
            keys = list(plan.packs.packs_of(loc))
            if not keys:
                return frozenset((nid,))
        return frozenset(dep_closure(plan, demand_region(plan, nid, keys)))

    def _locate(self, proc: str, line: int | None) -> int:
        cfg = self.program.cfgs.get(proc)
        if cfg is None or cfg.exit is None:
            raise ValueError(f"no procedure {proc!r}")
        if line is None:
            return cfg.exit.nid
        best = None
        for node in cfg.nodes:
            if node.line and node.line <= line:
                best = node
        return best.nid if best is not None else cfg.entry.nid

    # -- queries ---------------------------------------------------------------

    def query_interval(
        self,
        proc: str,
        var: str,
        line: int | None = None,
        domain: str | None = None,
        mode: str | None = None,
    ):
        """Interval of ``var`` in ``proc`` — at the procedure exit, or at
        the last control point on/before ``line``."""
        from repro.api import QueryResult

        if not isinstance(proc, str) or not isinstance(var, str):
            raise ValueError("interval query needs 'proc' and 'var' strings")
        started = time.perf_counter()
        res = self.resident(domain, mode)
        nid = self._locate(proc, line)
        owner: str | None = proc
        info = self.program.proc_infos.get(proc)
        if info is not None and var not in info.var_types:
            owner = None
        with self.telemetry.span(
            "query", kind="interval", domain=res.domain, mode=res.mode
        ) as sp:
            need = self._demand(res, nid, var, owner)
            solve = self._ensure_solved(res, need)
            self.counters[
                "fallback" if solve == "global-fallback" else solve
            ] += 1
            self.telemetry.count(f"query.{solve}")
            interval = self._facade(res).interval_of(nid, var, owner)
            visited = len(self.last_stats.visited) if self.last_stats else 0
            sp.set(solve=solve, visited=visited)
        self.last_solve = solve
        self.maybe_evict()
        return QueryResult(
            kind="interval",
            domain=res.domain,
            mode=res.mode,
            proc=proc,
            var=var,
            nid=nid,
            line=line,
            interval=interval,
            solve=solve,
            visited=visited,
            elapsed=time.perf_counter() - started,
            generation=self.generation,
        )

    def query_check(
        self,
        proc: str | None = None,
        domain: str | None = None,
        mode: str | None = None,
    ):
        """Buffer-overrun reports for one procedure (or the whole unit).
        Interval domain only — the checker's contract."""
        from repro.api import QueryResult

        res = self.resident(domain or "interval", mode)
        if res.domain != "interval":
            raise ValueError("the overrun checker needs the interval domain")
        started = time.perf_counter()
        if proc is not None:
            cfg = self.program.cfgs.get(proc)
            if cfg is None:
                raise ValueError(f"no procedure {proc!r}")
            targets = [n.nid for n in cfg.nodes]
        else:
            targets = list(res.plan.node_ids)
        with self.telemetry.span(
            "query", kind="check", domain=res.domain, mode=res.mode
        ) as sp:
            need = frozenset(backward_cone(res.plan, targets))
            solve = self._ensure_solved(res, need)
            self.counters[
                "fallback" if solve == "global-fallback" else solve
            ] += 1
            self.telemetry.count(f"query.{solve}")
            reports = self._facade(res).overrun_reports()
            if proc is not None:
                reports = [r for r in reports if r.proc == proc]
            visited = len(self.last_stats.visited) if self.last_stats else 0
            sp.set(solve=solve, alarms=len(reports), visited=visited)
        self.last_solve = solve
        self.maybe_evict()
        return QueryResult(
            kind="check",
            domain=res.domain,
            mode=res.mode,
            proc=proc,
            var=None,
            nid=None,
            line=None,
            interval=None,
            reports=reports,
            solve=solve,
            visited=visited,
            elapsed=time.perf_counter() - started,
            generation=self.generation,
        )

    # -- edits -----------------------------------------------------------------

    def _splice_function(self, function: str, body: str) -> str:
        """Replace ``function``'s body in the current source text. The
        replacement is padded with blank lines (when it is shorter) so
        later functions keep their line numbers — allocation sites embed
        lines, and a shifted site would conservatively dirty its proc."""
        lines = self.source.splitlines()
        open_idx = None
        for i, text in enumerate(lines):
            stripped = text.split("//")[0]
            if function in stripped and "(" in stripped:
                j = i
                while j < len(lines) and "{" not in lines[j].split("//")[0]:
                    if ";" in lines[j].split("//")[0]:
                        break  # a prototype, not a definition
                    j += 1
                if j < len(lines) and "{" in lines[j].split("//")[0]:
                    before = stripped[: stripped.index(function)]
                    if "=" not in before:
                        open_idx = j
                        break
        if open_idx is None:
            raise ValueError(f"cannot find a definition of {function!r}")
        depth = 0
        close_idx = None
        for j in range(open_idx, len(lines)):
            code = lines[j].split("//")[0]
            depth += code.count("{") - code.count("}")
            if depth == 0 and "}" in code:
                close_idx = j
                break
        if close_idx is None:
            raise ValueError(f"unterminated body for {function!r}")
        if close_idx <= open_idx:
            raise ValueError(
                f"{function!r} has a single-line body; edit with full 'source'"
            )
        old_span = close_idx - open_idx - 1
        new_lines = body.splitlines()
        if len(new_lines) < old_span:
            new_lines = new_lines + [""] * (old_span - len(new_lines))
        return "\n".join(
            lines[: open_idx + 1] + new_lines + lines[close_idx:]
        ) + ("\n" if self.source.endswith("\n") else "")

    def edit(
        self,
        source: str | None = None,
        function: str | None = None,
        body: str | None = None,
    ) -> dict:
        """Replace the program text (whole ``source``, or one ``function``
        body) and carry every resident analysis across the edit. Nothing
        is committed until the new program builds — a frontend hard
        failure leaves the session on the previous generation."""
        if source is None:
            if function is None or body is None:
                raise ValueError("edit needs source, or function + body")
            source = self._splice_function(function, body)
        with self.telemetry.span("edit", file=self.filename) as sp:
            new_program, new_pre = self._build(source)
            old_program = self.program
            diff = diff_programs(old_program, new_program)
            self.source = source
            self.program = new_program
            self.pre = new_pre
            self.generation += 1
            self.counters["edits"] += 1
            self.telemetry.count("edit.edits")
            per_resident: dict[str, dict] = {}
            for key, res in list(self.residents.items()):
                new_plan = self._prepare(*key)
                table, solved, n_dirty = surviving_state(
                    diff, res.table, res.solved, res.plan, new_plan
                )
                res.plan = new_plan
                res.table = table
                res.solved = solved
                res.cone_cache.clear()
                res.mark_table_changed()
                per_resident["/".join(key)] = {
                    "retained": len(solved),
                    "seed_dirty": n_dirty,
                    "nodes": len(new_plan.node_ids),
                }
                self.telemetry.count("edit.retained_nodes", len(solved))
                self.telemetry.count("edit.dirty_nodes", n_dirty)
            sp.set(
                changed_procs=len(diff.changed_procs),
                generation=self.generation,
            )
        self.maybe_evict()
        return {
            "generation": self.generation,
            "changed_procs": sorted(diff.changed_procs),
            "quarantined": sorted(self.program.quarantined),
            "residents": per_resident,
        }

    # -- snapshot / restore ----------------------------------------------------

    def _fingerprint(self) -> str:
        spec = {
            "kind": _SNAPSHOT_KIND,
            "source": hashlib.sha256(self.source.encode("utf-8")).hexdigest(),
            "strict": self.strict,
            "widen": self.widen,
            "narrowing_passes": self.narrowing_passes,
            "scheduler": self.scheduler,
        }
        blob = json.dumps(spec, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def snapshot(self, path: str) -> dict:
        """Persist every resident table through the PR 5 checkpoint codec
        (digest-protected, atomically written)."""
        residents = {}
        for (domain, mode), res in self.residents.items():
            residents[f"{domain}/{mode}"] = {
                "solved": sorted(res.solved),
                "table": [
                    [nid, state_to_wire(state)]
                    for nid, state in sorted(res.table.items())
                ],
            }
        payload = {
            "kind": _SNAPSHOT_KIND,
            "fingerprint": self._fingerprint(),
            "generation": self.generation,
            "residents": residents,
        }
        nbytes = save_checkpoint(path, payload)
        self.counters["snapshots"] += 1
        self.telemetry.count("serve.snapshots")
        return {
            "path": path,
            "bytes": nbytes,
            "residents": len(residents),
            "generation": self.generation,
        }

    def restore(self, path: str) -> dict:
        """Warm-start resident tables from a snapshot. Fails closed (PR 5
        semantics) when the snapshot belongs to different program text or
        engine configuration."""
        payload = load_checkpoint(path, expect_fingerprint=self._fingerprint())
        restored = []
        for key, wire in payload.get("residents", {}).items():
            domain, _, mode = key.partition("/")
            res = self.resident(domain, mode)
            res.table = {
                nid: state_from_wire(state_w) for nid, state_w in wire["table"]
            }
            res.solved = set(wire["solved"])
            res.cone_cache.clear()
            res.mark_table_changed()
            restored.append(key)
        return {"path": path, "residents": sorted(restored)}

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        residents = {}
        for (domain, mode), res in self.residents.items():
            row = {
                "solved": len(res.solved),
                "nodes": len(res.plan.node_ids),
            }
            if self.max_resident_bytes is not None:
                row["bytes"] = res.approx_bytes()
            residents[f"{domain}/{mode}"] = row
        out = {
            "generation": self.generation,
            "procedures": len(self.program.cfgs),
            "quarantined": sorted(self.program.quarantined),
            "queries": dict(self.counters),
            "residents": residents,
        }
        if self.max_resident_bytes is not None:
            out["max_resident_bytes"] = self.max_resident_bytes
        return out
