"""Long-running demand-driven query server (``repro serve``).

:mod:`repro.server.protocol` — line-oriented JSON request/response codec.
:mod:`repro.server.session` — resident analysis state, cone-restricted
queries, incremental edits.
:mod:`repro.server.supervisor` — crash-recovering supervised runtime
(worker child, watchdog deadlines, snapshot restore, admission control).
:mod:`repro.server.chaos` — seeded fault-scenario harness for the
recovery invariant (also the CI ``serve-chaos`` entry point).
"""

from repro.server.protocol import (
    MAX_REQUEST_BYTES,
    ProtocolError,
    decode_request,
    dispatch_request,
    encode_response,
    error_response,
    prepare_socket_path,
    probe_unix_socket,
    serve_lines,
)
from repro.server.session import ResidentAnalysis, ServeSession
from repro.server.supervisor import (
    Supervisor,
    SupervisorConfig,
    serve_supervised_stdio,
    serve_supervised_socket,
)

__all__ = [
    "MAX_REQUEST_BYTES",
    "ProtocolError",
    "ResidentAnalysis",
    "ServeSession",
    "Supervisor",
    "SupervisorConfig",
    "decode_request",
    "dispatch_request",
    "encode_response",
    "error_response",
    "prepare_socket_path",
    "probe_unix_socket",
    "serve_lines",
    "serve_supervised_socket",
    "serve_supervised_stdio",
]
