"""Long-running demand-driven query server (``repro serve``).

:mod:`repro.server.protocol` — line-oriented JSON request/response codec.
:mod:`repro.server.session` — resident analysis state, cone-restricted
queries, incremental edits.
"""

from repro.server.protocol import (
    MAX_REQUEST_BYTES,
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    serve_lines,
)
from repro.server.session import ResidentAnalysis, ServeSession

__all__ = [
    "MAX_REQUEST_BYTES",
    "ProtocolError",
    "ResidentAnalysis",
    "ServeSession",
    "decode_request",
    "encode_response",
    "error_response",
    "serve_lines",
]
