"""Seeded chaos harness for the supervised serve runtime.

Drives a :class:`~repro.server.supervisor.Supervisor` through a seeded
request schedule while injecting one fault scenario, with an uncrashed
reference :class:`~repro.server.session.ServeSession` processing exactly
the acked requests alongside. The property under test is the recovery
invariant:

1. the server never dies — every request eventually gets a one-line JSON
   answer (possibly through bounded ``retry`` rounds);
2. every successful answer is **byte-identical in its semantic fields**
   to the never-crashed reference session's answer (timings and visit
   counts are excluded: recovery legitimately re-solves).

Scenarios: ``kill`` (SIGKILL mid-query), ``hang`` (worker sleeps past the
hard request deadline), ``heartbeat`` (same hang, detected by heartbeat
staleness), ``kill-edit`` (SIGKILL inside the crash-mid-edit atomicity
window), ``corrupt-snapshot`` (crash + snapshot bytes flipped before the
respawn, forcing the fail-closed restore). Every schedule is derived from
a seed, so a failure replays exactly.

CI entry point (the ``serve-chaos`` job)::

    PYTHONPATH=src python -m repro.server.chaos --report serve-chaos.json

runs the scenario matrix against ``examples/corpus`` programs plus a
generated exact-mode workload, adds an overload-burst run against the
real CLI, and exits nonzero when any invariant is violated.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.runtime.faults import FaultPlan
from repro.server.protocol import dispatch_request
from repro.server.session import ServeSession
from repro.server.supervisor import BackoffPolicy, Supervisor, SupervisorConfig

SCENARIOS = ("kill", "hang", "heartbeat", "kill-edit", "corrupt-snapshot")

#: response fields that may legitimately differ between a recovered and a
#: never-crashed session: timings, engine work, answer provenance, and the
#: edit response's per-resident retention report (a crash legitimately
#: empties the resident cache; the *answers* must still match)
NONSEMANTIC_FIELDS = ("elapsed_ms", "visited", "solve", "residents")

#: bounded retry budget per request — generous relative to max_restarts
MAX_RETRIES = 20


def semantic(resp: dict) -> dict:
    """A response reduced to its semantic fields (order-stable)."""
    return {k: v for k, v in resp.items() if k not in NONSEMANTIC_FIELDS}


def fault_for(scenario: str, rng: random.Random, n_ops: int) -> FaultPlan:
    """The fault plan for one scenario, positioned by ``rng`` inside the
    schedule (never the very first request, so some state exists)."""
    at = rng.randint(2, max(2, n_ops - 1))
    if scenario == "kill":
        return FaultPlan(kill_request_at=at)
    if scenario in ("hang", "heartbeat"):
        return FaultPlan(hang_request_at=at, hang_seconds=30.0)
    if scenario == "kill-edit":
        return FaultPlan(kill_edit_at=1)
    if scenario == "corrupt-snapshot":
        return FaultPlan(kill_request_at=at, corrupt_snapshot=True)
    raise ValueError(f"unknown scenario {scenario!r}")


def config_for(scenario: str, faults: FaultPlan, seed: int) -> SupervisorConfig:
    return SupervisorConfig(
        request_deadline=None if scenario == "heartbeat" else 2.0,
        heartbeat_timeout=0.5 if scenario == "heartbeat" else None,
        snapshot_every=1,
        backoff=BackoffPolicy(base=0.02, factor=2.0, jitter=0.25, max_delay=0.25),
        seed=seed,
        faults=faults,
    )


def build_schedule(
    rng: random.Random,
    n_ops: int,
    queries: list[tuple[str, str]],
    combos: list[tuple[str, str]],
    edits: list[dict] | None,
    scenario: str,
) -> list[dict]:
    """A seeded request schedule: interval queries across combos, pings,
    stats, and (when edit material is available) edits. ``kill-edit``
    schedules an edit early so the fault window is reachable."""
    ops: list[dict] = []
    edits = list(edits or [])
    want_edit_at = 2 if scenario == "kill-edit" and edits else None
    for i in range(n_ops):
        if want_edit_at == i and edits:
            ops.append({"op": "edit", **edits.pop(0)})
            continue
        roll = rng.random()
        if i == 0:
            roll = 1.0  # the first op is always a query: create state
                        # (and a snapshot) before any fault can land
        if roll < 0.08:
            ops.append({"op": "ping"})
        elif roll < 0.16:
            ops.append({"op": "stats"})
        elif roll < 0.28 and edits:
            ops.append({"op": "edit", **edits.pop(0)})
        else:
            proc, var = queries[rng.randrange(len(queries))]
            domain, mode = combos[rng.randrange(len(combos))]
            ops.append(
                {
                    "op": "query",
                    "kind": "interval",
                    "proc": proc,
                    "var": var,
                    "domain": domain,
                    "mode": mode,
                }
            )
    return ops


def send_until_answered(
    sup: Supervisor, request: dict, violations: list[str]
) -> tuple[dict, int]:
    """Send a request, resending on ``retry`` answers, until a terminal
    answer arrives. Returns ``(response, retries)``."""
    retries = 0
    while True:
        resp = sup.ask(request)
        if not isinstance(resp, dict):
            violations.append(f"non-object response for {request}: {resp!r}")
            return {}, retries
        if resp.get("error") == "retry":
            retries += 1
            if retries > MAX_RETRIES:
                violations.append(f"request never recovered: {request}")
                return resp, retries
            time.sleep(min(float(resp.get("retry_after", 0.05)), 0.5))
            continue
        return resp, retries


def run_chaos(
    source: str,
    filename: str,
    *,
    scenario: str,
    seed: int,
    n_ops: int = 14,
    queries: list[tuple[str, str]],
    combos: list[tuple[str, str]] | None = None,
    edits: list[dict] | None = None,
    session_kwargs: dict | None = None,
) -> dict:
    """One seeded chaos run; returns a report dict whose ``violations``
    list is empty iff the recovery invariant held."""
    session_kwargs = dict(session_kwargs or {})
    combos = combos or [
        (
            session_kwargs.get("domain", "interval"),
            session_kwargs.get("mode", "sparse"),
        )
    ]
    rng = random.Random(seed)
    faults = fault_for(scenario, rng, n_ops)
    schedule = build_schedule(rng, n_ops, queries, combos, edits, scenario)

    violations: list[str] = []
    sup = Supervisor(
        source,
        filename,
        config=config_for(scenario, faults, seed),
        **session_kwargs,
    )
    reference = ServeSession(source, filename, **session_kwargs)
    total_retries = 0
    answered = 0
    try:
        sup.start()
        for i, request in enumerate(schedule):
            request = {**request, "id": i}
            resp, retries = send_until_answered(sup, request, violations)
            total_retries += retries
            if not resp.get("ok"):
                if resp.get("error") != "retry":
                    violations.append(
                        f"op {i} ({request['op']}) failed terminally: {resp}"
                    )
                continue
            answered += 1
            if resp.get("id") != i:
                violations.append(f"op {i}: id mismatch in {resp}")
            if request["op"] in ("ping", "stats"):
                # the reference tracks generations through its own edits;
                # compare generation only (stats counters legitimately
                # differ: the supervised side re-solves after crashes)
                if resp.get("generation") != reference.generation:
                    violations.append(
                        f"op {i}: generation {resp.get('generation')} != "
                        f"reference {reference.generation}"
                    )
                continue
            ref_resp = dispatch_request(reference, dict(request))
            ref_resp["id"] = i
            got, want = semantic(resp), semantic(ref_resp)
            if got != want:
                violations.append(
                    f"op {i} ({request['op']}) diverged from the uncrashed "
                    f"reference:\n  got  {json.dumps(got, sort_keys=True)}"
                    f"\n  want {json.dumps(want, sort_keys=True)}"
                )
        stats, _ = send_until_answered(sup, {"op": "stats", "id": "final"}, violations)
    finally:
        counters = dict(sup.counters)
        incarnation = sup.incarnation
        sup.stop()

    # scenario-specific expectations: the fault must actually have bitten
    if scenario in ("kill", "kill-edit", "corrupt-snapshot"):
        if counters["restarts"] < 1:
            violations.append(f"{scenario}: expected at least one restart")
    if scenario == "hang" and counters["deadline_kills"] < 1:
        violations.append("hang: expected a deadline kill")
    if scenario == "heartbeat" and counters["heartbeat_kills"] < 1:
        violations.append("heartbeat: expected a heartbeat kill")
    if scenario == "corrupt-snapshot" and counters["restore_failures"] < 1:
        violations.append(
            "corrupt-snapshot: expected the restore to fail closed"
        )

    return {
        "scenario": scenario,
        "seed": seed,
        "file": filename,
        "ops": len(schedule),
        "answered": answered,
        "retries": total_retries,
        "incarnations": incarnation,
        "supervisor": counters,
        "session_stats": stats.get("queries") if isinstance(stats, dict) else None,
        "violations": violations,
        "ok": not violations,
    }


# --------------------------------------------------------------------------
# CI matrix (python -m repro.server.chaos)
# --------------------------------------------------------------------------


def generated_workload(seed: int = 7, n_versions: int = 3):
    """A loop-free generated program (exact mode converges without
    widening), interval queries over it, and whole-source edit payloads
    (later versions of the same program shape). Shared with the test
    suite's chaos property tests."""
    from repro.bench.codegen import WorkloadSpec, generate_source

    def spec(s: int) -> WorkloadSpec:
        return WorkloadSpec(
            name="chaos",
            n_functions=5,
            n_globals=4,
            n_arrays=1,
            array_len=8,
            stmts_per_function=6,
            loops_per_function=0,
            calls_per_function=2,
            pointer_ops_per_function=1,
            recursion_cycle=0,
            funcptr_sites=0,
            unique_callees=True,
            seed=s,
        )

    versions = [generate_source(spec(seed + 1000 * k)) for k in range(n_versions)]
    queries = [
        (proc, var)
        for proc in ("main", "f0", "f2", "f4")
        for var in ("g0", "g1", "g2", "v0", "acc")
    ]
    edits = [{"source": src} for src in versions[1:]]
    return versions[0], queries, edits


def _overload_burst(
    path: str, *, burst: int = 60, max_pending: int = 4
) -> dict:
    """Overload scenario against the real CLI: the first request is a
    slow cold whole-unit check; a pipelined burst behind it must be shed
    with ``overloaded`` (never dropped, never a crash), and EOF must end
    the supervised server with exit code 0."""
    import os
    import subprocess

    repo = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))))
    lines = ['{"id": "slow", "op": "query", "kind": "check"}']
    lines += [
        json.dumps({"id": i, "op": "ping"}) for i in range(burst)
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo, "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            path,
            "--cpp",
            "--supervised",
            "--max-pending",
            str(max_pending),
        ],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        env=env,
        cwd=repo,
        timeout=300,
    )
    violations: list[str] = []
    if proc.returncode != 0:
        violations.append(
            f"overload: exit code {proc.returncode}, stderr: {proc.stderr[-500:]}"
        )
    responses = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            responses.append(json.loads(line))
        except ValueError:
            violations.append(f"overload: non-JSON response line {line[:120]!r}")
    if len(responses) != len(lines):
        violations.append(
            f"overload: {len(lines)} requests but {len(responses)} responses"
        )
    shed = sum(1 for r in responses if r.get("error") == "overloaded")
    served = sum(1 for r in responses if r.get("ok"))
    if shed < 1:
        violations.append("overload: expected at least one shed response")
    if served < 1:
        violations.append("overload: expected at least one served response")
    return {
        "scenario": "overload",
        "file": path,
        "ops": len(lines),
        "served": served,
        "shed": shed,
        "violations": violations,
        "ok": not violations,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.chaos",
        description="supervised-serve chaos matrix (CI)",
    )
    parser.add_argument("--report", default=None, help="write a JSON report")
    parser.add_argument("--seeds", type=int, default=1, help="seeds per cell")
    parser.add_argument(
        "--corpus",
        default="examples/corpus/wc_count.c",
        help="corpus program for the widening-mode cells",
    )
    parser.add_argument(
        "--scenarios", nargs="*", default=list(SCENARIOS), choices=SCENARIOS
    )
    args = parser.parse_args(argv)

    reports: list[dict] = []

    with open(args.corpus, encoding="utf-8") as f:
        corpus_source = f.read()
    corpus_queries = [
        ("main", "lines"),
        ("main", "words"),
        ("count_buffer", "i"),
        ("report_totals", "total"),
    ]
    gen_source, gen_queries, gen_edits = generated_workload()

    for scenario in args.scenarios:
        for seed in range(args.seeds):
            # widening-mode corpus cell (recovery re-solves globally, so
            # answers stay deterministic even with widening)
            if scenario != "kill-edit":
                reports.append(
                    run_chaos(
                        corpus_source,
                        args.corpus,
                        scenario=scenario,
                        seed=seed,
                        queries=corpus_queries,
                        session_kwargs={"preprocess_source": True},
                    )
                )
            # exact-mode generated cell with edits (byte-identity across
            # edits + all six combos is covered by the test suite; CI uses
            # the default combo plus edits for speed)
            reports.append(
                run_chaos(
                    gen_source,
                    "<generated>",
                    scenario=scenario,
                    seed=100 + seed,
                    queries=gen_queries,
                    edits=[dict(e) for e in gen_edits],
                    session_kwargs={"strict": False, "widen": False},
                )
            )
            print(
                f"[chaos] {scenario} seed={seed}: "
                + ("ok" if reports[-1]["ok"] else "VIOLATIONS"),
                flush=True,
            )

    reports.append(_overload_burst(args.corpus))
    print(
        f"[chaos] overload: " + ("ok" if reports[-1]["ok"] else "VIOLATIONS"),
        flush=True,
    )

    failed = [r for r in reports if not r["ok"]]
    summary = {
        "runs": len(reports),
        "failed": len(failed),
        "reports": reports,
    }
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
    for r in failed:
        for v in r["violations"]:
            print(f"[chaos] {r['scenario']}: {v}", file=sys.stderr)
    print(f"[chaos] {len(reports)} runs, {len(failed)} failed", flush=True)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
