"""The in-process tracing/metrics registry.

The paper's whole evaluation (Section 6, Tables 1–3) is a *per-phase*
story: pre-analysis time, dependency-generation time, fixpoint time and
peak memory, per analyzer. This module is the one instrumentation layer
every pipeline phase reports into, so benches, the CLI and tests read a
single consistent metrics source instead of scattering ad-hoc timers.

Three primitives:

* **Spans** — hierarchical timed regions (``with tel.span("fixpoint")``),
  carrying wall-clock *and* CPU time, optional attributes, and (when
  memory tracking is on) the tracemalloc peak observed by span exit.
  Nesting is per-thread: each thread keeps its own open-span stack, so
  concurrent phases trace correctly.
* **Counters** — monotonic integers (``tel.count("dep.generated", n)``).
* **Gauges** — last-write-wins numbers; ``gauge_max`` keeps the maximum
  (used for peak-memory style measurements).

The registry is thread-safe (one lock around shared structures) and has a
**no-op fast path**: the module-level :data:`NULL_TELEMETRY` singleton is
disabled, its ``span`` returns a shared do-nothing context manager and its
counter/gauge methods return immediately — so fully-instrumented pipeline
code costs a few attribute checks per *phase* (never per fixpoint
iteration) when nobody is measuring.

Exporters live in :mod:`repro.telemetry.export`: a Chrome
``chrome://tracing`` JSON trace and a Table-2-style per-phase report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

#: canonical phase names, in pipeline order — the rows of the phase report
#: and the columns of the paper's Tables 1–2 (Pre / Dep / Fix, plus the
#: phases the paper folds into its totals)
PHASES = (
    "frontend",
    "pre-analysis",
    "dep-gen",
    "fixpoint",
    "narrowing",
    "checkers",
    #: serve-mode phases: one span per served query / applied edit (the
    #: engine's nested fixpoint spans stay inside them)
    "query",
    "edit",
)


@dataclass
class Span:
    """One finished (or still-open) timed region."""

    name: str
    category: str = "phase"
    #: start offset from the registry epoch, seconds
    start: float = 0.0
    #: wall-clock duration, seconds (0 while open)
    wall: float = 0.0
    #: CPU (process) time consumed between enter and exit, seconds
    cpu: float = 0.0
    #: tracemalloc peak at span exit, bytes (None when not tracked)
    peak_bytes: int | None = None
    tid: int = 0
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (shown in trace ``args``)."""
        self.attrs.update(attrs)
        return self

    def walk(self):
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanHandle:
    """Context manager guarding one live span."""

    __slots__ = ("_tel", "span")

    def __init__(self, tel: "Telemetry", span: Span) -> None:
        self._tel = tel
        self.span = span

    def set(self, **attrs) -> "_SpanHandle":
        self.span.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._tel._enter(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tel._exit(self.span)


class _NullSpanHandle:
    """The do-nothing span handle the disabled fast path hands out. A
    single shared instance — entering it allocates nothing."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpanHandle":
        return self

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpanHandle()


class Telemetry:
    """Thread-safe in-process span/counter/gauge registry.

    ``enabled=False`` turns every operation into a no-op (see
    :data:`NULL_TELEMETRY`). ``track_memory=True`` starts ``tracemalloc``
    on first use and records the traced-memory peak at every span exit —
    accurate but several-fold slower, so it is opt-in (the bench harness
    keeps its deterministic memory model for gating and uses this only for
    Table-2-style reports).
    """

    def __init__(self, enabled: bool = True, track_memory: bool = False) -> None:
        self.enabled = enabled
        self.track_memory = track_memory
        self.roots: list[Span] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._started_tracemalloc = False

    # -- coercion ------------------------------------------------------------

    @classmethod
    def coerce(cls, value) -> "Telemetry":
        """``None``/``False`` → the shared disabled registry, ``True`` → a
        fresh enabled one, a :class:`Telemetry` → itself."""
        if value is None or value is False:
            return NULL_TELEMETRY
        if value is True:
            return cls(enabled=True)
        if isinstance(value, Telemetry):
            return value
        raise TypeError(f"cannot coerce {value!r} to Telemetry")

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, category: str = "phase", **attrs):
        """A context manager timing one region. Disabled registries return
        a shared no-op handle."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, Span(name, category=category, attrs=attrs))

    def record_span(
        self, name: str, wall: float, cpu: float = 0.0,
        category: str = "phase", **attrs,
    ) -> None:
        """Record an already-measured region — e.g. a span timed inside a
        worker process and shipped back over the wire. The span is attached
        under the calling thread's currently open span (or as a root) with
        its start back-dated so trace timelines stay plausible."""
        if not self.enabled:
            return
        span = Span(name, category=category, attrs=attrs)
        span.tid = threading.get_ident()
        span.wall = wall
        span.cpu = cpu
        span.start = max(0.0, time.perf_counter() - self._epoch - wall)
        stack = self._stack()
        with self._lock:
            if stack:
                stack[-1].children.append(span)
            else:
                self.roots.append(span)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: Span) -> None:
        if self.track_memory:
            self._ensure_tracemalloc()
        span.tid = threading.get_ident()
        span.start = time.perf_counter() - self._epoch
        # stash absolute clocks on the handle-side fields
        span._t0_wall = time.perf_counter()  # type: ignore[attr-defined]
        span._t0_cpu = time.process_time()  # type: ignore[attr-defined]
        self._stack().append(span)

    def _exit(self, span: Span) -> None:
        span.wall = time.perf_counter() - span._t0_wall  # type: ignore[attr-defined]
        span.cpu = time.process_time() - span._t0_cpu  # type: ignore[attr-defined]
        del span._t0_wall, span._t0_cpu  # type: ignore[attr-defined]
        if self.track_memory:
            peak = self._sample_peak()
            span.peak_bytes = peak
            self.gauge_max("mem.peak_bytes", peak)
        stack = self._stack()
        # Balance invariant: spans close innermost-first. Closing out of
        # order (or closing a span this thread never opened) is a bug in
        # the instrumented code; recover by unwinding to the span.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            if stack:
                stack[-1].children.append(span)
            else:
                self.roots.append(span)

    # -- counters / gauges ---------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            old = self.gauges.get(name)
            if old is None or value > old:
                self.gauges[name] = value

    # -- engine-stats merge ----------------------------------------------------

    def merge_fixpoint_stats(self, stats, scheduler_stats=None) -> None:
        """Fold a :class:`repro.analysis.engine.FixpointStats` (and its
        optional :class:`~repro.analysis.schedule.SchedulerStats`) into the
        registry — the engine's counters stay on the result object *and*
        land here, so the phase report covers them without a second
        source of truth."""
        if not self.enabled:
            return
        self.count("fixpoint.iterations", stats.iterations)
        self.gauge_max("fixpoint.max_worklist", stats.max_worklist)
        self.count("fixpoint.visited_nodes", len(stats.visited))
        if stats.dep_count:
            self.gauge("dep.count", stats.dep_count)
        if stats.raw_dep_count:
            self.gauge("dep.raw_count", stats.raw_dep_count)
        if stats.reachable_nodes:
            self.gauge("fixpoint.reachable_nodes", stats.reachable_nodes)
        if scheduler_stats is not None:
            self.count("sched.pops", scheduler_stats.pops)
            self.count("sched.revisits", scheduler_stats.revisits)
            self.count("sched.inversions", scheduler_stats.inversions)
            self.count("value.join_cache_hits", scheduler_stats.join_cache_hits)
            self.count(
                "value.join_cache_misses", scheduler_stats.join_cache_misses
            )
            self.gauge("sched.widening_points", scheduler_stats.widening_points)
            self.gauge("sched.scheduler", scheduler_stats.scheduler)

    # -- memory ----------------------------------------------------------------

    def _ensure_tracemalloc(self) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def _sample_peak(self) -> int:
        import tracemalloc

        if not tracemalloc.is_tracing():
            return 0
        return tracemalloc.get_traced_memory()[1]

    def close(self) -> None:
        """Stop tracemalloc if this registry started it."""
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False

    # -- introspection ---------------------------------------------------------

    def spans_named(self, name: str) -> list[Span]:
        """Every finished span (at any depth) with the given name."""
        out = []
        for root in self.roots:
            out.extend(s for s in root.walk() if s.name == name)
        return out

    def open_spans(self) -> int:
        """Live spans on the calling thread's stack (0 when balanced)."""
        return len(self._stack())


#: the shared disabled registry — the default for every ``telemetry=``
#: parameter in the pipeline
NULL_TELEMETRY = Telemetry(enabled=False)
