"""Zero-dependency tracing/metrics for the analysis pipeline.

Quick use::

    from repro.telemetry import Telemetry, phase_report, write_chrome_trace

    tel = Telemetry(track_memory=True)
    run = analyze(source, telemetry=tel)
    print(phase_report(tel).text())          # Table-2-style breakdown
    write_chrome_trace(tel, "out.json")      # chrome://tracing, crash-safe
"""

from repro.telemetry.core import NULL_TELEMETRY, PHASES, Span, Telemetry
from repro.telemetry.export import (
    PhaseReport,
    PhaseRow,
    chrome_trace,
    phase_report,
    write_chrome_trace,
    write_phase_report,
)

__all__ = [
    "Telemetry",
    "Span",
    "NULL_TELEMETRY",
    "PHASES",
    "PhaseReport",
    "PhaseRow",
    "chrome_trace",
    "phase_report",
    "write_chrome_trace",
    "write_phase_report",
]
