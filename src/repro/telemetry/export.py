"""Telemetry exporters.

Two consumers, two formats:

* :func:`chrome_trace` — the Chrome ``chrome://tracing`` / Perfetto JSON
  object format: one complete (``"ph": "X"``) event per span with
  microsecond ``ts``/``dur``, plus one instant event carrying the final
  counter/gauge snapshot. Load the written file in ``chrome://tracing``
  to see the pipeline phases on a timeline.
* :func:`phase_report` — a Table-2-style per-phase breakdown. The rows
  are the canonical pipeline phases (:data:`repro.telemetry.core.PHASES`)
  and map onto the paper's columns: *pre-analysis* is Table 2's implicit
  pre-analysis cost, *dep-gen* is the ``Dep`` column, *fixpoint* the
  ``Fix`` column, and ``mem.peak_bytes`` the ``Mem`` columns; *frontend*
  and *checkers* are the phases the paper folds into its totals.

File writes (:func:`write_chrome_trace`, :func:`write_phase_report`) are
crash-safe: serialization happens fully in memory, then the bytes land via
atomic temp-file + ``os.replace`` (:mod:`repro.runtime.atomicio`) — a
crash mid-export never leaves truncated JSON behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.core import PHASES, Span, Telemetry


def _span_events(span: Span, pid: int) -> list[dict]:
    event = {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": round(span.start * 1e6, 3),
        "dur": round(span.wall * 1e6, 3),
        "pid": pid,
        "tid": span.tid,
    }
    args = dict(span.attrs)
    args["cpu_ms"] = round(span.cpu * 1e3, 3)
    if span.peak_bytes is not None:
        args["peak_bytes"] = span.peak_bytes
    event["args"] = args
    out = [event]
    for child in span.children:
        out.extend(_span_events(child, pid))
    return out


def chrome_trace(tel: Telemetry, pid: int = 1) -> dict:
    """The Chrome trace JSON object for everything the registry recorded.

    Serializable with plain ``json.dumps``; event ``ts`` values share one
    monotonic epoch (the registry's construction time), so parents always
    start at or before their children.
    """
    events: list[dict] = []
    for root in tel.roots:
        events.extend(_span_events(root, pid))
    events.sort(key=lambda e: e["ts"])
    meta = {
        "name": "metrics",
        "cat": "telemetry",
        "ph": "i",
        "s": "g",
        "ts": events[-1]["ts"] + events[-1]["dur"] if events else 0,
        "pid": pid,
        "tid": 0,
        "args": {"counters": dict(tel.counters), "gauges": dict(tel.gauges)},
    }
    events.append(meta)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tel: Telemetry, path, pid: int = 1) -> int:
    """Serialize :func:`chrome_trace` and write it crash-safely; returns
    the byte count."""
    from repro.runtime.atomicio import atomic_write_json

    return atomic_write_json(path, chrome_trace(tel, pid))


def write_phase_report(tel: Telemetry, path) -> int:
    """Serialize :func:`phase_report`'s dict form and write it
    crash-safely; returns the byte count."""
    from repro.runtime.atomicio import atomic_write_json

    return atomic_write_json(path, phase_report(tel).as_dict(), indent=2)


# --------------------------------------------------------------------------
# Per-phase report
# --------------------------------------------------------------------------

#: counters/gauges shown next to the phase they describe
_PHASE_DETAILS = {
    "pre-analysis": ("pre.rounds",),
    "query": (
        "query.resident",
        "query.cone",
        "query.global",
        "query.global-fallback",
    ),
    "edit": (
        "edit.edits",
        "edit.retained_nodes",
        "edit.dirty_nodes",
    ),
    "dep-gen": (
        "dep.generated",
        "dep.bypassed",
        "dep.widening_barriers",
        "bdd.nodes",
    ),
    "fixpoint": (
        "fixpoint.iterations",
        "sched.pops",
        "sched.revisits",
        "fixpoint.reachable_nodes",
    ),
    "narrowing": ("narrowing.iterations",),
    "checkers": ("checkers.reports", "checkers.alarms"),
}


@dataclass
class PhaseRow:
    """Aggregated timings for one pipeline phase."""

    phase: str
    wall: float = 0.0
    cpu: float = 0.0
    count: int = 0
    details: dict = field(default_factory=dict)


@dataclass
class PhaseReport:
    """The per-phase breakdown plus the raw counter/gauge snapshot."""

    rows: list[PhaseRow]
    counters: dict
    gauges: dict

    @property
    def total_wall(self) -> float:
        return sum(r.wall for r in self.rows)

    def row(self, phase: str) -> PhaseRow | None:
        for r in self.rows:
            if r.phase == phase:
                return r
        return None

    def as_dict(self) -> dict:
        return {
            "phases": {
                r.phase: {
                    "wall_s": r.wall,
                    "cpu_s": r.cpu,
                    "spans": r.count,
                    **r.details,
                }
                for r in self.rows
            },
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "total_wall_s": self.total_wall,
        }

    def text(self) -> str:
        lines = [
            f"{'phase':<14}{'wall(s)':>10}{'cpu(s)':>10}{'spans':>7}  detail",
            "-" * 72,
        ]
        for r in self.rows:
            detail = "  ".join(
                f"{k.split('.', 1)[-1]}={_fmt(v)}" for k, v in r.details.items()
            )
            lines.append(
                f"{r.phase:<14}{r.wall:>10.3f}{r.cpu:>10.3f}{r.count:>7}  {detail}"
            )
        lines.append("-" * 72)
        lines.append(f"{'total':<14}{self.total_wall:>10.3f}")
        peak = self.gauges.get("mem.peak_bytes")
        if peak is not None:
            lines.append(f"peak memory   {peak / 1e6:>10.2f} MB (tracemalloc)")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def phase_report(tel: Telemetry) -> PhaseReport:
    """Aggregate same-named spans into the canonical phase rows.

    Only *top-level occurrences* of each phase name are summed (a
    ``fixpoint`` span nested under another ``fixpoint`` span counts once),
    so wall times add up to the pipeline total. Phases that never ran are
    omitted.
    """
    rows: list[PhaseRow] = []
    for phase in PHASES:
        spans = _outermost_named(tel, phase)
        if not spans:
            continue
        row = PhaseRow(
            phase,
            wall=sum(s.wall for s in spans),
            cpu=sum(s.cpu for s in spans),
            count=len(spans),
        )
        for key in _PHASE_DETAILS.get(phase, ()):
            value = tel.counters.get(key, tel.gauges.get(key))
            if value is not None:
                row.details[key] = value
        rows.append(row)
    return PhaseReport(rows, dict(tel.counters), dict(tel.gauges))


def _outermost_named(tel: Telemetry, name: str) -> list[Span]:
    """Spans with ``name`` whose ancestors do not carry the same name."""
    out: list[Span] = []

    def visit(span: Span) -> None:
        if span.name == name:
            out.append(span)
            return  # nested same-name spans fold into this one
        for child in span.children:
            visit(child)

    for root in tel.roots:
        visit(root)
    return out
