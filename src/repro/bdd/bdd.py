"""A reduced ordered binary decision diagram (ROBDD) package.

Stands in for the BuDDy library the paper uses (Section 5): the data
dependency relation ``⟨c₁, c₂, l⟩`` is bit-encoded and stored as a boolean
function, which shares common prefixes/suffixes and cuts memory by orders of
magnitude compared with explicit sets.

Design: classic hash-consed nodes with an apply/ITE memo cache.

* Nodes are interned triples ``(var, low, high)`` identified by integer ids,
  so structural equality is pointer equality and sharing is maximal.
* Terminals are ids 0 (false) and 1 (true).
* Operations: conjunction, disjunction, negation, xor, ITE, restrict,
  existential quantification, satisfying-assignment count/enumeration.

Variable order is the creation order of variable indices (0 = topmost).
"""

from __future__ import annotations

from typing import Iterable, Iterator

FALSE = 0
TRUE = 1


class BDD:
    """A manager owning the shared node table; functions are node ids."""

    def __init__(self, num_vars: int = 0) -> None:
        # node id -> (var, low, high); ids 0/1 reserved for terminals.
        self._nodes: list[tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self.num_vars = num_vars

    # -- construction ------------------------------------------------------------

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        self._nodes.append(key)
        nid = len(self._nodes) - 1
        self._unique[key] = nid
        return nid

    def var(self, index: int) -> int:
        """The function of a single variable ``x_index``."""
        if index >= self.num_vars:
            self.num_vars = index + 1
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        if index >= self.num_vars:
            self.num_vars = index + 1
        return self._mk(index, TRUE, FALSE)

    def node_count(self) -> int:
        """Number of interned decision nodes in the arena (including nodes
        only reachable from intermediate results)."""
        return len(self._unique)

    def dag_size(self, f: int) -> int:
        """Decision nodes reachable from ``f`` — the memory footprint of
        one stored function (what a GC'd BDD package would retain)."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            _var, low, high = self._nodes[node]
            stack.append(low)
            stack.append(high)
        return len(seen)

    def _top_var(self, *fs: int) -> int:
        return min(
            self._nodes[f][0] for f in fs if f > TRUE
        )

    # -- core: if-then-else -------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` — the universal connective."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        v = self._top_var(f, g, h)
        f0, f1 = self._cofactors(f, v)
        g0, g1 = self._cofactors(g, v)
        h0, h1 = self._cofactors(h, v)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        out = self._mk(v, low, high)
        self._ite_cache[key] = out
        return out

    def _cofactors(self, f: int, v: int) -> tuple[int, int]:
        if f <= TRUE:
            return f, f
        var, low, high = self._nodes[f]
        if var == v:
            return low, high
        return f, f

    # -- boolean operations ---------------------------------------------------------

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.negate(g), g)

    def negate(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_diff(self, f: int, g: int) -> int:
        """f ∧ ¬g."""
        return self.ite(f, self.negate(g), FALSE)

    # -- cube/minterm helpers ---------------------------------------------------------

    def cube(self, assignment: Iterable[tuple[int, bool]]) -> int:
        """Conjunction of literals, e.g. ``x0 ∧ ¬x3 ∧ x4`` — built bottom-up
        so no intermediate apply is needed."""
        out = TRUE
        for index, value in sorted(assignment, key=lambda p: -p[0]):
            if index >= self.num_vars:
                self.num_vars = index + 1
            if value:
                out = self._mk(index, FALSE, out)
            else:
                out = self._mk(index, out, FALSE)
        return out

    def minterm(self, bits: list[bool], offset: int = 0) -> int:
        """Cube over consecutive variables ``offset..offset+len(bits)-1``."""
        return self.cube((offset + i, b) for i, b in enumerate(bits))

    # -- quantification / restriction ---------------------------------------------------

    def restrict(self, f: int, index: int, value: bool) -> int:
        if f <= TRUE:
            return f
        var, low, high = self._nodes[f]
        if var > index:
            return f
        if var == index:
            return high if value else low
        return self._mk(
            var,
            self.restrict(low, index, value),
            self.restrict(high, index, value),
        )

    def exists(self, f: int, indices: set[int]) -> int:
        """Existential quantification over the given variable indices."""
        if f <= TRUE or not indices:
            return f
        var, low, high = self._nodes[f]
        nlow = self.exists(low, indices)
        nhigh = self.exists(high, indices)
        if var in indices:
            return self.apply_or(nlow, nhigh)
        return self._mk(var, nlow, nhigh)

    # -- model counting / enumeration -----------------------------------------------------

    def sat_count(self, f: int, num_vars: int | None = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        n = self.num_vars if num_vars is None else num_vars
        memo: dict[int, int] = {}

        def count_from(node: int, level: int) -> int:
            """Assignments of variables [level, n) satisfying ``node``."""
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1 << (n - level)
            var, low, high = self._nodes[node]
            sub = memo.get(node)
            if sub is None:
                sub = count_from(low, var + 1) + count_from(high, var + 1)
                memo[node] = sub
            # Variables between `level` and `var` are unconstrained.
            return sub << (var - level)

        return count_from(f, 0)

    def sat_iter(self, f: int, num_vars: int | None = None) -> Iterator[tuple[bool, ...]]:
        """Enumerate all satisfying assignments as bit tuples."""
        n = self.num_vars if num_vars is None else num_vars

        def go(node: int, index: int) -> Iterator[list[bool]]:
            if node == FALSE:
                return
            if index == n:
                if node == TRUE:
                    yield []
                return
            if node > TRUE and self._nodes[node][0] == index:
                _var, low, high = self._nodes[node]
                for rest in go(low, index + 1):
                    yield [False] + rest
                for rest in go(high, index + 1):
                    yield [True] + rest
            else:
                for rest in go(node, index + 1):
                    yield [False] + rest
                for rest in go(node, index + 1):
                    yield [True] + rest

        for bits in go(f, 0):
            yield tuple(bits)

    def evaluate(self, f: int, bits: list[bool] | tuple[bool, ...]) -> bool:
        node = f
        while node > TRUE:
            var, low, high = self._nodes[node]
            node = high if bits[var] else low
        return node == TRUE
