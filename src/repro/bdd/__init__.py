"""Hash-consed ROBDD package and the BDD-backed dependency relation."""

from repro.bdd.bdd import BDD, FALSE, TRUE
from repro.bdd.relation import BDDDependencyRelation

__all__ = ["BDD", "FALSE", "TRUE", "BDDDependencyRelation"]
