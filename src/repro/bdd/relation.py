"""BDD-backed storage for the data-dependency relation (Section 5).

The paper bit-encodes each triple ``⟨c₁, c₂, l⟩`` (source control point,
destination control point, abstract location) as a boolean function; the
relation is then the disjunction of all triples' minterms. Common prefixes
(same source/dest) and suffixes (same location) share BDD nodes, which is
what reduced vim60's dependency storage from 24 GB (explicit sets) to 1 GB.

:class:`BDDDependencyRelation` mirrors the interface of
:class:`repro.analysis.datadep.DataDeps` for add/query/iterate, and exposes
``node_count`` as the memory metric for the Section 5 ablation benchmark.
"""

from __future__ import annotations

from typing import Iterator

from repro.bdd.bdd import BDD, FALSE
from repro.domains.absloc import AbsLoc


def _bits(value: int, width: int) -> list[bool]:
    return [(value >> i) & 1 == 1 for i in range(width)]


def _unbits(bits: tuple[bool, ...]) -> int:
    out = 0
    for i, b in enumerate(bits):
        if b:
            out |= 1 << i
    return out


class BDDDependencyRelation:
    """The ternary relation ``↝ ⊆ C × L̂ × C`` as one boolean function.

    Control points and locations are interned into dense integer codes;
    the variable order is [src bits | dst bits | loc bits], giving prefix
    sharing for edges out of the same source and suffix sharing for equal
    locations.
    """

    def __init__(self, node_bits: int = 20, loc_bits: int = 18) -> None:
        self._bdd = BDD(node_bits * 2 + loc_bits)
        self._node_bits = node_bits
        self._loc_bits = loc_bits
        self._loc_code: dict[AbsLoc, int] = {}
        self._locs: list[AbsLoc] = []
        self._fn = FALSE
        self._count = 0

    # -- encoding -----------------------------------------------------------------

    def _loc_id(self, loc: AbsLoc) -> int:
        code = self._loc_code.get(loc)
        if code is None:
            code = len(self._locs)
            if code >= (1 << self._loc_bits):
                raise OverflowError("location space exhausted; raise loc_bits")
            self._loc_code[loc] = code
            self._locs.append(loc)
        return code

    def _encode(self, src: int, dst: int, loc: AbsLoc) -> int:
        nb, lb = self._node_bits, self._loc_bits
        if src >= (1 << nb) or dst >= (1 << nb):
            raise OverflowError("control-point space exhausted; raise node_bits")
        bits = (
            _bits(src, nb) + _bits(dst, nb) + _bits(self._loc_id(loc), lb)
        )
        return self._bdd.minterm(bits)

    # -- relation interface ----------------------------------------------------------

    def add(self, src: int, dst: int, loc: AbsLoc) -> None:
        cube = self._encode(src, dst, loc)
        new_fn = self._bdd.apply_or(self._fn, cube)
        if new_fn != self._fn:
            self._fn = new_fn
            self._count += 1

    def has(self, src: int, dst: int, loc: AbsLoc) -> bool:
        if loc not in self._loc_code:
            return False
        cube = self._encode(src, dst, loc)
        return self._bdd.apply_and(self._fn, cube) != FALSE

    def __len__(self) -> int:
        return self._count

    def sat_count(self) -> int:
        """Triple count recomputed from the BDD itself (cross-check)."""
        return self._bdd.sat_count(self._fn)

    def node_count(self) -> int:
        """BDD nodes of the stored relation (its DAG size) — the
        memory-consumption proxy the paper's comparison is about."""
        return self._bdd.dag_size(self._fn)

    def arena_size(self) -> int:
        """All interned nodes including intermediates (no GC)."""
        return self._bdd.node_count()

    def record_telemetry(self, telemetry) -> None:
        """Publish the store's size gauges (``bdd.nodes`` — the paper's
        Section-5 memory proxy — plus arena size and triple count) into a
        :class:`repro.telemetry.Telemetry` registry."""
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.gauge("bdd.nodes", self.node_count())
        telemetry.gauge("bdd.arena_nodes", self.arena_size())
        telemetry.gauge("bdd.triples", len(self))

    def triples(self) -> Iterator[tuple[int, int, AbsLoc]]:
        nb, lb = self._node_bits, self._loc_bits
        for bits in self._bdd.sat_iter(self._fn, nb * 2 + lb):
            src = _unbits(bits[:nb])
            dst = _unbits(bits[nb : 2 * nb])
            loc_id = _unbits(bits[2 * nb :])
            if loc_id < len(self._locs):
                yield src, dst, self._locs[loc_id]

    def out_edges_of(self, src: int) -> Iterator[tuple[int, AbsLoc]]:
        """Enumerate (dst, loc) pairs for one source by restricting the
        source bits — the lookup pattern the sparse engine needs."""
        nb, lb = self._node_bits, self._loc_bits
        fn = self._fn
        for i, bit in enumerate(_bits(src, nb)):
            fn = self._bdd.restrict(fn, i, bit)
        for bits in self._bdd.sat_iter(fn, nb * 2 + lb):
            dst = _unbits(bits[nb : 2 * nb])
            loc_id = _unbits(bits[2 * nb :])
            if loc_id < len(self._locs):
                yield dst, self._locs[loc_id]


def estimate_set_bytes(triple_count: int, avg_loc_size: int = 64) -> int:
    """Rough memory model of the naïve set-of-triples representation:
    per-triple tuple + set slot + location reference overhead. Used for the
    BDD-vs-set comparison when measuring real allocations is too noisy."""
    per_triple = 8 * 3 + 56 + avg_loc_size // 4  # pointers + tuple header
    return triple_count * per_triple
