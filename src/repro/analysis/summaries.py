"""Procedure summaries and shard topology for the SCC-sharded pipeline.

The sharded driver (:mod:`repro.analysis.shards`) decomposes the
whole-program fixpoint along the call graph's SCC DAG
(:meth:`repro.ir.callgraph.CallGraph.condense`). The *interface* between two
shards is exactly the paper's localization seam: states entering a callee at
call edges (entry summaries) and states leaving it at exit→return-site edges
(exit summaries). This module owns everything that describes or crosses that
seam:

* :class:`ShardTopology` — the static partition: which control point lives
  in which shard, which control/dependency edges stay internal, and which
  cross shard boundaries (the summary channels);
* :class:`ShardTask` / :class:`ShardOutcome` — one shard activation's input
  (frozen boundary-source states, seeds, carried solver state) and output
  (updated internal table slice, reachability, widening counters, stats);
* wire codecs for both, built on the checkpoint state codecs
  (:func:`repro.runtime.checkpoint.state_to_wire`) so the process-pool
  executor ships plain JSON-able structures between workers — the same
  format a crash-resume checkpoint uses;
* :class:`ProcSummary` / :func:`extract_summaries` — the per-procedure
  entry/exit view of a fixpoint table, the unit the scheduler freezes for
  callees and the artifact reported on the sharded result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.ir.callgraph import SCCDag

if TYPE_CHECKING:
    from repro.analysis.dense import EnginePlan


@dataclass
class ProcSummary:
    """A procedure's boundary view of a fixpoint table: the state at its
    entry node (what callers established) and at its exit node (what the
    procedure guarantees back). ``None`` means the node has no state yet —
    an unreached procedure in strict mode. Recursion seams: all members of
    one SCC are solved *together* in one shard, so a summary is only ever
    frozen for procedures whose SCC has already stabilized — summaries never
    cut a recursive cycle (see DESIGN.md §14)."""

    proc: str
    entry_state: object | None = None
    exit_state: object | None = None

    def as_dict(self) -> dict:
        return {
            "proc": self.proc,
            "entry": self.entry_state is not None,
            "exit": self.exit_state is not None,
        }


def extract_summaries(
    program, table: Mapping[int, object], procs: Iterable[str] | None = None
) -> dict[str, "ProcSummary"]:
    """Read per-procedure entry/exit summaries out of a fixpoint table."""
    out: dict[str, ProcSummary] = {}
    for proc in sorted(procs if procs is not None else program.cfgs.keys()):
        cfg = program.cfgs.get(proc)
        if cfg is None:
            continue
        entry_state = (
            table.get(cfg.entry.nid) if cfg.entry is not None else None
        )
        exit_state = table.get(cfg.exit.nid) if cfg.exit is not None else None
        out[proc] = ProcSummary(proc, entry_state, exit_state)
    return out


@dataclass
class ShardTopology:
    """The static shard partition of one :class:`~repro.analysis.dense.
    EnginePlan`: node→shard assignment plus the classification of every
    control and dependency edge as shard-internal or boundary-crossing.
    Boundary-crossing edges are the summary channels — their source states
    are what the driver snapshots, diffs, and ships as frontiers."""

    dag: SCCDag
    node_shard: dict[int, int]
    #: shard → sorted member control points
    nodes_of: tuple[tuple[int, ...], ...]
    #: shard → internal-only control successor map (what a shard engine may
    #: propagate along; external successors are the parent's business)
    int_succs: tuple[dict[int, tuple[int, ...]], ...]
    #: shard → control edges arriving from other shards (src external)
    ext_control_in: tuple[tuple[tuple[int, int], ...], ...]
    #: shard → control edges leaving to other shards (dst external)
    ext_control_out: tuple[tuple[tuple[int, int], ...], ...]
    #: shard → dependency edges arriving from other shards (sparse modes)
    ext_dep_in: tuple[tuple[tuple[int, int, frozenset], ...], ...]
    #: shard → dependency edges leaving to other shards (sparse modes)
    ext_dep_out: tuple[tuple[tuple[int, int, frozenset], ...], ...]
    #: shard → external sources whose states form the activation frontier
    in_srcs: tuple[tuple[int, ...], ...]
    #: shard → internal sources of boundary-out edges (snapshot+diff set)
    out_srcs: tuple[tuple[int, ...], ...]
    #: shard → external control successors per internal source (the edges a
    #: shard activation cannot propagate along itself). The shard spaces use
    #: these to lower their dynamic priority ceiling the moment an
    #: activation creates pending work in another shard — the sequential
    #: priority queue would drain that work before continuing past it.
    ext_ctrl_succs: tuple[dict[int, tuple[int, ...]], ...]
    #: shard → its closed descendant cone in the SCC DAG (itself plus every
    #: transitively callable shard). Two shards whose cones intersect can
    #: influence a common control point, so the scheduler never runs them in
    #: the same wave — the lower-priority one goes first, exactly as the
    #: sequential engine's priority queue would drain it first.
    cones: tuple[frozenset, ...]

    def __len__(self) -> int:
        return len(self.dag)


def build_topology(plan: "EnginePlan", dag: SCCDag | None = None) -> ShardTopology:
    """Partition a plan's graphs along the condensed call graph."""
    if dag is None:
        from repro.ir.callgraph import build_callgraph

        pre = plan.pre
        graph = build_callgraph(
            plan.program,
            resolve=lambda node: pre.site_callees.get(node.nid, ()),
        )
        dag = graph.condense()

    n = len(dag)
    node_map = plan.program.factory.nodes
    node_shard: dict[int, int] = {}
    members: list[list[int]] = [[] for _ in range(n)]
    for nid in plan.node_ids:
        shard = dag.shard_of.get(node_map[nid].proc)
        if shard is None:
            continue  # nodes of undefined/external procedures, if any
        node_shard[nid] = shard
        members[shard].append(nid)

    int_succs: list[dict[int, tuple[int, ...]]] = [{} for _ in range(n)]
    ctrl_in: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    ctrl_out: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for src, dsts in plan.graph.succs.items():
        s1 = node_shard.get(src)
        if s1 is None:
            continue
        internal: list[int] = []
        for dst in dsts:
            s2 = node_shard.get(dst)
            if s2 is None:
                continue
            if s2 == s1:
                internal.append(dst)
            else:
                ctrl_out[s1].append((src, dst))
                ctrl_in[s2].append((src, dst))
        if internal:
            int_succs[s1][src] = tuple(internal)

    dep_in: list[list[tuple[int, int, frozenset]]] = [[] for _ in range(n)]
    dep_out: list[list[tuple[int, int, frozenset]]] = [[] for _ in range(n)]
    if plan.deps is not None:
        for src in plan.node_ids:
            s1 = node_shard.get(src)
            if s1 is None:
                continue
            for dst, locs in plan.deps.out_edges(src):
                s2 = node_shard.get(dst)
                if s2 is None or s2 == s1:
                    continue
                dep_out[s1].append((src, dst, locs))
                dep_in[s2].append((src, dst, locs))

    in_srcs = []
    out_srcs = []
    ext_succs: list[dict[int, tuple[int, ...]]] = []
    for s in range(n):
        in_srcs.append(
            tuple(
                sorted(
                    {src for src, _ in ctrl_in[s]}
                    | {src for src, _, _ in dep_in[s]}
                )
            )
        )
        out_srcs.append(
            tuple(
                sorted(
                    {src for src, _ in ctrl_out[s]}
                    | {src for src, _, _ in dep_out[s]}
                )
            )
        )
        by_src: dict[int, list[int]] = {}
        for src, dst in ctrl_out[s]:
            by_src.setdefault(src, []).append(dst)
        ext_succs.append(
            {src: tuple(sorted(dsts)) for src, dsts in by_src.items()}
        )

    # Closed descendant cones: shards are numbered callers-first, so every
    # successor has a higher index and one reverse sweep suffices.
    cones: list[frozenset] = [frozenset()] * n
    for s in range(n - 1, -1, -1):
        cone = {s}
        for t in dag.succs[s]:
            cone |= cones[t]
        cones[s] = frozenset(cone)

    return ShardTopology(
        dag=dag,
        node_shard=node_shard,
        nodes_of=tuple(tuple(sorted(m)) for m in members),
        int_succs=tuple(int_succs),
        ext_control_in=tuple(tuple(sorted(e)) for e in ctrl_in),
        ext_control_out=tuple(tuple(sorted(e)) for e in ctrl_out),
        ext_dep_in=tuple(
            tuple(sorted(e, key=lambda t: (t[0], t[1]))) for e in dep_in
        ),
        ext_dep_out=tuple(
            tuple(sorted(e, key=lambda t: (t[0], t[1]))) for e in dep_out
        ),
        in_srcs=tuple(in_srcs),
        out_srcs=tuple(out_srcs),
        ext_ctrl_succs=tuple(ext_succs),
        cones=tuple(cones),
    )


# --------------------------------------------------------------------------
# Shard activation messages
# --------------------------------------------------------------------------


@dataclass
class ShardTask:
    """One shard activation: everything a worker needs to continue the
    shard's fixpoint against frozen external state. Tasks are
    self-contained — the parent owns all solver state between waves — so a
    lost worker costs one re-run, never lost progress."""

    shard: int
    wave: int
    #: first activation: seed the shard's own entry states too
    first: bool
    #: static priority ceiling: the lowest pending WTO priority in any
    #: *other* dirty shard at schedule time. The activation must not
    #: process nodes at or above it — the sequential priority queue would
    #: drain the foreign work first. ``None`` = unbounded (no other dirty
    #: shard, or a speculative run validated at commit time).
    ceiling: int | None = None
    #: frozen external boundary-source states (the summary frontier)
    frontier: dict[int, object] = field(default_factory=dict)
    #: the shard's internal table slice from previous activations
    table: dict[int, object] = field(default_factory=dict)
    #: control points to (re-)enqueue because an external input changed
    seeds: tuple[int, ...] = ()
    #: sparse: control points newly reached from another shard
    reach: tuple[int, ...] = ()
    #: sparse: dependency consumers whose external producer changed
    enqueue: tuple[int, ...] = ()
    #: sparse: the shard's reachability set so far
    reached: tuple[int, ...] = ()
    #: per-widening-head join-before-widen counters carried across
    #: activations (widening_delay continuity)
    growth: dict[int, int] = field(default_factory=dict)


@dataclass
class ShardOutcome:
    """What a shard activation sends back: the updated internal table slice
    plus the solver state the parent must carry to the next activation."""

    shard: int
    wave: int
    table: dict[int, object] = field(default_factory=dict)
    reached: tuple[int, ...] = ()
    growth: dict[int, int] = field(default_factory=dict)
    #: worklist left pending by a priority-ceiling stop, in pop order — the
    #: parent re-seeds these once the lower-priority foreign work drained,
    #: which keeps the global visit order (and so every widening stream)
    #: identical to the sequential engine's
    deferred: tuple[int, ...] = ()
    iterations: int = 0
    visited: tuple[int, ...] = ()
    max_worklist: int = 0
    #: highest priority the activation actually popped — a cached
    #: speculative outcome is reusable only under a commit-time static
    #: ceiling strictly above it
    max_pop: int = -1
    #: worker-measured timings, folded into the parent's telemetry
    wall: float = 0.0
    cpu: float = 0.0
    worker: int | None = None


def _states_to_wire(states: Mapping[int, object]) -> list:
    from repro.runtime.checkpoint import state_to_wire

    return [
        [nid, state_to_wire(state)] for nid, state in sorted(states.items())
    ]


def _states_from_wire(wire: list) -> dict[int, object]:
    from repro.runtime.checkpoint import state_from_wire

    return {int(nid): state_from_wire(w) for nid, w in wire}


def task_to_wire(
    task: ShardTask,
    *,
    skip_table: frozenset[int] | set[int] = frozenset(),
    skip_frontier: frozenset[int] | set[int] = frozenset(),
) -> dict:
    """Encode a task with the checkpoint state codecs — the inter-worker
    message format of the process-pool executor.

    ``skip_table``/``skip_frontier`` omit state entries the receiver is
    known to hold already (sticky-worker delta shipping): every message is
    a delta onto the worker's per-shard cache, and a full task is just the
    delta from an empty cache."""
    return {
        "shard": task.shard,
        "wave": task.wave,
        "first": task.first,
        "ceiling": task.ceiling,
        "frontier": _states_to_wire(
            task.frontier
            if not skip_frontier
            else {
                nid: st
                for nid, st in task.frontier.items()
                if nid not in skip_frontier
            }
        ),
        "table": _states_to_wire(
            task.table
            if not skip_table
            else {
                nid: st
                for nid, st in task.table.items()
                if nid not in skip_table
            }
        ),
        "seeds": list(task.seeds),
        "reach": list(task.reach),
        "enqueue": list(task.enqueue),
        "reached": list(task.reached),
        "growth": sorted(task.growth.items()),
    }


def task_from_wire(wire: dict) -> ShardTask:
    return ShardTask(
        shard=int(wire["shard"]),
        wave=int(wire["wave"]),
        first=bool(wire["first"]),
        ceiling=(None if wire["ceiling"] is None else int(wire["ceiling"])),
        frontier=_states_from_wire(wire["frontier"]),
        table=_states_from_wire(wire["table"]),
        seeds=tuple(int(n) for n in wire["seeds"]),
        reach=tuple(int(n) for n in wire["reach"]),
        enqueue=tuple(int(n) for n in wire["enqueue"]),
        reached=tuple(int(n) for n in wire["reached"]),
        growth={int(n): int(c) for n, c in wire["growth"]},
    )


def outcome_to_wire(outcome: ShardOutcome) -> dict:
    return {
        "shard": outcome.shard,
        "wave": outcome.wave,
        "table": _states_to_wire(outcome.table),
        "reached": list(outcome.reached),
        "growth": sorted(outcome.growth.items()),
        "deferred": list(outcome.deferred),
        "iterations": outcome.iterations,
        "visited": list(outcome.visited),
        "max_worklist": outcome.max_worklist,
        "max_pop": outcome.max_pop,
        "wall": outcome.wall,
        "cpu": outcome.cpu,
        "worker": outcome.worker,
    }


def outcome_from_wire(wire: dict) -> ShardOutcome:
    return ShardOutcome(
        shard=int(wire["shard"]),
        wave=int(wire["wave"]),
        table=_states_from_wire(wire["table"]),
        reached=tuple(int(n) for n in wire["reached"]),
        growth={int(n): int(c) for n, c in wire["growth"]},
        deferred=tuple(int(n) for n in wire["deferred"]),
        iterations=int(wire["iterations"]),
        visited=tuple(int(n) for n in wire["visited"]),
        max_worklist=int(wire["max_worklist"]),
        max_pop=int(wire.get("max_pop", -1)),
        wall=float(wire["wall"]),
        cpu=float(wire["cpu"]),
        worker=wire.get("worker"),
    )
