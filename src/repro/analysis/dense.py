"""Dense (non-sparse) global analyses: ``vanilla`` and ``base``.

``vanilla`` is the textbook global abstract interpreter: it propagates whole
abstract states along every control-flow edge of the interprocedural graph.
``base`` adds access-based localization [Oh et al., VMCAI 2011]: states
passed into a callee are restricted to the locations the callee may access;
the rest bypasses the call through a direct call→return-site edge. These are
the paper's ``Interval_vanilla`` and ``Interval_base`` analyzers (Section 6.1),
against which the sparse analyzer is measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.defuse import DefUseInfo, compute_defuse, localization_set
from repro.analysis.engine import (
    CfgSpace,
    DepGraphSpace,
    FixpointEngine,
    FixpointResult,
)
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.schedule import GraphView, widening_points_for
from repro.analysis.semantics import AnalysisContext, transfer
from repro.domains.absloc import AbsLoc
from repro.domains.state import AbsState
from repro.ir.commands import CCall, CRetBind
from repro.ir.program import Program
from repro.runtime.budget import Budget
from repro.runtime.degrade import DegradeController, Diagnostics, make_watchdog
from repro.runtime.faults import FaultInjector
from repro.telemetry.core import Telemetry


@dataclass
class InterprocGraph:
    """The global analysis graph: intraprocedural edges + call/return edges.

    * call node → callee entry (one per resolved callee),
    * callee exit → return-site (``CRetBind``) node,
    * call node → return-site directly only when the call is external
      (no resolved callee) or when ``localized`` bypass edges are enabled.
    """

    succs: dict[int, list[int]] = field(default_factory=dict)
    preds: dict[int, list[int]] = field(default_factory=dict)
    #: (call nid → retbind nid)
    retbind_of: dict[int, int] = field(default_factory=dict)
    #: call edges (call nid → callee name) for edge transforms
    call_edges: dict[tuple[int, int], str] = field(default_factory=dict)
    #: bypass edges (call nid, retbind nid) pairs, localized mode only
    bypass_edges: set[tuple[int, int]] = field(default_factory=set)

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.succs.setdefault(src, []):
            self.succs[src].append(dst)
            self.preds.setdefault(dst, []).append(src)


def build_interproc_graph(
    program: Program,
    site_callees: dict[int, tuple[str, ...]],
    localized: bool = False,
) -> InterprocGraph:
    graph = InterprocGraph()
    callsites_of: dict[str, list[int]] = {}

    for cfg in program.cfgs.values():
        for node in cfg.nodes:
            graph.succs.setdefault(node.nid, [])
            graph.preds.setdefault(node.nid, [])
        for node in cfg.nodes:
            if isinstance(node.cmd, CCall):
                callees = site_callees.get(node.nid, ())
                retbind = next(
                    (
                        s
                        for s in cfg.succs[node.nid]
                        if isinstance(cfg.node(s).cmd, CRetBind)
                    ),
                    None,
                )
                if retbind is not None:
                    graph.retbind_of[node.nid] = retbind
                for callee in callees:
                    callee_cfg = program.cfgs[callee]
                    assert callee_cfg.entry is not None
                    graph.add_edge(node.nid, callee_cfg.entry.nid)
                    graph.call_edges[(node.nid, callee_cfg.entry.nid)] = callee
                    callsites_of.setdefault(callee, []).append(node.nid)
                if not callees:
                    # External call: control continues to the return site.
                    for s in cfg.succs[node.nid]:
                        graph.add_edge(node.nid, s)
                elif localized and retbind is not None:
                    # Bypass edge carrying the non-accessed state portion.
                    graph.add_edge(node.nid, retbind)
                    graph.bypass_edges.add((node.nid, retbind))
            else:
                for s in cfg.succs[node.nid]:
                    graph.add_edge(node.nid, s)

    for callee, sites in callsites_of.items():
        exit_node = program.cfgs[callee].exit
        if exit_node is None:
            continue
        for site in sites:
            retbind = graph.retbind_of.get(site)
            if retbind is not None:
                graph.add_edge(exit_node.nid, retbind)
    return graph


def _resolve_thresholds(program, spec):
    """'auto' harvests landmark constants from the program; a tuple is
    used as-is; None disables threshold widening."""
    if spec == "auto":
        from repro.analysis.thresholds import collect_thresholds

        return collect_thresholds(program)
    return spec


#: The dense engines return the unified result type (legacy alias).
DenseResult = FixpointResult


@dataclass
class EnginePlan:
    """Everything a fixpoint run needs, separated from the engine that will
    execute it. Each ``prepare_*`` function (here and in ``sparse.py`` /
    ``relational.py``) builds one plan per engine×domain combo; the
    sequential ``run_*`` drivers and the SCC-sharded driver
    (:mod:`repro.analysis.shards`) then instantiate spaces and engines from
    the *same* plan — identical graphs, transfers, WTO priorities, widening
    points, and thresholds — which is what makes the sharded fixpoint
    comparable to the sequential one structure for structure."""

    program: Program
    pre: PreAnalysis
    domain: str  # "interval" | "octagon"
    mode: str  # "vanilla" | "base" | "sparse"
    strict: bool
    widen: bool
    graph: "InterprocGraph"
    #: seed states for the CFG space (strict: entry only; non-strict: all)
    entries: dict[int, object]
    transfer: Callable[[int, object], object]
    #: zero-argument bottom-state constructor of the plan's lattice
    state_factory: Callable[[], object]
    wto: object
    widening_points: set[int]
    thresholds: tuple[int, ...] | None
    widening_delay: int
    entry_nid: int
    node_ids: tuple[int, ...]
    #: builds the CfgSpace edge transform given a zero-arg thunk returning
    #: the live engine table (the octagon-base return overlay reads callee
    #: exit states through it); None when the mode has no transform
    make_edge_transform: Callable | None = None
    #: sparse modes: the dependency graph and its cell strategy
    deps: object = None
    cells_factory: Callable | None = None
    dep_count: int = 0
    raw_dep_count: int = 0
    defuse: object = None
    packs: object = None
    ctx: object = None
    time_pre: float = 0.0
    time_dep: float = 0.0

    @property
    def sparse(self) -> bool:
        return self.mode == "sparse"

    def edge_transform_for(self, get_table):
        if self.make_edge_transform is None:
            return None
        return self.make_edge_transform(get_table)

    def make_program_space(self, get_table=None):
        """The whole-program propagation space this plan describes (shard
        spaces are built by :mod:`repro.analysis.shards` from the same
        ingredients)."""
        if self.sparse:
            return DepGraphSpace(
                self.deps,
                self.graph,
                self.cells_factory(),
                node_ids=self.node_ids,
                entry=self.entry_nid,
                strict=self.strict,
            )
        return CfgSpace(
            self.graph.succs,
            self.graph.preds,
            self.entries,
            edge_transform=self.edge_transform_for(get_table),
            roots=[self.entry_nid],
        )


def prepare_interval_dense(
    program: Program,
    pre: PreAnalysis,
    *,
    localize: bool = False,
    strict: bool = True,
    widen: bool = True,
    widening_thresholds: tuple[int, ...] | str | None = None,
    widening_delay: int = 0,
) -> EnginePlan:
    """Build the plan for ``Interval_vanilla`` / ``Interval_base``."""
    ctx = AnalysisContext(program, pre.site_callees, strict=strict)
    graph = build_interproc_graph(program, pre.site_callees, localized=localize)

    defuse: DefUseInfo | None = None
    make_edge_transform = None
    if localize:
        defuse = compute_defuse(program, pre)
        passed_sets: dict[str, frozenset[AbsLoc]] = {
            callee: localization_set(program, defuse, callee)
            for callee in program.procedures()
        }
        call_edges = graph.call_edges
        bypass = graph.bypass_edges

        def make_edge_transform(get_table):
            # get_table unused: interval localization is a pure restriction
            def edge_transform(src: int, dst: int, state: AbsState) -> AbsState:
                callee = call_edges.get((src, dst))
                if callee is not None:
                    return state.restrict(passed_sets[callee])
                if (src, dst) in bypass:
                    # The call node has one outgoing callee at least; the
                    # bypass carries what no callee can access.
                    touched: set[AbsLoc] = set()
                    for (s, _e), c in call_edges.items():
                        if s == src:
                            touched |= passed_sets[c]
                    return state.remove(touched)
                return state

            return edge_transform

    node_map = program.factory.nodes

    def node_transfer(nid: int, state: AbsState) -> AbsState | None:
        return transfer(node_map[nid], state, ctx)

    entry = program.entry_node()
    if strict:
        entries = {entry.nid: AbsState()}
    else:
        # Non-strict: every control point runs at least once on ⊥.
        entries = {node.nid: AbsState() for node in program.nodes()}
    wto, widening_points = widening_points_for(
        GraphView((entry.nid,), graph.succs), widen
    )
    return EnginePlan(
        program=program,
        pre=pre,
        domain="interval",
        mode="base" if localize else "vanilla",
        strict=strict,
        widen=widen,
        graph=graph,
        entries=entries,
        transfer=node_transfer,
        state_factory=AbsState,
        wto=wto,
        widening_points=widening_points,
        thresholds=_resolve_thresholds(program, widening_thresholds),
        widening_delay=widening_delay,
        entry_nid=entry.nid,
        node_ids=tuple(node_map.keys()),
        make_edge_transform=make_edge_transform,
        defuse=defuse,
        ctx=ctx,
    )


def run_dense(
    program: Program,
    pre: PreAnalysis | None = None,
    localize: bool = False,
    narrowing_passes: int = 0,
    strict: bool = True,
    widen: bool = True,
    max_iterations: int | None = None,
    widening_thresholds: tuple[int, ...] | str | None = None,
    budget: Budget | None = None,
    on_budget: str = "fail",
    faults=None,
    watchdog: bool = True,
    scheduler: str = "wto",
    widening_delay: int = 0,
    telemetry=None,
    checkpoint=None,
    resume_from=None,
) -> DenseResult:
    """Run the dense interval analysis (``vanilla`` or, with ``localize``,
    ``base``).

    ``strict=False`` switches to the paper's non-strict formulation: every
    control point is evaluated (even if unreachable) and assume commands
    refine values instead of cutting paths. ``widen=False`` disables
    widening entirely (only safe on programs whose abstract iterates have
    finite chains, e.g. constant-bounded loops) — in that mode the computed
    table is the exact ``lfp F♯`` of the paper and Lemma 2's equality with
    the sparse result holds bit for bit.

    ``budget`` (or the legacy ``max_iterations``) limits the fixpoint work;
    ``on_budget="degrade"`` fills unconverged procedures from the
    pre-analysis state instead of raising :class:`BudgetExceeded`, with the
    actions recorded in the result's ``diagnostics``. ``faults`` accepts a
    :class:`repro.runtime.faults.FaultPlan` for deterministic failure tests.

    ``scheduler`` selects the worklist order: ``"wto"`` (default) iterates
    in weak topological order, ``"fifo"`` is the classic deque baseline.
    Widening points are WTO component heads either way, so both schedules
    converge to the same table.
    """
    if on_budget not in ("fail", "degrade"):
        raise ValueError(f"on_budget must be 'fail' or 'degrade', not {on_budget!r}")
    tel = Telemetry.coerce(telemetry)
    start = time.perf_counter()
    if pre is None:
        pre = run_preanalysis(program, telemetry=tel)
    resolved_budget = Budget.coerce(budget, max_iterations=max_iterations)
    diagnostics = Diagnostics(budget=resolved_budget)
    degrade = None
    if on_budget == "degrade":
        pre_state = pre.state
        degrade = DegradeController(
            program,
            fallback_state=lambda proc: pre_state.copy(),
            diagnostics=diagnostics,
            watchdog=make_watchdog(pre_state) if watchdog else None,
        )
    plan = prepare_interval_dense(
        program,
        pre,
        localize=localize,
        strict=strict,
        widen=widen,
        widening_thresholds=widening_thresholds,
        widening_delay=widening_delay,
    )
    box: dict = {}
    space = plan.make_program_space(lambda: box["engine"].table)
    engine = FixpointEngine(
        space,
        plan.transfer,
        plan.widening_points,
        widening_thresholds=plan.thresholds,
        widening_delay=plan.widening_delay,
        narrowing_passes=narrowing_passes,
        budget=resolved_budget,
        faults=FaultInjector.coerce(faults),
        degrade=degrade,
        priority=plan.wto.priority,
        scheduler=scheduler,
        telemetry=tel,
        checkpointer=checkpoint,
    )
    box["engine"] = engine
    if resume_from is not None:
        engine.restore(resume_from)
    table = engine.solve()
    elapsed = time.perf_counter() - start
    engine.stats.time_fix = elapsed
    diagnostics.iterations = engine.stats.iterations
    diagnostics.timings["fix"] = elapsed
    if engine.scheduler_stats is not None:
        diagnostics.scheduler = engine.scheduler_stats.as_dict()
    return FixpointResult(
        table,
        engine.stats,
        pre=pre,
        defuse=plan.defuse,
        graph=plan.graph,
        elapsed=elapsed,
        diagnostics=diagnostics,
        scheduler_stats=engine.scheduler_stats,
    )
