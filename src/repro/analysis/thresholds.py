"""Widening thresholds.

Threshold widening (used by SPARROW and Astrée) replaces the jump to ±∞
with a jump to the nearest *landmark constant* — typically the constants
the program compares against — so loop bounds like ``i < 100`` survive
widening without a narrowing pass. This module harvests those landmarks
from a lowered program: every integer constant in an assume condition
(plus its ±1 neighbours, to absorb strict/non-strict comparison offsets)
and every array-allocation extent.
"""

from __future__ import annotations

from repro.ir.commands import (
    CAlloc,
    CAssume,
    EBinOp,
    ENum,
    EUnOp,
    Expr,
)
from repro.ir.program import Program

#: keep threshold sets small; huge programs would otherwise collect
#: thousands of landmarks and slow every widening step
MAX_THRESHOLDS = 64


def collect_thresholds(program: Program) -> tuple[int, ...]:
    """Harvest landmark constants from branch conditions and allocations."""
    found: set[int] = {0}

    def walk(e: Expr) -> None:
        if isinstance(e, ENum):
            found.add(e.value)
            found.add(e.value - 1)
            found.add(e.value + 1)
        elif isinstance(e, EBinOp):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, EUnOp):
            walk(e.operand)

    for node in program.nodes():
        cmd = node.cmd
        if isinstance(cmd, CAssume):
            walk(cmd.cond)
        elif isinstance(cmd, CAlloc):
            walk(cmd.size)

    ordered = sorted(found)
    if len(ordered) > MAX_THRESHOLDS:
        # keep the extremes and an even sample of the middle
        step = len(ordered) / MAX_THRESHOLDS
        ordered = [ordered[int(i * step)] for i in range(MAX_THRESHOLDS)]
    return tuple(ordered)
