"""Existing sparse analyses as instances of the framework (Section 3.2).

The paper shows two influential sparse pointer analyses are restricted
instances of its design:

* **Semi-sparse flow-sensitive analysis** (Hardekopf & Lin, POPL 2009)
  applies sparseness only to *top-level* variables — those whose address
  is never taken. The paper obtains it by a pre-analysis that maps every
  non-top-level variable to ⊤ points-to information
  (``T̂_pre(c)(x).P̂ = L̂``), which makes their def/use sets maximally
  coarse while top-level variables keep precise chains.

* **Staged flow-sensitive analysis** (Hardekopf & Lin, CGO 2011) uses an
  auxiliary flow-insensitive pointer analysis for def/use information —
  which is exactly our default pre-analysis, so the full-sparse pipeline
  *is* that instance (extended with numeric values).

This module implements the semi-sparse coarsening so the two instances can
be compared head-to-head: same engine, same programs, different D̂/Û
approximations — the framework knob the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.semantics import Evaluator
from repro.analysis.sparse import SparseResult, run_sparse
from repro.domains.absloc import AbsLoc, FieldLoc, VarLoc
from repro.domains.state import AbsState
from repro.domains.value import AbsValue
from repro.ir.commands import EAddrOf, VarLv
from repro.ir.program import Program


def address_taken_variables(program: Program) -> set[AbsLoc]:
    """Variables whose address is taken anywhere (``&x``) — the complement
    of Hardekopf/Lin's *top-level* variables."""
    from repro.ir.commands import (
        CAlloc,
        CAssume,
        CCall,
        CReturn,
        CSet,
        DerefLv,
        EBinOp,
        ELval,
        EUnOp,
        Expr,
        FieldLv,
        IndexLv,
        Lval,
    )

    taken: set[AbsLoc] = set()

    def walk_expr(e: Expr) -> None:
        if isinstance(e, EAddrOf):
            lv = e.lval
            base = lv
            while isinstance(base, FieldLv):
                base = base.base
            if isinstance(base, VarLv):
                taken.add(VarLoc(base.name, base.proc))
            walk_lval(lv)
        elif isinstance(e, ELval):
            walk_lval(e.lval)
        elif isinstance(e, EBinOp):
            walk_expr(e.left)
            walk_expr(e.right)
        elif isinstance(e, EUnOp):
            walk_expr(e.operand)

    def walk_lval(lv: Lval) -> None:
        if isinstance(lv, DerefLv):
            walk_expr(lv.ptr)
        elif isinstance(lv, IndexLv):
            walk_expr(lv.base)
            walk_expr(lv.index)
        elif isinstance(lv, FieldLv):
            walk_lval(lv.base)

    for node in program.nodes():
        cmd = node.cmd
        if isinstance(cmd, CSet):
            walk_lval(cmd.lval)
            walk_expr(cmd.expr)
        elif isinstance(cmd, CAlloc):
            walk_lval(cmd.lval)
            walk_expr(cmd.size)
        elif isinstance(cmd, CAssume):
            walk_expr(cmd.cond)
        elif isinstance(cmd, CCall):
            walk_expr(cmd.callee)
            for a in cmd.args:
                walk_expr(a)
        elif isinstance(cmd, CReturn) and cmd.value is not None:
            walk_expr(cmd.value)
    return taken


def all_memory_locations(program: Program, pre: PreAnalysis) -> set[AbsLoc]:
    """The location universe ``L̂`` the coarsened pre-analysis points into:
    everything the precise pre-analysis ever materialized."""
    universe: set[AbsLoc] = set(pre.state.locations())
    for value_loc in list(universe):
        if isinstance(value_loc, FieldLoc):
            universe.add(value_loc.base)
    return universe


def semi_sparse_preanalysis(program: Program) -> PreAnalysis:
    """The semi-sparse instance's pre-analysis: identical to the precise
    one for top-level variables, ⊤ points-to for address-taken variables
    (the paper's ``T̂_pre(c)(x).P̂ = L̂``)."""
    precise = run_preanalysis(program)
    taken = address_taken_variables(program)
    universe = frozenset(
        loc
        for loc in all_memory_locations(program, precise)
        if not _is_code_location(loc)
    )

    coarse = AbsState()
    for loc, value in precise.state.items():
        if loc in taken or loc.is_summary():
            # the paper's construction: P̂ becomes the whole location
            # universe for every non-top-level variable, unconditionally
            coarse.set(
                loc,
                AbsValue(itv=value.itv, ptsto=universe, arrays=value.arrays),
            )
        else:
            coarse.set(loc, value)

    out = PreAnalysis(program, coarse, rounds=precise.rounds)
    out.site_callees = dict(precise.site_callees)
    return out


def _is_code_location(loc: AbsLoc) -> bool:
    from repro.domains.absloc import FuncLoc, RetLoc

    return isinstance(loc, (FuncLoc, RetLoc))


@dataclass
class InstanceComparison:
    """Head-to-head numbers for the framework instances on one program."""

    full_deps: int
    semi_deps: int
    full_avg_d: float
    semi_avg_d: float
    full_avg_u: float
    semi_avg_u: float
    full: SparseResult
    semi: SparseResult


def compare_instances(program: Program) -> InstanceComparison:
    """Run the full-sparse pipeline and the semi-sparse instance on the
    same program. The semi-sparse D̂/Û are coarser (address-taken
    variables get blown-up def/use sets), so it generates more
    dependencies — quantifying what the paper's finer-grained framework
    buys."""
    full = run_sparse(program)
    semi_pre = semi_sparse_preanalysis(program)
    semi = run_sparse(program, pre=semi_pre)
    fd, fu = full.defuse.average_sizes()
    sd, su = semi.defuse.average_sizes()
    return InstanceComparison(
        full_deps=full.stats.dep_count,
        semi_deps=semi.stats.dep_count,
        full_avg_d=fd,
        semi_avg_d=sd,
        full_avg_u=fu,
        semi_avg_u=su,
        full=full,
        semi=semi,
    )
