"""Sparse fixpoint engine (Section 2.7).

Computes ``lfp F♯_s`` where::

    F♯_s(X)(c) = f♯_c( ⊔_{cd —l→ c} X(cd)|l )

Values propagate along data dependencies instead of control-flow edges: a
node's input state is assembled from exactly the locations its dependencies
carry, and whenever the output value of a carried location changes, only the
dependent nodes re-run.

Implementation notes:

* **Push-based inputs**: producers push changed values into consumers'
  input caches, so a visit costs O(|changed locations|) instead of
  re-joining the whole fan-in; per-location change sets mean a node's
  dependents only re-run when a location they carry actually moved.
* **Reachability** rides along the interprocedural *control* graph at one
  bit per node: a node's transfer runs only once some control-flow
  predecessor produced a state, keeping strict mode as precise as the
  strict dense engine on dead branches.
* **Widening** happens at the control graph's widening points — the same
  set the dense engine uses; dependency generation cuts chains there (see
  ``repro.analysis.datadep``) so both engines widen on identical
  per-location streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.datadep import DataDepResult, DataDeps, generate_datadeps
from repro.analysis.defuse import DefUseInfo, compute_defuse
from repro.analysis.dense import InterprocGraph, build_interproc_graph
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.schedule import SchedulerStats, compute_wto, make_worklist
from repro.analysis.semantics import AnalysisContext, transfer
from repro.domains.absloc import AbsLoc
from repro.domains.state import AbsState
from repro.ir.program import Program
from repro.runtime.budget import Budget, BudgetMeter
from repro.runtime.degrade import DegradeController, Diagnostics, make_watchdog
from repro.runtime.errors import AnalysisError, BudgetExceeded, ReproError
from repro.runtime.faults import FaultInjector


@dataclass
class SparseStats:
    iterations: int = 0
    dep_count: int = 0
    raw_dep_count: int = 0
    reachable_nodes: int = 0
    #: wall-clock split matching the paper's Dep / Fix columns
    time_pre: float = 0.0
    time_dep: float = 0.0
    time_fix: float = 0.0

    @property
    def time_total(self) -> float:
        return self.time_pre + self.time_dep + self.time_fix


@dataclass
class SparseResult:
    """Sparse fixpoint table plus supporting artifacts."""

    table: dict[int, AbsState]
    deps: DataDeps
    defuse: DefUseInfo
    pre: PreAnalysis
    stats: SparseStats
    graph: InterprocGraph
    diagnostics: Diagnostics | None = None
    scheduler_stats: SchedulerStats | None = None

    def state_at(self, nid: int) -> AbsState:
        return self.table.get(nid, AbsState())

    def value_at(self, nid: int, loc: AbsLoc):
        return self.state_at(nid).get(loc)


class SparseSolver:
    """Worklist solver over the dependency relation."""

    def __init__(
        self,
        program: Program,
        ctx: AnalysisContext,
        deps: DataDeps,
        graph: InterprocGraph,
        widening_points: set[int] | None = None,
        max_iterations: int | None = None,
        widening_thresholds: tuple[int, ...] | None = None,
        budget: Budget | None = None,
        meter: BudgetMeter | None = None,
        faults=None,
        degrade=None,
        priority=None,
        scheduler: str = "wto",
        widening_delay: int = 0,
    ) -> None:
        if meter is None:
            meter = BudgetMeter(
                Budget.coerce(budget, max_iterations=max_iterations),
                stage="sparse fixpoint",
            )
        #: join (don't widen) the first N growth observations per head —
        #: see :class:`repro.analysis.worklist.WorklistSolver`
        self._widening_delay = widening_delay
        self._growth: dict[int, int] = {}
        self._meter = meter
        self._faults = faults
        self._degrade = degrade
        self.thresholds = widening_thresholds
        self.program = program
        self.ctx = ctx
        self.deps = deps
        self.graph = graph
        self.table: dict[int, AbsState] = {}
        #: push-based input accumulator per consumer node
        self.in_cache: dict[int, AbsState] = {}
        self.reached: set[int] = set()
        self.iterations = 0
        if widening_points is None:
            # Fallback: a WTO of the dependency graph itself — its heads cut
            # every dep cycle (always terminates, but may widen at different
            # points than the dense engine).
            dep_succs = deps.node_succs()
            dep_wto = compute_wto(sorted(dep_succs.keys()), dep_succs)
            widening_points = set(dep_wto.heads)
            if priority is None:
                priority = dep_wto.priority
        self.widening_points = widening_points
        #: WTO positions driving the priority worklist (None = plain FIFO)
        self._priority = priority
        self._scheduler = scheduler if priority is not None else "fifo"
        self.scheduler_stats: SchedulerStats | None = None
        #: running total of state entries across the table — the budget
        #: meter's state-size probe reads this instead of re-summing
        self._entries = 0

    # -- resilience hooks ------------------------------------------------------

    def _table_entries(self) -> int:
        return self._entries

    def _tick(self) -> None:
        if self._faults is not None:
            self._faults.on_iteration(self.iterations)
        self._meter.tick(self._table_entries)

    def _apply_transfer(self, nid: int, in_state: AbsState, work):
        """Faults hook + transfer; a crash degrades the node's procedure when
        a degrade controller is attached."""
        node_map = self.program.factory.nodes
        try:
            if self._faults is not None:
                self._faults.before_transfer(nid)
            return transfer(node_map[nid], in_state, self.ctx)
        except BudgetExceeded:
            raise
        except Exception as exc:
            if self._degrade is None:
                if isinstance(exc, ReproError):
                    raise
                raise AnalysisError(
                    f"transfer function crashed at node {nid}: {exc}", node=nid
                ) from exc
            newly = self._degrade.degrade_node(nid, self.table, cause=str(exc))
            self._absorb_degraded(newly, work)
            return None

    def _absorb_degraded(self, newly: set[int], work) -> None:
        """Splice freshly degraded nodes back into the sparse propagation:
        their (pre-analysis) fallback values are pushed along outgoing data
        dependencies, and control reachability is re-established across the
        degraded region — the degraded procedure conservatively 'executes
        everything', so its control successors must run."""
        if not newly:
            return
        # Degradation wrote whole-procedure fallback states behind the
        # incremental counter's back — resync it (rare event).
        self._entries = sum(len(s) for s in self.table.values())
        succs_to_run: set[int] = set()
        for dn in newly:
            self.reached.add(dn)
            for s in self.graph.succs.get(dn, ()):
                self.reached.add(s)
                if not self._degrade.is_degraded_node(s):
                    succs_to_run.add(s)
        for dn in newly:
            state = self.table.get(dn)
            if state is not None:
                self._push(dn, state, None, work)
        for s in succs_to_run:
            work.add(s)

    def _assemble_input(self, nid: int) -> AbsState:
        """From-scratch input assembly (used by narrowing; the main loop
        uses the push-based input cache instead)."""
        state = AbsState()
        for src, locs in self.deps.in_edges(nid):
            src_state = self.table.get(src)
            if src_state is None:
                continue
            for loc in locs:
                value = src_state.get(loc)
                if not value.is_bottom():
                    state.weak_set(loc, value)
        return state

    def _push(
        self,
        nid: int,
        out: AbsState,
        changed: "set[AbsLoc] | None",
        work,
    ) -> None:
        """Push changed values along outgoing dependencies into the
        consumers' input caches — O(#changed) per edge instead of
        re-assembling O(fan-in) inputs at every consumer visit."""
        for dst, locs in self.deps.out_edges(nid):
            if self._faults is not None and not self._faults.keep_dep_push(nid, dst):
                continue
            touched = locs if changed is None else (locs & changed)
            if not touched:
                continue
            cache = self.in_cache.get(dst)
            if cache is None:
                cache = AbsState()
                self.in_cache[dst] = cache
            grew = False
            for loc in touched:
                value = out.get(loc)
                if value.is_bottom():
                    continue
                old = cache.get(loc)
                if old is value:
                    continue  # interning: pointer-equal means nothing new
                new = old.join(value)
                if new is not old and new != old:
                    cache.set(loc, new)
                    grew = True
            if grew and dst in self.reached:
                work.add(dst)

    def solve(self, strict: bool = True) -> dict[int, AbsState]:
        from repro.domains.value import cache_stats

        entry = self.program.entry_node()
        node_map = self.program.factory.nodes
        if strict:
            initial = [entry.nid]
            self.reached.add(entry.nid)
        else:
            # Non-strict (paper) mode: every control point runs.
            initial = sorted(node_map.keys())
            self.reached.update(node_map.keys())
        cache_before = cache_stats()
        work = make_worklist(self._scheduler, self._priority, initial)

        while work:
            nid = work.pop()
            if nid not in self.reached:
                continue
            if self._degrade is not None and self._degrade.is_degraded_node(nid):
                continue
            self.iterations += 1
            try:
                self._tick()
            except BudgetExceeded as exc:
                if self._degrade is None:
                    raise
                # Every later tick re-raises, so all still-pending
                # procedures fall back to the pre-analysis one by one and
                # the loop drains without further fixpoint work.
                newly = self._degrade.degrade_node(nid, self.table, cause=str(exc))
                self._absorb_degraded(newly, work)
                continue
            in_state = self.in_cache.get(nid)
            in_state = in_state if in_state is not None else AbsState()
            out = self._apply_transfer(nid, in_state, work)
            if out is None:
                continue

            # Reachability propagates along control flow (cheap bit).
            for succ in self.graph.succs.get(nid, ()):
                if succ not in self.reached:
                    self.reached.add(succ)
                    work.add(succ)
            # A node reached late may already have pending cached input
            # from dep pushes; it is enqueued above and will consume it.

            old = self.table.get(nid)
            if old is None:
                # The transfer may return ``in_state`` unchanged (skip
                # nodes), which aliases the long-lived input cache — the
                # copy here is NOT redundant, unlike the dense solver's.
                self.table[nid] = out.copy()
                out = self.table[nid]
                self._entries += len(out)
                changed: set[AbsLoc] | None = None  # everything is new
            elif nid in self.widening_points:
                before = len(old)
                seen = self._growth.get(nid, 0)
                if seen < self._widening_delay:
                    changed = old.join_changed(out)
                    if changed:
                        self._growth[nid] = seen + 1
                else:
                    changed = old.widen_changed(out, self.thresholds)
                self._entries += len(old) - before
                out = old
            else:
                before = len(old)
                changed = old.join_changed(out)
                self._entries += len(old) - before
                out = old
            if changed is None or changed:
                self._push(nid, out, changed, work)
        cache_after = cache_stats()
        self.scheduler_stats = SchedulerStats.from_worklist(
            work,
            widening_points=len(self.widening_points),
            cache_delta=(
                cache_after[0] - cache_before[0],
                cache_after[1] - cache_before[1],
            ),
        )
        return self.table

    def narrow(self, passes: int) -> None:
        """Decreasing iteration over the dependency graph: re-run transfers
        without widening, keeping only sound refinements. Counts against the
        same budget as the ascending phase; in degrade mode an exhausted
        budget simply stops the (optional) refinement."""
        node_map = self.program.factory.nodes
        order = sorted(self.table.keys())
        for _ in range(passes):
            changed = False
            for nid in order:
                if self._degrade is not None and self._degrade.is_degraded_node(
                    nid
                ):
                    continue
                self.iterations += 1
                try:
                    self._tick()
                except BudgetExceeded as exc:
                    if self._degrade is None:
                        raise
                    self._degrade.diagnostics.events.append(
                        f"narrowing stopped early: {exc}"
                    )
                    return
                in_state = self._assemble_input(nid)
                try:
                    if self._faults is not None:
                        self._faults.before_transfer(nid)
                    out = transfer(node_map[nid], in_state, self.ctx)
                except BudgetExceeded:
                    raise
                except Exception as exc:
                    if self._degrade is None:
                        if isinstance(exc, ReproError):
                            raise
                        raise AnalysisError(
                            f"transfer function crashed at node {nid}: {exc}",
                            node=nid,
                        ) from exc
                    self._degrade.degrade_node(nid, self.table, cause=str(exc))
                    continue
                if out is None:
                    continue
                old = self.table.get(nid)
                if old is None:
                    continue
                if out.leq(old) and not old.leq(out):
                    # narrowing assembles its input from scratch, so ``out``
                    # never aliases the table or the input cache — no copy
                    self.table[nid] = out
                    self._entries += len(out) - len(old)
                    changed = True
            if not changed:
                break


def run_sparse(
    program: Program,
    pre: PreAnalysis | None = None,
    defuse: DefUseInfo | None = None,
    dep_result: DataDepResult | None = None,
    method: str = "ssa",
    bypass: bool = True,
    strict: bool = True,
    widen: bool = True,
    narrowing_passes: int = 0,
    max_iterations: int | None = None,
    widening_thresholds: tuple[int, ...] | str | None = None,
    budget: Budget | None = None,
    on_budget: str = "fail",
    faults=None,
    watchdog: bool = True,
    scheduler: str = "wto",
    widening_delay: int = 0,
) -> SparseResult:
    """Run the sparse interval analysis end to end: pre-analysis → D̂/Û →
    data dependencies → sparse fixpoint (the three phases whose times the
    paper reports as Dep and Fix).

    ``strict``/``widen`` mirror :func:`repro.analysis.dense.run_dense`; with
    ``strict=False, widen=False`` the result equals the dense analysis
    exactly (Lemma 2) on programs with finite abstract chains. The
    resilience knobs (``budget``, ``on_budget``, ``faults``, ``watchdog``)
    also mirror :func:`run_dense`.
    """
    if on_budget not in ("fail", "degrade"):
        raise ValueError(f"on_budget must be 'fail' or 'degrade', not {on_budget!r}")
    stats = SparseStats()

    t0 = time.perf_counter()
    if pre is None:
        pre = run_preanalysis(program)
    stats.time_pre = time.perf_counter() - t0

    t1 = time.perf_counter()
    graph = build_interproc_graph(program, pre.site_callees, localized=False)
    # WTO of the control graph: heads are the widening points (shared with
    # the dense engine so both widen identical per-location streams) and
    # its linear order drives the priority worklist.
    wto = compute_wto([program.entry_node().nid], graph.succs)
    widening_points = set(wto.heads) if widen else set()
    if defuse is None:
        defuse = compute_defuse(program, pre)
    if dep_result is None:
        dep_result = generate_datadeps(
            program,
            pre,
            defuse,
            method=method,
            bypass=bypass,
            widening_points=widening_points,
        )
    stats.time_dep = time.perf_counter() - t1
    stats.dep_count = len(dep_result.deps)
    stats.raw_dep_count = dep_result.raw_dep_count

    t2 = time.perf_counter()
    ctx = AnalysisContext(program, pre.site_callees, strict=strict)
    from repro.analysis.dense import _resolve_thresholds

    resolved_budget = Budget.coerce(budget, max_iterations=max_iterations)
    diagnostics = Diagnostics(budget=resolved_budget)
    degrade = None
    if on_budget == "degrade":
        pre_state = pre.state
        degrade = DegradeController(
            program,
            fallback_state=lambda proc: pre_state.copy(),
            diagnostics=diagnostics,
            watchdog=make_watchdog(pre_state) if watchdog else None,
        )
    solver = SparseSolver(
        program,
        ctx,
        dep_result.deps,
        graph,
        widening_points,
        budget=resolved_budget,
        widening_thresholds=_resolve_thresholds(program, widening_thresholds),
        faults=FaultInjector.coerce(faults),
        degrade=degrade,
        priority=wto.priority,
        scheduler=scheduler,
        widening_delay=widening_delay,
    )
    table = solver.solve(strict=strict)
    if narrowing_passes:
        solver.narrow(narrowing_passes)
    stats.time_fix = time.perf_counter() - t2
    stats.iterations = solver.iterations
    stats.reachable_nodes = len(solver.reached)
    diagnostics.iterations = solver.iterations
    diagnostics.timings.update(
        pre=stats.time_pre, dep=stats.time_dep, fix=stats.time_fix
    )
    if solver.scheduler_stats is not None:
        diagnostics.scheduler = solver.scheduler_stats.as_dict()

    return SparseResult(
        table,
        dep_result.deps,
        defuse,
        pre,
        stats,
        graph,
        diagnostics,
        solver.scheduler_stats,
    )
