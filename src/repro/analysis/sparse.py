"""Sparse interval analysis (Section 2.7) — a configuration of the engine.

Computes ``lfp F♯_s`` where::

    F♯_s(X)(c) = f♯_c( ⊔_{cd —l→ c} X(cd)|l )

Values propagate along data dependencies instead of control-flow edges: a
node's input state is assembled from exactly the locations its dependencies
carry, and whenever the output value of a carried location changes, only the
dependent nodes re-run.

The propagation mechanics — push-based input caches, the control-graph
reachability bit, bypass-aware dependency edges — live in
:class:`repro.analysis.engine.DepGraphSpace` (with
:class:`~repro.analysis.engine.IntervalCells` as the bottom-default cell
strategy); this module wires it to the interval transfer functions and the
dependency generator. Widening happens at the control graph's WTO heads —
the same :func:`~repro.analysis.schedule.widening_points_for` selection the
dense engine uses; dependency generation cuts chains there (see
``repro.analysis.datadep``) so both engines widen on identical per-location
streams.
"""

from __future__ import annotations

import time

from repro.analysis.datadep import DataDepResult, generate_datadeps
from repro.analysis.defuse import DefUseInfo, compute_defuse
from repro.analysis.dense import (
    EnginePlan,
    _resolve_thresholds,
    build_interproc_graph,
)
from repro.analysis.engine import (
    DepGraphSpace,
    FixpointEngine,
    FixpointResult,
    FixpointStats,
    IntervalCells,
)
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.schedule import GraphView, widening_points_for
from repro.analysis.semantics import AnalysisContext, transfer
from repro.ir.program import Program
from repro.runtime.budget import Budget
from repro.runtime.degrade import DegradeController, Diagnostics, make_watchdog
from repro.runtime.faults import FaultInjector
from repro.telemetry.core import Telemetry

#: Legacy aliases — the sparse engine shares the unified result surface.
SparseStats = FixpointStats
SparseResult = FixpointResult


def prepare_interval_sparse(
    program: Program,
    pre: PreAnalysis,
    *,
    method: str = "ssa",
    bypass: bool = True,
    strict: bool = True,
    widen: bool = True,
    widening_thresholds: tuple[int, ...] | str | None = None,
    widening_delay: int = 0,
    defuse: DefUseInfo | None = None,
    dep_result: DataDepResult | None = None,
    telemetry=None,
) -> EnginePlan:
    """Build the plan for ``Interval_sparse``: control graph, WTO, D̂/Û,
    and dependency generation (the Dep phase) — everything up to, but not
    including, fixpoint iteration."""
    tel = Telemetry.coerce(telemetry)
    t1 = time.perf_counter()
    with tel.span("dep-gen", method=method, bypass=bypass):
        graph = build_interproc_graph(program, pre.site_callees, localized=False)
        # Widening points come from the *control* graph's WTO (shared with
        # the dense engine) and must exist before dependency generation,
        # which cuts dependency chains at them.
        wto, widening_points = widening_points_for(
            GraphView((program.entry_node().nid,), graph.succs), widen
        )
        if defuse is None:
            defuse = compute_defuse(program, pre)
        if dep_result is None:
            dep_result = generate_datadeps(
                program,
                pre,
                defuse,
                method=method,
                bypass=bypass,
                widening_points=widening_points,
                telemetry=tel,
            )
    time_dep = time.perf_counter() - t1

    ctx = AnalysisContext(program, pre.site_callees, strict=strict)
    node_map = program.factory.nodes

    def node_transfer(nid, state):
        return transfer(node_map[nid], state, ctx)

    from repro.domains.state import AbsState

    return EnginePlan(
        program=program,
        pre=pre,
        domain="interval",
        mode="sparse",
        strict=strict,
        widen=widen,
        graph=graph,
        entries={},
        transfer=node_transfer,
        state_factory=AbsState,
        wto=wto,
        widening_points=widening_points,
        thresholds=_resolve_thresholds(program, widening_thresholds),
        widening_delay=widening_delay,
        entry_nid=program.entry_node().nid,
        node_ids=tuple(node_map.keys()),
        deps=dep_result.deps,
        cells_factory=IntervalCells,
        dep_count=len(dep_result.deps),
        raw_dep_count=dep_result.raw_dep_count,
        defuse=defuse,
        ctx=ctx,
        time_dep=time_dep,
    )


def run_sparse(
    program: Program,
    pre: PreAnalysis | None = None,
    defuse: DefUseInfo | None = None,
    dep_result: DataDepResult | None = None,
    method: str = "ssa",
    bypass: bool = True,
    strict: bool = True,
    widen: bool = True,
    narrowing_passes: int = 0,
    max_iterations: int | None = None,
    widening_thresholds: tuple[int, ...] | str | None = None,
    budget: Budget | None = None,
    on_budget: str = "fail",
    faults=None,
    watchdog: bool = True,
    scheduler: str = "wto",
    widening_delay: int = 0,
    telemetry=None,
    checkpoint=None,
    resume_from=None,
) -> FixpointResult:
    """Run the sparse interval analysis end to end: pre-analysis → D̂/Û →
    data dependencies → sparse fixpoint (the three phases whose times the
    paper reports as Dep and Fix).

    ``strict``/``widen`` mirror :func:`repro.analysis.dense.run_dense`; with
    ``strict=False, widen=False`` the result equals the dense analysis
    exactly (Lemma 2) on programs with finite abstract chains. The
    resilience knobs (``budget``, ``on_budget``, ``faults``, ``watchdog``)
    also mirror :func:`run_dense`.
    """
    if on_budget not in ("fail", "degrade"):
        raise ValueError(f"on_budget must be 'fail' or 'degrade', not {on_budget!r}")
    tel = Telemetry.coerce(telemetry)

    t0 = time.perf_counter()
    if pre is None:
        pre = run_preanalysis(program, telemetry=tel)
    time_pre = time.perf_counter() - t0

    plan = prepare_interval_sparse(
        program,
        pre,
        method=method,
        bypass=bypass,
        strict=strict,
        widen=widen,
        widening_thresholds=widening_thresholds,
        widening_delay=widening_delay,
        defuse=defuse,
        dep_result=dep_result,
        telemetry=tel,
    )

    t2 = time.perf_counter()
    resolved_budget = Budget.coerce(budget, max_iterations=max_iterations)
    diagnostics = Diagnostics(budget=resolved_budget)
    degrade = None
    if on_budget == "degrade":
        pre_state = pre.state
        degrade = DegradeController(
            program,
            fallback_state=lambda proc: pre_state.copy(),
            diagnostics=diagnostics,
            watchdog=make_watchdog(pre_state) if watchdog else None,
        )

    space = plan.make_program_space()
    engine = FixpointEngine(
        space,
        plan.transfer,
        plan.widening_points,
        widening_thresholds=plan.thresholds,
        widening_delay=plan.widening_delay,
        narrowing_passes=narrowing_passes,
        budget=resolved_budget,
        stage="sparse fixpoint",
        faults=FaultInjector.coerce(faults),
        degrade=degrade,
        priority=plan.wto.priority,
        scheduler=scheduler,
        telemetry=tel,
        checkpointer=checkpoint,
    )
    if resume_from is not None:
        engine.restore(resume_from)
    table = engine.solve()
    stats = engine.stats
    stats.time_pre = time_pre
    stats.time_dep = plan.time_dep
    stats.time_fix = time.perf_counter() - t2
    stats.dep_count = plan.dep_count
    stats.raw_dep_count = plan.raw_dep_count
    diagnostics.iterations = stats.iterations
    diagnostics.timings.update(
        pre=stats.time_pre, dep=stats.time_dep, fix=stats.time_fix
    )
    if engine.scheduler_stats is not None:
        diagnostics.scheduler = engine.scheduler_stats.as_dict()

    return FixpointResult(
        table,
        stats,
        pre=pre,
        defuse=plan.defuse,
        deps=plan.deps,
        graph=plan.graph,
        elapsed=stats.time_total,
        diagnostics=diagnostics,
        scheduler_stats=engine.scheduler_stats,
    )
