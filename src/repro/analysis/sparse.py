"""Sparse fixpoint engine (Section 2.7).

Computes ``lfp F♯_s`` where::

    F♯_s(X)(c) = f♯_c( ⊔_{cd —l→ c} X(cd)|l )

Values propagate along data dependencies instead of control-flow edges: a
node's input state is assembled from exactly the locations its dependencies
carry, and whenever the output value of a carried location changes, only the
dependent nodes re-run.

Implementation notes:

* **Push-based inputs**: producers push changed values into consumers'
  input caches, so a visit costs O(|changed locations|) instead of
  re-joining the whole fan-in; per-location change sets mean a node's
  dependents only re-run when a location they carry actually moved.
* **Reachability** rides along the interprocedural *control* graph at one
  bit per node: a node's transfer runs only once some control-flow
  predecessor produced a state, keeping strict mode as precise as the
  strict dense engine on dead branches.
* **Widening** happens at the control graph's widening points — the same
  set the dense engine uses; dependency generation cuts chains there (see
  ``repro.analysis.datadep``) so both engines widen on identical
  per-location streams.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.analysis.datadep import DataDepResult, DataDeps, generate_datadeps
from repro.analysis.defuse import DefUseInfo, compute_defuse
from repro.analysis.dense import InterprocGraph, build_interproc_graph
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.semantics import AnalysisContext, transfer
from repro.analysis.worklist import find_widening_points
from repro.domains.absloc import AbsLoc
from repro.domains.state import AbsState
from repro.ir.program import Program


@dataclass
class SparseStats:
    iterations: int = 0
    dep_count: int = 0
    raw_dep_count: int = 0
    reachable_nodes: int = 0
    #: wall-clock split matching the paper's Dep / Fix columns
    time_pre: float = 0.0
    time_dep: float = 0.0
    time_fix: float = 0.0

    @property
    def time_total(self) -> float:
        return self.time_pre + self.time_dep + self.time_fix


@dataclass
class SparseResult:
    """Sparse fixpoint table plus supporting artifacts."""

    table: dict[int, AbsState]
    deps: DataDeps
    defuse: DefUseInfo
    pre: PreAnalysis
    stats: SparseStats
    graph: InterprocGraph

    def state_at(self, nid: int) -> AbsState:
        return self.table.get(nid, AbsState())

    def value_at(self, nid: int, loc: AbsLoc):
        return self.state_at(nid).get(loc)


class SparseSolver:
    """Worklist solver over the dependency relation."""

    def __init__(
        self,
        program: Program,
        ctx: AnalysisContext,
        deps: DataDeps,
        graph: InterprocGraph,
        widening_points: set[int] | None = None,
        max_iterations: int | None = None,
        widening_thresholds: tuple[int, ...] | None = None,
    ) -> None:
        self.max_iterations = max_iterations
        self.thresholds = widening_thresholds
        self.program = program
        self.ctx = ctx
        self.deps = deps
        self.graph = graph
        self.table: dict[int, AbsState] = {}
        #: push-based input accumulator per consumer node
        self.in_cache: dict[int, AbsState] = {}
        self.reached: set[int] = set()
        self.iterations = 0
        if widening_points is None:
            # Fallback: dep-graph back edges (always terminates, but may
            # widen at different points than the dense engine).
            dep_succs = deps.node_succs()
            widening_points = find_widening_points(
                list(dep_succs.keys()), dep_succs
            )
        self.widening_points = widening_points

    def _assemble_input(self, nid: int) -> AbsState:
        """From-scratch input assembly (used by narrowing; the main loop
        uses the push-based input cache instead)."""
        state = AbsState()
        for src, locs in self.deps.in_edges(nid):
            src_state = self.table.get(src)
            if src_state is None:
                continue
            for loc in locs:
                value = src_state.get(loc)
                if not value.is_bottom():
                    state.weak_set(loc, value)
        return state

    def _push(
        self,
        nid: int,
        out: AbsState,
        changed: "set[AbsLoc] | None",
        in_work: set[int],
        enqueue,
    ) -> None:
        """Push changed values along outgoing dependencies into the
        consumers' input caches — O(#changed) per edge instead of
        re-assembling O(fan-in) inputs at every consumer visit."""
        for dst, locs in self.deps.out_edges(nid):
            touched = locs if changed is None else (locs & changed)
            if not touched:
                continue
            cache = self.in_cache.get(dst)
            if cache is None:
                cache = AbsState()
                self.in_cache[dst] = cache
            grew = False
            for loc in touched:
                value = out.get(loc)
                if value.is_bottom():
                    continue
                old = cache.get(loc)
                new = old.join(value)
                if new != old:
                    cache.set(loc, new)
                    grew = True
            if grew and dst in self.reached and dst not in in_work:
                in_work.add(dst)
                enqueue(dst)

    def solve(self, strict: bool = True) -> dict[int, AbsState]:
        entry = self.program.entry_node()
        node_map = self.program.factory.nodes
        if strict:
            work: deque[int] = deque([entry.nid])
            self.reached.add(entry.nid)
        else:
            # Non-strict (paper) mode: every control point runs.
            work = deque(sorted(node_map.keys()))
            self.reached.update(node_map.keys())
        in_work = set(work)

        while work:
            nid = work.popleft()
            in_work.discard(nid)
            if nid not in self.reached:
                continue
            self.iterations += 1
            if self.max_iterations is not None and self.iterations > self.max_iterations:
                from repro.analysis.worklist import AnalysisBudgetExceeded

                raise AnalysisBudgetExceeded(
                    f"sparse fixpoint exceeded {self.max_iterations} iterations"
                )
            in_state = self.in_cache.get(nid)
            in_state = in_state if in_state is not None else AbsState()
            out = transfer(node_map[nid], in_state, self.ctx)
            if out is None:
                continue

            # Reachability propagates along control flow (cheap bit).
            newly_reached = []
            for succ in self.graph.succs.get(nid, ()):
                if succ not in self.reached:
                    self.reached.add(succ)
                    newly_reached.append(succ)
                    if succ not in in_work:
                        in_work.add(succ)
                        work.append(succ)
            # A node reached late may already have pending cached input
            # from dep pushes; it is enqueued above and will consume it.

            old = self.table.get(nid)
            if old is None:
                self.table[nid] = out.copy()
                out = self.table[nid]
                changed: set[AbsLoc] | None = None  # everything is new
            elif nid in self.widening_points:
                changed = old.widen_changed(out, self.thresholds)
                out = old
            else:
                changed = old.join_changed(out)
                out = old
            if changed is None or changed:
                self._push(nid, out, changed, in_work, work.append)
        return self.table

    def narrow(self, passes: int) -> None:
        """Decreasing iteration over the dependency graph: re-run transfers
        without widening, keeping only sound refinements."""
        node_map = self.program.factory.nodes
        order = sorted(self.table.keys())
        for _ in range(passes):
            changed = False
            for nid in order:
                in_state = self._assemble_input(nid)
                out = transfer(node_map[nid], in_state, self.ctx)
                if out is None:
                    continue
                old = self.table[nid]
                if out.leq(old) and not old.leq(out):
                    self.table[nid] = out.copy()
                    changed = True
            if not changed:
                break


def run_sparse(
    program: Program,
    pre: PreAnalysis | None = None,
    defuse: DefUseInfo | None = None,
    dep_result: DataDepResult | None = None,
    method: str = "ssa",
    bypass: bool = True,
    strict: bool = True,
    widen: bool = True,
    narrowing_passes: int = 0,
    max_iterations: int | None = None,
    widening_thresholds: tuple[int, ...] | str | None = None,
) -> SparseResult:
    """Run the sparse interval analysis end to end: pre-analysis → D̂/Û →
    data dependencies → sparse fixpoint (the three phases whose times the
    paper reports as Dep and Fix).

    ``strict``/``widen`` mirror :func:`repro.analysis.dense.run_dense`; with
    ``strict=False, widen=False`` the result equals the dense analysis
    exactly (Lemma 2) on programs with finite abstract chains.
    """
    stats = SparseStats()

    t0 = time.perf_counter()
    if pre is None:
        pre = run_preanalysis(program)
    stats.time_pre = time.perf_counter() - t0

    t1 = time.perf_counter()
    graph = build_interproc_graph(program, pre.site_callees, localized=False)
    widening_points = (
        find_widening_points([program.entry_node().nid], graph.succs)
        if widen
        else set()
    )
    if defuse is None:
        defuse = compute_defuse(program, pre)
    if dep_result is None:
        dep_result = generate_datadeps(
            program,
            pre,
            defuse,
            method=method,
            bypass=bypass,
            widening_points=widening_points,
        )
    stats.time_dep = time.perf_counter() - t1
    stats.dep_count = len(dep_result.deps)
    stats.raw_dep_count = dep_result.raw_dep_count

    t2 = time.perf_counter()
    ctx = AnalysisContext(program, pre.site_callees, strict=strict)
    from repro.analysis.dense import _resolve_thresholds

    solver = SparseSolver(
        program,
        ctx,
        dep_result.deps,
        graph,
        widening_points,
        max_iterations=max_iterations,
        widening_thresholds=_resolve_thresholds(program, widening_thresholds),
    )
    table = solver.solve(strict=strict)
    if narrowing_passes:
        solver.narrow(narrowing_passes)
    stats.time_fix = time.perf_counter() - t2
    stats.iterations = solver.iterations
    stats.reachable_nodes = len(solver.reached)

    return SparseResult(table, dep_result.deps, defuse, pre, stats, graph)
