"""Generic worklist fixpoint engine.

Computes ``lfp F♯`` where ``F♯(X)(c) = f♯_c(⊔_{c'↪c} X(c'))`` (equation (3)
of the paper) over an arbitrary directed graph of control points. Widening
is applied at a supplied set of widening points (by default the component
heads of a weak topological order — see :mod:`repro.analysis.schedule` —
which cut every cycle), guaranteeing termination for infinite-height
domains.

Scheduling: with a WTO ``priority`` map the solver iterates nodes in weak
topological order (inner loops stabilize before outer code resumes); with
``scheduler="fifo"`` it falls back to the classic FIFO deque — the baseline
``benchmarks/bench_scheduling.py`` measures against. Either way a
:class:`~repro.analysis.schedule.SchedulerStats` record of re-visits,
priority inversions and join-cache hits is left on ``scheduler_stats``.

The engine is shared by the vanilla and localized dense analyses (the
sparse engine in :mod:`repro.analysis.sparse` propagates along data
dependencies instead and has its own loop).

Resilience (see :mod:`repro.runtime`): the solver meters every iteration —
including narrowing passes — against a unified :class:`repro.runtime.Budget`,
optionally runs a :class:`~repro.runtime.faults.FaultInjector` hook before
each transfer application, and, when a
:class:`~repro.runtime.degrade.DegradeController` is attached, converts
budget exhaustion and transfer-function crashes into per-procedure
degradation to the pre-analysis state instead of aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.analysis.schedule import SchedulerStats, make_worklist
from repro.domains.state import AbsState
from repro.runtime.budget import Budget, BudgetMeter
from repro.runtime.errors import AnalysisError, BudgetExceeded, ReproError

#: Backwards-compatible alias — the reproduction analog of the paper's
#: 24-hour timeout (the ∞ entries of Tables 2/3) now lives in the unified
#: :mod:`repro.runtime.errors` hierarchy.
AnalysisBudgetExceeded = BudgetExceeded

Transfer = Callable[[int, AbsState], AbsState | None]
EdgeTransform = Callable[[int, int, AbsState], AbsState | None]


def find_widening_points(
    roots: Iterable[int], succs: Mapping[int, Sequence[int]]
) -> set[int]:
    """Targets of back edges found by iterative DFS — the classic loop-head
    widening point selection."""
    color: dict[int, int] = {}  # 0 = in progress, 1 = done
    heads: set[int] = set()
    for root in roots:
        if root in color:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        color[root] = 0
        while stack:
            node, i = stack[-1]
            nexts = succs.get(node, ())
            if i < len(nexts):
                stack[-1] = (node, i + 1)
                child = nexts[i]
                state = color.get(child)
                if state is None:
                    color[child] = 0
                    stack.append((child, 0))
                elif state == 0:
                    heads.add(child)  # back edge
            else:
                color[node] = 1
                stack.pop()
    return heads


@dataclass
class FixpointStats:
    """Counters describing one fixpoint run."""

    iterations: int = 0
    max_worklist: int = 0
    visited: set[int] = field(default_factory=set)


class WorklistSolver:
    """Chaotic iteration with widening at loop heads.

    ``table[c]`` holds the state *at* ``c`` — the result of applying ``f♯_c``
    to the join of its predecessors' states (matching the paper's
    formulation where the transfer happens on entry to ``c``).
    """

    def __init__(
        self,
        succs: Mapping[int, Sequence[int]],
        preds: Mapping[int, Sequence[int]],
        transfer: Transfer,
        widening_points: set[int],
        edge_transform: EdgeTransform | None = None,
        narrowing_passes: int = 0,
        max_iterations: int | None = None,
        widening_thresholds: tuple[int, ...] | None = None,
        budget: Budget | None = None,
        meter: BudgetMeter | None = None,
        faults=None,
        degrade=None,
        priority: Mapping[int, int] | None = None,
        scheduler: str = "wto",
        widening_delay: int = 0,
    ) -> None:
        self._succs = succs
        self._preds = preds
        self._transfer = transfer
        self._widening_points = widening_points
        self._edge_transform = edge_transform
        self._narrowing_passes = narrowing_passes
        self._thresholds = widening_thresholds
        #: join (don't widen) the first N growth observations per head —
        #: transient ascents shorter than the delay converge exactly, which
        #: also makes the result independent of the visit order for them
        self._widening_delay = widening_delay
        self._growth: dict[int, int] = {}
        if meter is None:
            meter = BudgetMeter(
                Budget.coerce(budget, max_iterations=max_iterations),
                stage="fixpoint",
            )
        self._meter = meter
        self._faults = faults
        self._degrade = degrade
        #: WTO positions driving the priority worklist (None = plain FIFO)
        self._priority = priority
        self._scheduler = scheduler if priority is not None else "fifo"
        self.table: dict[int, AbsState] = {}
        self.stats = FixpointStats()
        self.scheduler_stats: SchedulerStats | None = None
        self._work = None
        #: running total of state entries across the table — the budget
        #: meter's state-size probe reads this instead of re-summing
        self._entries = 0

    # -- resilience hooks ------------------------------------------------------

    def _table_entries(self) -> int:
        return self._entries

    def _tick(self) -> None:
        if self._faults is not None:
            self._faults.on_iteration(self.stats.iterations)
        self._meter.tick(self._table_entries)

    def _apply_transfer(self, node: int, in_state: AbsState) -> AbsState | None:
        """Run faults hook + transfer; a crash degrades the node's procedure
        when a degrade controller is attached, otherwise surfaces as a
        structured :class:`AnalysisError`."""
        try:
            if self._faults is not None:
                self._faults.before_transfer(node)
            return self._transfer(node, in_state)
        except BudgetExceeded:
            raise
        except Exception as exc:
            if self._degrade is None:
                if isinstance(exc, ReproError):
                    raise
                raise AnalysisError(
                    f"transfer function crashed at node {node}: {exc}", node=node
                ) from exc
            newly = self._degrade.degrade_node(node, self.table, cause=str(exc))
            self._absorb_degraded(newly)
            return None

    def _absorb_degraded(self, newly: set[int]) -> None:
        """Re-enqueue live successors of freshly degraded nodes so they
        consume the fallback states (e.g. a return site reading a degraded
        callee's exit)."""
        if not newly:
            return
        # Degradation wrote whole-procedure fallback states behind the
        # incremental counter's back — resync it (rare event).
        self._entries = sum(len(s) for s in self.table.values())
        if self._work is None:
            return
        for dn in newly:
            for s in self._succs.get(dn, ()):
                if not self._degrade.is_degraded_node(s):
                    self._work.add(s)

    def _in_state(self, node: int, initial: AbsState | None) -> AbsState | None:
        acc: AbsState | None = None
        for p in self._preds.get(node, ()):
            ps = self.table.get(p)
            if ps is None:
                continue
            if self._edge_transform is not None:
                ps = self._edge_transform(p, node, ps)
                if ps is None:
                    continue
            if acc is None:
                acc = ps.copy()
            else:
                acc.join_with(ps)
        # The seed only matters while no predecessor has produced a state:
        # it makes the node runnable (entry nodes, non-strict seeding). It
        # must NOT be joined once real states flow — for ⊤-defaulted state
        # types (pack maps) joining the empty seed would erase everything.
        if acc is None and initial is not None:
            acc = initial.copy()
        return acc

    def solve(self, entries: dict[int, AbsState]) -> dict[int, AbsState]:
        """Run to fixpoint from the given entry states (node -> initial)."""
        from repro.domains.value import cache_stats

        cache_before = cache_stats()
        work = make_worklist(self._scheduler, self._priority, entries.keys())
        self._work = work
        while work:
            node = work.pop()
            if self._degrade is not None and self._degrade.is_degraded_node(node):
                continue
            self.stats.iterations += 1
            try:
                self._tick()
            except BudgetExceeded as exc:
                if self._degrade is None:
                    raise
                # Degrade the procedure whose node could not afford its next
                # visit; pending work in other procedures degrades the same
                # way as it is popped (every further tick re-raises), so the
                # loop still terminates and every unconverged procedure ends
                # at the pre-analysis bound.
                newly = self._degrade.degrade_node(node, self.table, cause=str(exc))
                self._absorb_degraded(newly)
                continue
            self.stats.visited.add(node)
            in_state = self._in_state(node, entries.get(node))
            if in_state is None:
                continue
            out = self._apply_transfer(node, in_state)
            if out is None:
                continue
            old = self.table.get(node)
            if old is None:
                # ``out`` is freshly built (the transfer never aliases the
                # table), so it can be installed without a defensive copy.
                self.table[node] = out
                self._entries += len(out)
                changed = True
            elif node in self._widening_points:
                before = len(old)
                seen = self._growth.get(node, 0)
                if seen < self._widening_delay:
                    changed = old.join_with(out)
                    if changed:
                        self._growth[node] = seen + 1
                else:
                    changed = old.widen_with(out, self._thresholds)
                self._entries += len(old) - before
            else:
                before = len(old)
                changed = old.join_with(out)
                self._entries += len(old) - before
            if changed:
                for s in self._succs.get(node, ()):
                    work.add(s)
        self._work = None
        self.stats.max_worklist = work.max_size
        cache_after = cache_stats()
        self.scheduler_stats = SchedulerStats.from_worklist(
            work,
            widening_points=len(self._widening_points),
            cache_delta=(
                cache_after[0] - cache_before[0],
                cache_after[1] - cache_before[1],
            ),
        )
        if self._narrowing_passes:
            self._narrow(entries)
        return self.table

    def _narrow(self, entries: dict[int, AbsState]) -> None:
        """Decreasing iteration: recompute states without widening for a
        bounded number of passes, keeping only sound refinements. Narrowing
        work counts against the same budget as the ascending phase; when the
        budget runs out mid-narrowing the widened table — already sound — is
        kept as-is (degrade mode) or the exhaustion is surfaced (fail mode)."""
        order = sorted(self.table.keys())
        for _ in range(self._narrowing_passes):
            changed = False
            for node in order:
                if self._degrade is not None and self._degrade.is_degraded_node(
                    node
                ):
                    continue
                self.stats.iterations += 1
                try:
                    self._tick()
                except BudgetExceeded as exc:
                    if self._degrade is None:
                        raise
                    self._degrade.diagnostics.events.append(
                        f"narrowing stopped early: {exc}"
                    )
                    return
                in_state = self._in_state(node, entries.get(node))
                if in_state is None:
                    continue
                out = self._apply_transfer(node, in_state)
                if out is None:
                    continue
                old = self.table.get(node)
                if old is None:
                    continue
                if out.leq(old) and not old.leq(out):
                    # fresh transfer output, never aliased — no copy needed
                    self.table[node] = out
                    self._entries += len(out) - len(old)
                    changed = True
            if not changed:
                break
