"""Compatibility shim over the generic fixpoint engine.

The worklist loop that used to live here — and its three siblings in
``sparse.py`` and ``relational.py`` — moved into
:mod:`repro.analysis.engine`: one :class:`~repro.analysis.engine.FixpointEngine`
parameterized by a propagation space and a state lattice.
:class:`WorklistSolver` survives as a thin adapter that configures the
engine with a :class:`~repro.analysis.engine.CfgSpace` (equation (3):
whole states joined over control edges), preserving the historical
constructor/`solve(entries)` surface for existing callers and tests.

:func:`find_widening_points` (DFS back-edge targets) also remains — the
engines themselves select widening points via
:func:`repro.analysis.schedule.widening_points_for`, but the classic
selection is kept for comparison and tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analysis.engine import (
    CfgSpace,
    EdgeTransform,
    FixpointEngine,
    FixpointStats,
    Transfer,
)
from repro.analysis.schedule import SchedulerStats
from repro.domains.state import AbsState
from repro.runtime.budget import Budget, BudgetMeter
from repro.runtime.errors import BudgetExceeded

#: Backwards-compatible alias — the reproduction analog of the paper's
#: 24-hour timeout (the ∞ entries of Tables 2/3) now lives in the unified
#: :mod:`repro.runtime.errors` hierarchy.
AnalysisBudgetExceeded = BudgetExceeded

__all__ = [
    "AnalysisBudgetExceeded",
    "FixpointStats",
    "Transfer",
    "EdgeTransform",
    "WorklistSolver",
    "find_widening_points",
]


def find_widening_points(
    roots: Iterable[int], succs: Mapping[int, Sequence[int]]
) -> set[int]:
    """Targets of back edges found by iterative DFS — the classic loop-head
    widening point selection."""
    color: dict[int, int] = {}  # 0 = in progress, 1 = done
    heads: set[int] = set()
    for root in roots:
        if root in color:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        color[root] = 0
        while stack:
            node, i = stack[-1]
            nexts = succs.get(node, ())
            if i < len(nexts):
                stack[-1] = (node, i + 1)
                child = nexts[i]
                state = color.get(child)
                if state is None:
                    color[child] = 0
                    stack.append((child, 0))
                elif state == 0:
                    heads.add(child)  # back edge
            else:
                color[node] = 1
                stack.pop()
    return heads


class WorklistSolver:
    """CFG-space configuration of the generic engine (legacy surface).

    ``table[c]`` holds the state *at* ``c`` — the result of applying ``f♯_c``
    to the join of its predecessors' states.
    """

    def __init__(
        self,
        succs: Mapping[int, Sequence[int]],
        preds: Mapping[int, Sequence[int]],
        transfer: Transfer,
        widening_points: set[int],
        edge_transform: EdgeTransform | None = None,
        narrowing_passes: int = 0,
        max_iterations: int | None = None,
        widening_thresholds: tuple[int, ...] | None = None,
        budget: Budget | None = None,
        meter: BudgetMeter | None = None,
        faults=None,
        degrade=None,
        priority: Mapping[int, int] | None = None,
        scheduler: str = "wto",
        widening_delay: int = 0,
    ) -> None:
        self._succs = succs
        self._preds = preds
        self._transfer = transfer
        self._widening_points = widening_points
        self._edge_transform = edge_transform
        self._narrowing_passes = narrowing_passes
        self._thresholds = widening_thresholds
        self._widening_delay = widening_delay
        if meter is None:
            meter = BudgetMeter(
                Budget.coerce(budget, max_iterations=max_iterations),
                stage="fixpoint",
            )
        self._meter = meter
        self._faults = faults
        self._degrade = degrade
        self._priority = priority
        self._scheduler = scheduler
        self.table: dict[int, AbsState] = {}
        self.stats = FixpointStats()
        self.scheduler_stats: SchedulerStats | None = None

    def solve(self, entries: dict[int, AbsState]) -> dict[int, AbsState]:
        """Run to fixpoint from the given entry states (node -> initial)."""
        space = CfgSpace(
            self._succs,
            self._preds,
            entries,
            edge_transform=self._edge_transform,
        )
        engine = FixpointEngine(
            space,
            self._transfer,
            self._widening_points,
            widening_thresholds=self._thresholds,
            widening_delay=self._widening_delay,
            narrowing_passes=self._narrowing_passes,
            meter=self._meter,
            faults=self._faults,
            degrade=self._degrade,
            priority=self._priority,
            scheduler=self._scheduler,
        )
        self.table = engine.solve()
        self.stats = engine.stats
        self.scheduler_stats = engine.scheduler_stats
        return self.table
