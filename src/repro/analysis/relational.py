"""Packed relational (octagon) analysis — Section 4 of the paper.

Abstract states map variable *packs* to octagons (``Ŝ = Packs → R̂``).
Definitions and uses are pack-granular: an assignment ``x := e`` defines
(and uses) every pack containing ``x`` and uses the singleton packs of the
variables of ``e`` outside the pack — exactly the D̂/Û of Section 4.2. The
same sparse machinery as the interval analysis then applies, with packs in
the role of abstract locations.

Expression handling follows the paper's program transformation ``T``: a
right-hand side is rewritten per-pack into the internal language
``e_rel ::= Ẑ | x | e+e`` — variables outside the pack are replaced by
their interval, obtained by projecting their singleton pack (``p_x``).

Dense (``vanilla``/``base``-with-localization) and sparse octagon analyzers
are provided, mirroring Table 3's ``Octagon_vanilla``, ``Octagon_base`` and
``Octagon_sparse``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.datadep import generate_datadeps
from repro.analysis.defuse import DefUseInfo
from repro.analysis.dense import EnginePlan, build_interproc_graph
from repro.analysis.engine import (
    CellOps,
    CfgSpace,
    DepGraphSpace,
    FixpointEngine,
    FixpointResult,
)
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.schedule import GraphView, widening_points_for
from repro.analysis.semantics import AnalysisContext, Evaluator
from repro.domains.absloc import AbsLoc, RetLoc, VarLoc
from repro.domains.interval import BOT as ITV_BOT, Interval, TOP as ITV_TOP
from repro.domains.octagon import Octagon
from repro.domains.packs import Pack, PackSet, build_packs
from repro.ir.cfg import Node
from repro.ir.commands import (
    CAlloc,
    CAssume,
    CCall,
    CEntry,
    CExit,
    CRetBind,
    CReturn,
    CSet,
    CSkip,
    EBinOp,
    ELval,
    ENum,
    EUnknown,
    EUnOp,
    Expr,
    VarLv,
)
from repro.ir.program import Program
from repro.runtime.budget import Budget
from repro.runtime.degrade import DegradeController, Diagnostics, make_watchdog
from repro.runtime.faults import FaultInjector
from repro.telemetry.core import Telemetry

_NEGATED = {"<": ">=", ">": "<=", "<=": ">", ">=": "<", "==": "!=", "!=": "=="}


def _make_rel_degrade(
    program: Program, diagnostics: Diagnostics, watchdog: bool
) -> DegradeController:
    """Degradation for pack states: the pre-analysis tracks no relations, so
    the per-procedure fallback is the ⊤ pack map (no relation claimed) —
    trivially above every true state and trivially within the watchdog
    bound."""
    return DegradeController(
        program,
        fallback_state=lambda proc: PackState(),
        diagnostics=diagnostics,
        watchdog=make_watchdog(PackState()) if watchdog else None,
    )

#: sentinel distinguishing "no entry yet" from "pinned at ⊤" (None)
_UNSET = object()


class PackState:
    """A map ``Pack → Octagon`` where a missing pack means ⊤ (no relation
    known). Implements the state interface the worklist solvers expect."""

    __slots__ = ("_map",)

    def __init__(self, mapping: dict[Pack, Octagon] | None = None) -> None:
        self._map: dict[Pack, Octagon] = dict(mapping) if mapping else {}

    @classmethod
    def _adopt(cls, mapping: dict[Pack, Octagon]) -> "PackState":
        """Wrap a freshly-built dict without the constructor's defensive
        copy (copy/restrict/remove build their mapping themselves)."""
        out = object.__new__(cls)
        out._map = mapping
        return out

    def get(self, pack: Pack) -> Octagon:
        found = self._map.get(pack)
        if found is None:
            return Octagon.top(len(pack))
        return found

    def set(self, pack: Pack, oct_: Octagon) -> None:
        if oct_.is_top():
            self._map.pop(pack, None)
        else:
            self._map[pack] = oct_

    def items(self) -> Iterator[tuple[Pack, Octagon]]:
        return iter(self._map.items())

    def __contains__(self, pack: Pack) -> bool:
        return pack in self._map

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        # an empty pack state means "no relations known" (⊤ everywhere),
        # which is still a state — never let truthiness mean emptiness
        return True

    def copy(self) -> "PackState":
        return PackState._adopt(dict(self._map))

    def restrict(self, packs: set[Pack]) -> "PackState":
        return PackState._adopt(
            {p: o for p, o in self._map.items() if p in packs}
        )

    def remove(self, packs: set[Pack]) -> "PackState":
        return PackState._adopt(
            {p: o for p, o in self._map.items() if p not in packs}
        )

    def has_contradiction(self) -> bool:
        return any(o.is_bottom() for o in self._map.values())

    # -- lattice (⊤-default maps: join weakens, entries vanish at ⊤) -------------

    def leq(self, other: "PackState") -> bool:
        if self is other:
            return True
        for pack, oct_ in other._map.items():
            if not self.get(pack).leq(oct_):
                return False
        return True

    def join_changed(self, other: "PackState") -> set[Pack]:
        """In-place join returning exactly the packs whose value changed —
        the ``StateLattice`` protocol's changed-set form, which lets the
        sparse engine propagate per location instead of per node. Packs
        missing from self are ⊤ and ⊤ ⊔ anything = ⊤: nothing to do."""
        changed: set[Pack] = set()
        for pack in list(self._map.keys()):
            joined = self._map[pack].join(other.get(pack))
            if joined != self._map[pack]:
                changed.add(pack)
                self.set(pack, joined)
        return changed

    def widen_changed(
        self, other: "PackState", thresholds: tuple[int, ...] | None = None
    ) -> set[Pack]:
        # thresholds are an interval-domain refinement; octagons ignore them
        changed: set[Pack] = set()
        for pack in list(self._map.keys()):
            widened = self._map[pack].widen(other.get(pack))
            if widened != self._map[pack]:
                changed.add(pack)
                self.set(pack, widened)
        return changed

    def join_with(self, other: "PackState") -> bool:
        """Boolean-changed join (legacy surface over :meth:`join_changed`)."""
        return bool(self.join_changed(other))

    def widen_with(
        self, other: "PackState", thresholds: tuple[int, ...] | None = None
    ) -> bool:
        """Boolean-changed widen (legacy surface over :meth:`widen_changed`)."""
        return bool(self.widen_changed(other, thresholds))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PackState) and self._map == other._map

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{p} ↦ {o}" for p, o in sorted(self._map.items(), key=lambda kv: kv[0].sort_key())
        )
        return "{" + entries + "}"


@dataclass
class RelAccessLog:
    """Pack-level def/use recording (Section 4.2)."""

    used: set[Pack] = field(default_factory=set)
    defined: set[Pack] = field(default_factory=set)


class RelContext:
    """Everything the relational transfer functions need."""

    def __init__(
        self,
        program: Program,
        pre: PreAnalysis,
        packs: PackSet,
        strict: bool = True,
    ) -> None:
        self.program = program
        self.pre = pre
        self.packs = packs
        self.strict = strict
        # Interval evaluator over the pre-analysis state, used to resolve
        # pointer targets of indirect stores.
        self._pre_ctx = AnalysisContext(program, pre.site_callees)
        #: frame cells of recursive procedures are summaries (cf. the
        #: interval semantics): only weak updates, no refinement.
        self.recursive_procs = self._pre_ctx.recursive_procs

    def pointer_targets(self, node: Node, lval) -> set[AbsLoc]:
        ev = Evaluator(self._pre_ctx, self.pre.state)
        return ev.lval_locs(lval)

    def is_summary_var(self, loc: AbsLoc) -> bool:
        proc = getattr(loc, "proc", None)
        return proc in self.recursive_procs


# --------------------------------------------------------------------------
# Expression linearization (the paper's transformation T)
# --------------------------------------------------------------------------


@dataclass
class Linear:
    """``sign·var + const`` or a pure interval when ``var`` is None."""

    sign: int = 0
    var: AbsLoc | None = None
    const: Interval = ITV_BOT


def _as_varloc(expr: Expr) -> AbsLoc | None:
    if isinstance(expr, ELval) and isinstance(expr.lval, VarLv):
        return VarLoc(expr.lval.name, expr.lval.proc)
    return None


def linearize(expr: Expr) -> Linear | None:
    """Try to rewrite ``expr`` as ``±x + [l, u]``; None when non-linear or
    multi-variable (those fall back to interval evaluation)."""
    if isinstance(expr, ENum):
        return Linear(0, None, Interval.const(expr.value))
    var = _as_varloc(expr)
    if var is not None:
        return Linear(1, var, Interval.const(0))
    if isinstance(expr, EUnOp) and expr.op == "-":
        inner = linearize(expr.operand)
        if inner is None:
            return None
        return Linear(-inner.sign, inner.var, inner.const.neg())
    if isinstance(expr, EBinOp) and expr.op in ("+", "-"):
        left = linearize(expr.left)
        right = linearize(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "-":
            right = Linear(-right.sign, right.var, right.const.neg())
        if left.var is not None and right.var is not None:
            return None  # two-variable expressions: interval fallback
        var = left.var if left.var is not None else right.var
        sign = left.sign if left.var is not None else right.sign
        return Linear(sign, var, left.const.add(right.const))
    return None


# --------------------------------------------------------------------------
# Interval evaluation via singleton-pack projection (the paper's p_x)
# --------------------------------------------------------------------------


def _project_var(
    var: AbsLoc, state: PackState, ctx: RelContext, log: RelAccessLog | None
) -> Interval:
    single = ctx.packs.singleton.get(var)
    if single is None:
        return ITV_TOP
    if log is not None:
        log.used.add(single)
    return state.get(single).project(0)


def eval_interval(
    expr: Expr, state: PackState, ctx: RelContext, log: RelAccessLog | None
) -> Interval:
    """Numeric evaluation of a pure expression over the pack state."""
    if isinstance(expr, ENum):
        return Interval.const(expr.value)
    var = _as_varloc(expr)
    if var is not None:
        return _project_var(var, state, ctx, log)
    if isinstance(expr, EUnknown):
        return ITV_TOP
    if isinstance(expr, EUnOp):
        inner = eval_interval(expr.operand, state, ctx, log)
        if expr.op == "-":
            return inner.neg()
        if expr.op == "!":
            return inner.lnot()
        if expr.op == "~":
            return inner.bnot()
        return inner
    if isinstance(expr, EBinOp):
        left = eval_interval(expr.left, state, ctx, log)
        right = eval_interval(expr.right, state, ctx, log)
        op = expr.op
        if op in ("<", ">", "<=", ">=", "==", "!="):
            return left.cmp(op, right)
        fn = {
            "+": left.add,
            "-": left.sub,
            "*": left.mul,
            "/": left.div,
            "%": left.mod,
            "<<": left.shl,
            ">>": left.shr,
            "&": left.bitand,
            "|": left.bitor,
            "^": left.bitxor,
        }.get(op)
        return fn(right) if fn else ITV_TOP
    return ITV_TOP  # reads through pointers/fields: unknown number


# --------------------------------------------------------------------------
# Transfer functions
# --------------------------------------------------------------------------


def rel_transfer(
    node: Node,
    state: PackState,
    ctx: RelContext,
    log: RelAccessLog | None = None,
) -> PackState | None:
    """Apply the packed relational ``f♯_c`` at ``node``."""
    cmd = node.cmd
    if isinstance(cmd, (CSkip, CEntry, CExit)):
        return state
    out = state.copy()

    if isinstance(cmd, CSet):
        if isinstance(cmd.lval, VarLv):
            _assign(out, VarLoc(cmd.lval.name, cmd.lval.proc), cmd.expr, ctx, log)
        else:
            _havoc_targets(out, node, cmd.lval, ctx, log)
        return out

    if isinstance(cmd, CAlloc):
        if isinstance(cmd.lval, VarLv):
            _havoc_var(out, VarLoc(cmd.lval.name, cmd.lval.proc), ctx, log)
        else:
            _havoc_targets(out, node, cmd.lval, ctx, log)
        return out

    if isinstance(cmd, CAssume):
        return _rel_assume(out, cmd, ctx, log)

    if isinstance(cmd, CCall):
        for callee in ctx.pre.site_callees.get(node.nid, ()):
            info = ctx.program.proc_infos.get(callee)
            if info is None:
                continue
            for i, param in enumerate(info.params):
                loc = VarLoc(param, callee)
                if ctx.packs.packs_of(loc):
                    if i < len(cmd.args):
                        _assign(out, loc, cmd.args[i], ctx, log)
                    else:
                        _havoc_var(out, loc, ctx, log)
        return out

    if isinstance(cmd, CRetBind):
        if cmd.lval is None or not isinstance(cmd.lval, VarLv):
            return out
        target = VarLoc(cmd.lval.name, cmd.lval.proc)
        if not ctx.packs.packs_of(target):
            return out
        call_node = ctx.program.node(cmd.call_node)
        callees = ctx.pre.site_callees.get(call_node.nid, ())
        if len(callees) == 1:
            ret = RetLoc(callees[0])
            _assign_linear(out, target, Linear(1, ret, Interval.const(0)), ctx, log)
        elif callees:
            itv = ITV_BOT
            for callee in callees:
                itv = itv.join(_project_var(RetLoc(callee), out, ctx, log))
            _assign_linear(out, target, Linear(0, None, itv), ctx, log)
        else:
            _havoc_var(out, target, ctx, log)  # external call: arbitrary
        return out

    if isinstance(cmd, CReturn):
        # Strong per-path update: multiple returns join along control flow.
        # (A weak join would merge with the ⊤ default and lose everything.)
        ret = RetLoc(node.proc)
        if ctx.packs.packs_of(ret):
            if cmd.value is not None:
                _assign(out, ret, cmd.value, ctx, log)
            else:
                _havoc_var(out, ret, ctx, log)
        return out

    return out


def _assign(
    state: PackState,
    target: AbsLoc,
    expr: Expr,
    ctx: RelContext,
    log: RelAccessLog | None,
    weak: bool = False,
) -> None:
    linear = linearize(expr)
    if linear is None:
        itv = eval_interval(expr, state, ctx, log)
        linear = Linear(0, None, itv)
    _assign_linear(state, target, linear, ctx, log, weak=weak)


def _assign_linear(
    state: PackState,
    target: AbsLoc,
    linear: Linear,
    ctx: RelContext,
    log: RelAccessLog | None,
    weak: bool = False,
) -> None:
    weak = weak or ctx.is_summary_var(target)
    for pack in ctx.packs.packs_of(target):
        if log is not None:
            log.defined.add(pack)
            log.used.add(pack)
        old = state.get(pack)
        k = pack.index(target)
        if linear.var is not None and linear.var in pack and linear.sign in (1, -1):
            new = old.assign_var_plus(
                k, pack.index(linear.var), linear.const, negate=linear.sign < 0
            )
        elif linear.var is not None:
            base = _project_var(linear.var, state, ctx, log)
            if linear.sign < 0:
                base = base.neg()
            new = old.assign_interval(k, base.add(linear.const))
        else:
            new = old.assign_interval(k, linear.const)
        if weak:
            new = new.join(old)
        state.set(pack, new)


def _havoc_var(
    state: PackState, target: AbsLoc, ctx: RelContext, log: RelAccessLog | None
) -> None:
    for pack in ctx.packs.packs_of(target):
        if log is not None:
            log.defined.add(pack)
            log.used.add(pack)
        state.set(pack, state.get(pack).forget(pack.index(target)))


def _havoc_targets(
    state: PackState, node: Node, lval, ctx: RelContext, log: RelAccessLog | None
) -> None:
    """Indirect store: forget every scalar variable the pointer may hit
    (targets resolved by the pre-analysis, matching the interval analyzer's
    handling of non-numeric values)."""
    for loc in ctx.pointer_targets(node, lval):
        if isinstance(loc, VarLoc) and ctx.packs.packs_of(loc):
            _havoc_var(state, loc, ctx, log)


def _rel_assume(
    state: PackState,
    cmd: CAssume,
    ctx: RelContext,
    log: RelAccessLog | None,
) -> PackState | None:
    cond = cmd.cond
    positive = cmd.positive
    while isinstance(cond, EUnOp) and cond.op == "!":
        cond = cond.operand
        positive = not positive

    if isinstance(cond, EBinOp) and cond.op in _NEGATED:
        op = cond.op if positive else _NEGATED[cond.op]
        _refine(state, cond.left, op, cond.right, ctx, log)
    else:
        op = "!=" if positive else "=="
        _refine(state, cond, op, ENum(0), ctx, log)

    if state.has_contradiction():
        if ctx.strict:
            return None
    return state


def _refine(
    state: PackState,
    left: Expr,
    op: str,
    right: Expr,
    ctx: RelContext,
    log: RelAccessLog | None,
) -> None:
    lv = linearize(left)
    rv = linearize(right)
    lvar = lv.var if lv else None
    rvar = rv.var if rv else None

    # Relational refinement: ±x ⋈ ±y + c within shared packs.
    if (
        lv is not None
        and rv is not None
        and lvar is not None
        and rvar is not None
        and lv.sign == 1
        and rv.sign == 1
        and op in ("<", "<=", ">", ">=", "==")
        and not ctx.is_summary_var(lvar)
        and not ctx.is_summary_var(rvar)
    ):
        c = rv.const.sub(lv.const)
        for pack in ctx.packs.packs_of(lvar):
            if rvar not in pack:
                continue
            if log is not None:
                log.defined.add(pack)
                log.used.add(pack)
            i, j = pack.index(lvar), pack.index(rvar)
            oct_ = state.get(pack)
            hi = c.hi
            lo = c.lo
            if op in ("<", "<="):
                bound = (hi - (1 if op == "<" else 0)) if hi is not None else None
                if bound is not None:
                    oct_ = oct_.test_diff_upper(i, j, float(bound))
            elif op in (">", ">="):
                bound = (lo + (1 if op == ">" else 0)) if lo is not None else None
                if bound is not None:
                    oct_ = oct_.test_diff_upper(j, i, float(-bound))
            elif op == "==" and hi is not None and lo is not None and hi == lo:
                oct_ = oct_.test_diff_upper(i, j, float(hi)).test_diff_upper(
                    j, i, float(-lo)
                )
            state.set(pack, oct_)

    # Interval refinement of each side against the other's value.
    right_itv = eval_interval(right, state, ctx, log)
    _refine_interval(state, lvar if lv and lv.sign == 1 else None, op, right_itv, ctx, log)
    left_itv = eval_interval(left, state, ctx, log)
    swapped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}[op]
    _refine_interval(state, rvar if rv and rv.sign == 1 else None, swapped, left_itv, ctx, log)


def _refine_interval(
    state: PackState,
    var: AbsLoc | None,
    op: str,
    other: Interval,
    ctx: RelContext,
    log: RelAccessLog | None,
) -> None:
    if var is None or other.is_bottom():
        return
    if ctx.is_summary_var(var):
        return  # refinements are strong writes; unsound on summaries
    for pack in ctx.packs.packs_of(var):
        if log is not None:
            log.defined.add(pack)
            log.used.add(pack)
        k = pack.index(var)
        oct_ = state.get(pack)
        if op in ("<", "<=") and other.hi is not None:
            bound = other.hi - (1 if op == "<" else 0)
            oct_ = oct_.test_upper(k, float(bound))
        elif op in (">", ">=") and other.lo is not None:
            bound = other.lo + (1 if op == ">" else 0)
            oct_ = oct_.test_lower(k, float(bound))
        elif op == "==" and other.is_const() and other.lo is not None:
            oct_ = oct_.test_eq(k, float(other.lo))
        elif op == "!=":
            continue  # octagons cannot express disequalities
        else:
            continue
        state.set(pack, oct_)


# --------------------------------------------------------------------------
# Pack-level def/use (Section 4.2) and the analysis drivers
# --------------------------------------------------------------------------


def compute_rel_defuse(
    program: Program, pre: PreAnalysis, ctx: RelContext
) -> DefUseInfo:
    """Pack-granular D̂/Û, via the same log-the-transfer derivation as the
    interval analysis (DefUseInfo is generic in its location type)."""
    info = DefUseInfo()
    top = PackState()
    for node in program.nodes():
        log = RelAccessLog()
        rel_transfer(node, top, ctx, log)
        info.defs[node.nid] = frozenset(log.defined)
        info.uses[node.nid] = frozenset(log.used)
        info.strong_defs[node.nid] = frozenset()

    by_defs: dict[str, set] = {p: set() for p in program.procedures()}
    by_uses: dict[str, set] = {p: set() for p in program.procedures()}
    for node in program.nodes():
        by_defs[node.proc].update(info.defs[node.nid])
        by_uses[node.proc].update(info.uses[node.nid])
    info.proc_defs = {p: frozenset(s) for p, s in by_defs.items()}
    info.proc_uses = {p: frozenset(s) for p, s in by_uses.items()}

    calls: dict[str, set[str]] = {p: set() for p in program.procedures()}
    for node in program.nodes():
        if isinstance(node.cmd, CCall):
            for callee in pre.site_callees.get(node.nid, ()):
                calls[node.proc].add(callee)
    trans_defs = {p: set(s) for p, s in by_defs.items()}
    trans_uses = {p: set(s) for p, s in by_uses.items()}
    trans_callees = {p: {p} | calls.get(p, set()) for p in program.procedures()}
    changed = True
    while changed:
        changed = False
        for caller, callees in calls.items():
            for callee in callees:
                before = (
                    len(trans_defs[caller])
                    + len(trans_uses[caller])
                    + len(trans_callees[caller])
                )
                trans_defs[caller].update(trans_defs.get(callee, ()))
                trans_uses[caller].update(trans_uses.get(callee, ()))
                trans_callees[caller].update(trans_callees.get(callee, ()))
                if (
                    len(trans_defs[caller])
                    + len(trans_uses[caller])
                    + len(trans_callees[caller])
                ) != before:
                    changed = True
    info.proc_defs_trans = {p: frozenset(s) for p, s in trans_defs.items()}
    info.proc_uses_trans = {p: frozenset(s) for p, s in trans_uses.items()}
    info.proc_callees_trans = {p: frozenset(s) for p, s in trans_callees.items()}
    info.proc_must_defs = {p: frozenset() for p in program.procedures()}
    return info


#: The relational engines return the unified result type (legacy alias);
#: ``bottom=PackState`` makes out-of-table queries answer ⊤ pack maps.
RelResult = FixpointResult


def prepare_rel_dense(
    program: Program,
    pre: PreAnalysis,
    *,
    packs: PackSet | None = None,
    localize: bool = False,
    strict: bool = True,
    widen: bool = True,
    widening_delay: int = 0,
) -> EnginePlan:
    """Build the plan for ``Octagon_vanilla`` / ``Octagon_base``."""
    if packs is None:
        packs = build_packs(program)
    ctx = RelContext(program, pre, packs, strict=strict)
    graph = build_interproc_graph(program, pre.site_callees, localized=localize)

    make_edge_transform = None
    defuse = None
    if localize:
        defuse = compute_rel_defuse(program, pre, ctx)
        passed = {
            callee: set(defuse.accessed_by(callee))
            for callee in program.procedures()
        }
        call_edges = graph.call_edges
        bypass = graph.bypass_edges
        exit_of = {
            proc: cfg.exit.nid
            for proc, cfg in program.cfgs.items()
            if cfg.exit is not None
        }
        # exit→retbind edges are folded into the bypass edge's overlay:
        # with a ⊤-default lattice, joining the two partial states (caller
        # remainder vs. callee slice) erases both halves — ⊤ ⊔ v = ⊤ — so
        # the return-site state must be assembled in one place instead.
        folded_returns = {
            (exit_of[c], rb)
            for (call, rb) in bypass
            for c in pre.site_callees.get(call, ())
            if c in exit_of
        }

        def make_edge_transform(get_table):
            def _overlay_return(call: int, state: PackState) -> PackState | None:
                """The localized return-site input: per pack, each callee
                contributes its exit value when it accesses the pack and the
                caller's pre-call value when it does not (the value survives
                around that callee); contributions join across callees.
                Callees whose exit is still unreachable contribute nothing —
                matching the vanilla engine's reachability timing."""
                table = get_table()
                contributions = []
                for c in pre.site_callees.get(call, ()):
                    es = table.get(exit_of[c]) if c in exit_of else None
                    if es is not None:
                        contributions.append((passed[c], es))
                if not contributions:
                    return None
                cand = {p for p, _ in state.items()}
                for acc_packs, es in contributions:
                    for p, _ in es.items():
                        if p in acc_packs:
                            cand.add(p)
                out: dict = {}
                for p in cand:
                    joined = None
                    for acc_packs, es in contributions:
                        v = es.get(p) if p in acc_packs else state.get(p)
                        joined = v if joined is None else joined.join(v)
                    if not joined.is_top():
                        out[p] = joined
                return PackState(out)

            def edge_transform(
                src: int, dst: int, state: PackState
            ) -> PackState | None:
                callee = call_edges.get((src, dst))
                if callee is not None:
                    return state.restrict(passed[callee])
                if (src, dst) in bypass:
                    return _overlay_return(src, state)
                if (src, dst) in folded_returns:
                    return None
                return state

            return edge_transform

    node_map = program.factory.nodes

    def node_transfer(nid: int, state: PackState) -> PackState | None:
        return rel_transfer(node_map[nid], state, ctx)

    entry = program.entry_node()
    if strict:
        entries = {entry.nid: PackState()}
    else:
        entries = {n.nid: PackState() for n in program.nodes()}
    wto, wps = widening_points_for(GraphView((entry.nid,), graph.succs), widen)
    return EnginePlan(
        program=program,
        pre=pre,
        domain="octagon",
        mode="base" if localize else "vanilla",
        strict=strict,
        widen=widen,
        graph=graph,
        entries=entries,
        transfer=node_transfer,
        state_factory=PackState,
        wto=wto,
        widening_points=wps,
        thresholds=None,
        widening_delay=widening_delay,
        entry_nid=entry.nid,
        node_ids=tuple(node_map.keys()),
        make_edge_transform=make_edge_transform,
        defuse=defuse,
        packs=packs,
        ctx=ctx,
    )


def run_rel_dense(
    program: Program,
    pre: PreAnalysis | None = None,
    packs: PackSet | None = None,
    localize: bool = False,
    strict: bool = True,
    widen: bool = True,
    max_iterations: int | None = None,
    narrowing_passes: int = 0,
    budget: Budget | None = None,
    on_budget: str = "fail",
    faults=None,
    watchdog: bool = True,
    scheduler: str = "wto",
    widening_delay: int = 0,
    telemetry=None,
    checkpoint=None,
    resume_from=None,
) -> RelResult:
    """Dense octagon analysis (``Octagon_vanilla`` / ``Octagon_base``)."""
    if on_budget not in ("fail", "degrade"):
        raise ValueError(f"on_budget must be 'fail' or 'degrade', not {on_budget!r}")
    tel = Telemetry.coerce(telemetry)
    start = time.perf_counter()
    if pre is None:
        pre = run_preanalysis(program, telemetry=tel)
    resolved_budget = Budget.coerce(budget, max_iterations=max_iterations)
    diagnostics = Diagnostics(budget=resolved_budget)
    degrade = (
        _make_rel_degrade(program, diagnostics, watchdog)
        if on_budget == "degrade"
        else None
    )
    plan = prepare_rel_dense(
        program,
        pre,
        packs=packs,
        localize=localize,
        strict=strict,
        widen=widen,
        widening_delay=widening_delay,
    )
    box: dict = {}
    space = plan.make_program_space(lambda: box["engine"].table)
    engine = FixpointEngine(
        space,
        plan.transfer,
        plan.widening_points,
        widening_delay=plan.widening_delay,
        narrowing_passes=narrowing_passes,
        budget=resolved_budget,
        faults=FaultInjector.coerce(faults),
        degrade=degrade,
        priority=plan.wto.priority,
        scheduler=scheduler,
        telemetry=tel,
        checkpointer=checkpoint,
    )
    box["engine"] = engine
    if resume_from is not None:
        engine.restore(resume_from)
    table = engine.solve()
    diagnostics.iterations = engine.stats.iterations
    if engine.scheduler_stats is not None:
        diagnostics.scheduler = engine.scheduler_stats.as_dict()
    return FixpointResult(
        table,
        engine.stats,
        pre=pre,
        defuse=plan.defuse,
        graph=plan.graph,
        packs=plan.packs,
        elapsed=time.perf_counter() - start,
        diagnostics=diagnostics,
        scheduler_stats=engine.scheduler_stats,
        bottom=PackState,
    )


class PackCells(CellOps):
    """Cell operations for ⊤-default pack caches (the
    :class:`~repro.analysis.engine.DepGraphSpace` plug for the octagon
    domain). A cache is a plain ``dict[Pack, Octagon | None]``: a missing
    pack has not been pushed yet (``_UNSET``), a pack mapped to None is
    pinned at ⊤ — some source was unconstrained, and ⊤ absorbs every
    further join."""

    state_factory = PackState

    def new_cache(self) -> dict:
        return {}

    def input_state(self, cache) -> PackState:
        if cache:
            return PackState({p: o for p, o in cache.items() if o is not None})
        return PackState()

    def install(self, out):
        # The input state is rebuilt fresh from the cache every visit, so
        # ``out`` never aliases a long-lived structure — no copy needed.
        return out

    def push(self, cache, touched, out) -> bool:
        grew = False
        for pack in touched:
            prev = cache.get(pack, _UNSET)
            if prev is None:
                continue  # already pinned at ⊤
            if pack not in out:
                # the producer is unconstrained here: the join is ⊤
                cache[pack] = None
                grew = True
                continue
            value = out.get(pack)
            if prev is _UNSET:
                cache[pack] = value
                grew = True
                continue
            joined = prev.join(value)
            if joined != prev:
                cache[pack] = None if joined.is_top() else joined
                grew = True
        return grew

    def assemble(self, in_edges, table) -> PackState:
        state = PackState()
        for pack, oct_ in self.assemble_cache(in_edges, table).items():
            if oct_ is not None:
                state.set(pack, oct_)
        return state

    def assemble_cache(self, in_edges, table) -> dict:
        # Rebuilding from final source states reproduces the sequentially
        # accumulated cache: states only grow during ascent, so the join
        # over the push history equals the join of the final values, and a
        # pack missing from a final state (⊤) was ⊤ on its last push too.
        acc: dict[Pack, Octagon | None] = {}  # None = already ⊤
        for src, packs in in_edges:
            src_state = table.get(src)
            if src_state is None:
                continue
            for pack in packs:
                if acc.get(pack, 0) is None:
                    continue  # ⊤ absorbs every further join
                if pack not in src_state:
                    acc[pack] = None  # source is unconstrained here
                    continue
                value = src_state.get(pack)
                prev = acc.get(pack)
                if isinstance(prev, Octagon):
                    joined = prev.join(value)
                    acc[pack] = None if joined.is_top() else joined
                else:
                    acc[pack] = value
        return acc

    def cache_to_wire(self, cache):
        from repro.runtime.checkpoint import octagon_to_wire, pack_to_wire

        # None (pinned ⊤) survives the round trip; _UNSET entries don't
        # exist — a missing key *is* the unset encoding.
        return [
            [pack_to_wire(pack), None if oct_ is None else octagon_to_wire(oct_)]
            for pack, oct_ in sorted(
                cache.items(), key=lambda kv: kv[0].sort_key()
            )
        ]

    def cache_from_wire(self, wire):
        from repro.runtime.checkpoint import octagon_from_wire, pack_from_wire

        return {
            pack_from_wire(pack_w): (
                None if oct_w is None else octagon_from_wire(oct_w)
            )
            for pack_w, oct_w in wire
        }


def prepare_rel_sparse(
    program: Program,
    pre: PreAnalysis,
    *,
    packs: PackSet | None = None,
    method: str = "ssa",
    bypass: bool = True,
    strict: bool = True,
    widen: bool = True,
    widening_delay: int = 0,
    telemetry=None,
) -> EnginePlan:
    """Build the plan for ``Octagon_sparse``: pack-granular D̂/Û and
    dependency generation over the shared control graph."""
    tel = Telemetry.coerce(telemetry)
    if packs is None:
        packs = build_packs(program)
    ctx = RelContext(program, pre, packs, strict=strict)

    t_dep = time.perf_counter()
    with tel.span("dep-gen", method=method, bypass=bypass, domain="octagon"):
        graph = build_interproc_graph(program, pre.site_callees, localized=False)
        wto, wps = widening_points_for(
            GraphView((program.entry_node().nid,), graph.succs), widen
        )
        defuse = compute_rel_defuse(program, pre, ctx)
        dep_result = generate_datadeps(
            program,
            pre,
            defuse,
            method=method,
            bypass=bypass,
            widening_points=wps,
            telemetry=tel,
        )
    time_dep = time.perf_counter() - t_dep

    node_map = program.factory.nodes

    def node_transfer(nid: int, state: PackState) -> PackState | None:
        return rel_transfer(node_map[nid], state, ctx)

    return EnginePlan(
        program=program,
        pre=pre,
        domain="octagon",
        mode="sparse",
        strict=strict,
        widen=widen,
        graph=graph,
        entries={},
        transfer=node_transfer,
        state_factory=PackState,
        wto=wto,
        widening_points=wps,
        thresholds=None,
        widening_delay=widening_delay,
        entry_nid=program.entry_node().nid,
        node_ids=tuple(node_map.keys()),
        deps=dep_result.deps,
        cells_factory=PackCells,
        dep_count=len(dep_result.deps),
        raw_dep_count=dep_result.raw_dep_count,
        defuse=defuse,
        packs=packs,
        ctx=ctx,
        time_dep=time_dep,
    )


def run_rel_sparse(
    program: Program,
    pre: PreAnalysis | None = None,
    packs: PackSet | None = None,
    method: str = "ssa",
    bypass: bool = True,
    strict: bool = True,
    widen: bool = True,
    max_iterations: int | None = None,
    narrowing_passes: int = 0,
    budget: Budget | None = None,
    on_budget: str = "fail",
    faults=None,
    watchdog: bool = True,
    scheduler: str = "wto",
    widening_delay: int = 0,
    telemetry=None,
    checkpoint=None,
    resume_from=None,
) -> RelResult:
    """Sparse octagon analysis (``Octagon_sparse``)."""
    if on_budget not in ("fail", "degrade"):
        raise ValueError(f"on_budget must be 'fail' or 'degrade', not {on_budget!r}")
    tel = Telemetry.coerce(telemetry)
    start = time.perf_counter()
    if pre is None:
        pre = run_preanalysis(program, telemetry=tel)
    resolved_budget = Budget.coerce(budget, max_iterations=max_iterations)
    diagnostics = Diagnostics(budget=resolved_budget)
    degrade = (
        _make_rel_degrade(program, diagnostics, watchdog)
        if on_budget == "degrade"
        else None
    )
    plan = prepare_rel_sparse(
        program,
        pre,
        packs=packs,
        method=method,
        bypass=bypass,
        strict=strict,
        widen=widen,
        widening_delay=widening_delay,
        telemetry=tel,
    )

    t_fix = time.perf_counter()
    space = plan.make_program_space()
    engine = FixpointEngine(
        space,
        plan.transfer,
        plan.widening_points,
        widening_delay=plan.widening_delay,
        narrowing_passes=narrowing_passes,
        budget=resolved_budget,
        stage="sparse relational fixpoint",
        faults=FaultInjector.coerce(faults),
        degrade=degrade,
        priority=plan.wto.priority,
        scheduler=scheduler,
        telemetry=tel,
        checkpointer=checkpoint,
    )
    if resume_from is not None:
        engine.restore(resume_from)
    table = engine.solve()
    time_fix = time.perf_counter() - t_fix

    stats = engine.stats
    stats.time_dep = plan.time_dep
    stats.time_fix = time_fix
    stats.dep_count = plan.dep_count
    stats.raw_dep_count = plan.raw_dep_count
    diagnostics.iterations = stats.iterations
    diagnostics.timings.update(dep=plan.time_dep, fix=time_fix)
    if engine.scheduler_stats is not None:
        diagnostics.scheduler = engine.scheduler_stats.as_dict()
    return FixpointResult(
        table,
        stats,
        pre=pre,
        defuse=plan.defuse,
        deps=plan.deps,
        graph=plan.graph,
        packs=plan.packs,
        elapsed=time.perf_counter() - start,
        diagnostics=diagnostics,
        scheduler_stats=engine.scheduler_stats,
        bottom=PackState,
    )
