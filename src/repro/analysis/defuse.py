"""Safe approximation of definition and use sets (Sections 2.5, 3.2).

``D̂(c)``/``Û(c)`` are derived *semantically*: each command's abstract
transfer function runs once over the pre-analysis state ``T̂_pre`` with an
:class:`AccessLog` attached, so every location it may read or write —
including implicit uses of weakly-updated targets — is recorded. This is
exactly the derivation of Section 3.2 and satisfies Definition 5
(Lemma 3): writes against a conservative input over-approximate writes
against any reachable input, and spurious definitions are weak updates,
which the log also marks as uses.

Procedure-level summaries (all locations defined/used by a procedure and
its transitive callees) feed both the interprocedural dependency generation
of Section 5 and the access-based localization of the baseline analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.preanalysis import PreAnalysis
from repro.analysis.semantics import AccessLog, AnalysisContext, transfer
from repro.domains.absloc import AbsLoc, RetLoc, VarLoc
from repro.ir.commands import CCall, CRetBind
from repro.ir.program import Program


@dataclass
class DefUseInfo:
    """Per-node and per-procedure def/use sets."""

    defs: dict[int, frozenset[AbsLoc]] = field(default_factory=dict)
    uses: dict[int, frozenset[AbsLoc]] = field(default_factory=dict)
    #: killing (strong) writes per node — seeds of the must-def analysis
    strong_defs: dict[int, frozenset[AbsLoc]] = field(default_factory=dict)
    #: locations strongly defined on *every* path through a procedure
    proc_must_defs: dict[str, frozenset[AbsLoc]] = field(default_factory=dict)
    #: locations defined by a procedure's own body
    proc_defs: dict[str, frozenset[AbsLoc]] = field(default_factory=dict)
    proc_uses: dict[str, frozenset[AbsLoc]] = field(default_factory=dict)
    #: closed under transitive callees
    proc_defs_trans: dict[str, frozenset[AbsLoc]] = field(default_factory=dict)
    proc_uses_trans: dict[str, frozenset[AbsLoc]] = field(default_factory=dict)
    #: transitive callees of each procedure (including itself)
    proc_callees_trans: dict[str, frozenset[str]] = field(default_factory=dict)

    def d(self, nid: int) -> frozenset[AbsLoc]:
        return self.defs.get(nid, frozenset())

    def u(self, nid: int) -> frozenset[AbsLoc]:
        return self.uses.get(nid, frozenset())

    def accessed_by(self, proc: str) -> frozenset[AbsLoc]:
        """All locations the procedure (with callees) may touch."""
        return self.proc_defs_trans.get(proc, frozenset()) | self.proc_uses_trans.get(
            proc, frozenset()
        )

    def average_sizes(self) -> tuple[float, float]:
        """Average |D̂(c)| and |Û(c)| — the Table 2/3 sparsity columns."""
        n = max(len(self.defs), 1)
        d = sum(len(s) for s in self.defs.values()) / n
        u = sum(len(s) for s in self.uses.values()) / n
        return d, u


def compute_defuse(program: Program, pre: PreAnalysis) -> DefUseInfo:
    """Compute node-level D̂/Û from the pre-analysis, then close
    procedure summaries over the call graph.

    The derivation runs the non-strict transfer functions: an assume that
    looks infeasible under the coarse pre-state must still be recorded as
    defining/using what it refines, or dependency chains would bypass the
    refinement point.
    """
    ctx = AnalysisContext(program, pre.site_callees, strict=False)
    info = DefUseInfo()

    for node in program.nodes():
        log = AccessLog()
        transfer(node, pre.state, ctx, log)
        info.defs[node.nid] = frozenset(log.defined)
        info.uses[node.nid] = frozenset(log.used)
        info.strong_defs[node.nid] = frozenset(log.strong_defined)

    by_proc_defs: dict[str, set[AbsLoc]] = {p: set() for p in program.procedures()}
    by_proc_uses: dict[str, set[AbsLoc]] = {p: set() for p in program.procedures()}
    for node in program.nodes():
        by_proc_defs[node.proc].update(info.defs[node.nid])
        by_proc_uses[node.proc].update(info.uses[node.nid])
    info.proc_defs = {p: frozenset(s) for p, s in by_proc_defs.items()}
    info.proc_uses = {p: frozenset(s) for p, s in by_proc_uses.items()}

    # Transitive closure over the (possibly cyclic) call graph by chaotic
    # iteration — cheap because summaries only grow.
    calls: dict[str, set[str]] = {p: set() for p in program.procedures()}
    for node in program.nodes():
        if isinstance(node.cmd, CCall):
            for callee in pre.site_callees.get(node.nid, ()):
                calls[node.proc].add(callee)
    trans_defs = {p: set(s) for p, s in by_proc_defs.items()}
    trans_uses = {p: set(s) for p, s in by_proc_uses.items()}
    trans_callees: dict[str, set[str]] = {
        p: {p} | calls.get(p, set()) for p in program.procedures()
    }
    changed = True
    while changed:
        changed = False
        for caller, callees in calls.items():
            for callee in callees:
                before = (
                    len(trans_defs[caller])
                    + len(trans_uses[caller])
                    + len(trans_callees[caller])
                )
                trans_defs[caller].update(trans_defs.get(callee, ()))
                trans_uses[caller].update(trans_uses.get(callee, ()))
                trans_callees[caller].update(trans_callees.get(callee, ()))
                after = (
                    len(trans_defs[caller])
                    + len(trans_uses[caller])
                    + len(trans_callees[caller])
                )
                if after != before:
                    changed = True
    info.proc_defs_trans = {p: frozenset(s) for p, s in trans_defs.items()}
    info.proc_uses_trans = {p: frozenset(s) for p, s in trans_uses.items()}
    info.proc_callees_trans = {p: frozenset(s) for p, s in trans_callees.items()}
    _compute_must_defs(program, pre, info)
    return info


def _compute_must_defs(
    program: Program, pre: PreAnalysis, info: DefUseInfo
) -> None:
    """Interprocedural must-def analysis.

    ``proc_must_defs[p]`` under-approximates the locations *strongly*
    defined on every entry→exit path of ``p`` (including through callees).
    A call kills exactly these, so a definition before a call that always
    overwrites ``l`` does not spuriously flow past the return site.

    Greatest fixpoint: procedure summaries start at their may-def sets and
    shrink; within a procedure a standard all-paths forward intersection
    runs over the CFG.
    """
    must: dict[str, frozenset[AbsLoc]] = {
        p: info.proc_defs_trans.get(p, frozenset()) for p in program.procedures()
    }
    changed = True
    while changed:
        changed = False
        for proc, cfg in program.cfgs.items():
            new = _proc_must(program, pre, info, must, proc)
            if new != must[proc]:
                must[proc] = new
                changed = True
    info.proc_must_defs = must


def _proc_must(
    program: Program,
    pre: PreAnalysis,
    info: DefUseInfo,
    must: dict[str, frozenset[AbsLoc]],
    proc: str,
) -> frozenset[AbsLoc]:
    cfg = program.cfgs[proc]
    if cfg.entry is None or cfg.exit is None:
        return frozenset()
    universe = info.proc_defs_trans.get(proc, frozenset())
    out: dict[int, frozenset[AbsLoc]] = {
        n.nid: universe for n in cfg.nodes
    }
    out[cfg.entry.nid] = info.strong_defs.get(cfg.entry.nid, frozenset())
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            nid = node.nid
            if nid == cfg.entry.nid:
                continue
            preds = cfg.preds.get(nid, [])
            if preds:
                acc: frozenset[AbsLoc] | None = None
                for p in preds:
                    acc = out[p] if acc is None else acc & out[p]
                in_set = acc if acc is not None else frozenset()
            else:
                in_set = frozenset()
            gen = set(info.strong_defs.get(nid, frozenset()))
            if isinstance(node.cmd, CRetBind):
                call_node = program.node(node.cmd.call_node)
                callees = pre.site_callees.get(call_node.nid, ())
                if callees:
                    callee_must: frozenset[AbsLoc] | None = None
                    for k in callees:
                        m = must.get(k, frozenset())
                        callee_must = m if callee_must is None else callee_must & m
                    gen |= callee_must or frozenset()
            new = frozenset(in_set | gen)
            if new != out[nid]:
                out[nid] = new
                changed = True
    return out[cfg.exit.nid]


def localization_set(
    program: Program, info: DefUseInfo, callee: str
) -> frozenset[AbsLoc]:
    """The locations the access-based localization [38] passes into
    ``callee``: everything the callee may (transitively) access, plus the
    formals and return cells of every procedure along the call chain."""
    acc: set[AbsLoc] = set(info.accessed_by(callee))
    for proc in info.proc_callees_trans.get(callee, frozenset({callee})):
        pinfo = program.proc_infos.get(proc)
        if pinfo is not None:
            acc.update(VarLoc(p, proc) for p in pinfo.params)
        acc.add(RetLoc(proc))
    return frozenset(acc)
