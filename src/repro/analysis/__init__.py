"""Analyses: the generic fixpoint engine and its configurations —
pre-analysis, dense (vanilla/base), sparse, and relational."""

from repro.analysis.defuse import DefUseInfo, compute_defuse
from repro.analysis.dense import DenseResult, run_dense
from repro.analysis.engine import (
    CfgSpace,
    DepGraphSpace,
    FixpointEngine,
    FixpointResult,
    FixpointStats,
    OnePointSpace,
    PropagationSpace,
    StateLattice,
)
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.schedule import GraphView, widening_points_for
from repro.analysis.sparse import SparseResult, run_sparse

__all__ = [
    "DefUseInfo",
    "compute_defuse",
    "DenseResult",
    "run_dense",
    "CfgSpace",
    "DepGraphSpace",
    "FixpointEngine",
    "FixpointResult",
    "FixpointStats",
    "OnePointSpace",
    "PropagationSpace",
    "StateLattice",
    "GraphView",
    "widening_points_for",
    "PreAnalysis",
    "run_preanalysis",
    "SparseResult",
    "run_sparse",
]
