"""Analyses: pre-analysis, dense (vanilla/base), and sparse engines."""

from repro.analysis.defuse import DefUseInfo, compute_defuse
from repro.analysis.dense import DenseResult, run_dense
from repro.analysis.preanalysis import PreAnalysis, run_preanalysis
from repro.analysis.sparse import SparseResult, run_sparse

__all__ = [
    "DefUseInfo",
    "compute_defuse",
    "DenseResult",
    "run_dense",
    "PreAnalysis",
    "run_preanalysis",
    "SparseResult",
    "run_sparse",
]
