"""The generic fixpoint engine core.

The paper's central observation (Section 3) is that the sparse analysis is
the *same* abstract interpreter as the dense one, run over a different
propagation structure: equation (3) propagates whole states along
control-flow edges, Definition 3 propagates individual abstract locations
along data dependencies. This module makes that structure a first-class
parameter. One :class:`FixpointEngine` owns the worklist loop — WTO
scheduling, widening delay, budget metering, per-procedure degradation,
narrowing passes, and stats collection exactly once — and is instantiated
with:

* a **state lattice** (:class:`StateLattice`): ``AbsState`` (bottom-default
  interval/pointer maps) or ``PackState`` (⊤-default pack→octagon maps),
  via the changed-set join/widen protocol;
* a **propagation space** (:class:`PropagationSpace`): :class:`CfgSpace`
  pulls inputs by joining predecessor states over control edges (with an
  optional access-based-localization edge transform), while
  :class:`DepGraphSpace` pushes changed locations along data dependencies
  into per-consumer input caches, with control reachability riding along
  as one bit per node. :class:`OnePointSpace` is the degenerate space with
  a single self-looping control point — running the engine over it *is*
  the flow-insensitive pre-analysis;
* a **transfer adapter**: a plain ``(nid, state) -> state | None`` callable
  closing over the program's node map and analysis context.

``dense.py``, ``sparse.py``, ``relational.py``, and ``preanalysis.py`` are
thin configurations of this core; their former result types are all the one
:class:`FixpointResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Protocol, Sequence

from repro.analysis.schedule import SchedulerStats, make_worklist
from repro.domains.interval import Interval
from repro.domains.state import AbsState
from repro.domains.value import cache_stats
from repro.runtime.budget import Budget, BudgetMeter
from repro.runtime.errors import (
    AnalysisError,
    AnalysisInterrupted,
    BudgetExceeded,
    ReproError,
)
from repro.telemetry.core import Telemetry

if TYPE_CHECKING:
    from repro.analysis.datadep import DataDeps
    from repro.analysis.dense import InterprocGraph
    from repro.analysis.preanalysis import PreAnalysis


class StateLattice(Protocol):
    """What the engine needs from an abstract state.

    ``AbsState`` (bottom-default: a missing location is ⊥) and ``PackState``
    (⊤-default: a missing pack is ⊤) both implement it. Truthiness must NOT
    encode emptiness — an empty ⊤-default map is a real state — so the
    engine never branches on ``bool(state)``; ``len`` feeds the budget
    meter's state-size probe only. Bottom is a zero-argument constructor on
    the implementing class, used by the propagation spaces for seeds and by
    :meth:`FixpointResult.state_at`.
    """

    def copy(self) -> "StateLattice": ...

    def leq(self, other: "StateLattice") -> bool: ...

    def join_changed(self, other: "StateLattice") -> set:
        """In-place join, returning exactly the keys whose value changed."""
        ...

    def widen_changed(
        self, other: "StateLattice", thresholds: tuple[int, ...] | None = None
    ) -> set:
        """In-place widen (thresholds are an interval-domain refinement;
        other domains ignore them), returning the changed keys."""
        ...

    def __len__(self) -> int: ...


#: transfer adapter: ``f♯_c`` as a plain callable (None = no state produced)
Transfer = Callable[[int, "StateLattice"], "StateLattice | None"]
EdgeTransform = Callable[[int, int, "StateLattice"], "StateLattice | None"]


@dataclass
class FixpointStats:
    """Counters describing one fixpoint run — a single surface for every
    engine×domain combination (dense runs simply leave the dependency and
    reachability fields at their defaults)."""

    iterations: int = 0
    max_worklist: int = 0
    visited: set[int] = field(default_factory=set)
    #: sparse engines: dependency edges after/before bypass compression
    dep_count: int = 0
    raw_dep_count: int = 0
    #: sparse engines: control points the reachability bit turned on
    reachable_nodes: int = 0
    #: wall-clock split matching the paper's Pre / Dep / Fix columns
    time_pre: float = 0.0
    time_dep: float = 0.0
    time_fix: float = 0.0

    @property
    def time_total(self) -> float:
        return self.time_pre + self.time_dep + self.time_fix


@dataclass
class FixpointResult:
    """A fixpoint table plus its supporting artifacts — the one results API
    shared by all engines (formerly ``DenseResult``/``SparseResult``/
    ``RelResult``). Fields not produced by a given engine stay None."""

    table: dict[int, "StateLattice"]
    stats: FixpointStats = field(default_factory=FixpointStats)
    pre: "PreAnalysis | None" = None
    #: dense localization / sparse dependency artifacts (engine-dependent)
    defuse: object = None
    deps: "DataDeps | None" = None
    graph: "InterprocGraph | None" = None
    #: relational runs: the variable packing in effect
    packs: object = None
    elapsed: float = 0.0
    diagnostics: object = None
    scheduler_stats: SchedulerStats | None = None
    #: zero-argument bottom-state constructor for out-of-table queries
    bottom: Callable[[], "StateLattice"] = AbsState
    #: sharded runs: per-procedure entry/exit summaries of the final table
    #: (see :mod:`repro.analysis.summaries`)
    summaries: object = None

    # -- legacy accessors (pre-unification field names) ------------------------

    @property
    def iterations(self) -> int:
        return self.stats.iterations

    @property
    def time_dep(self) -> float:
        return self.stats.time_dep

    @property
    def time_fix(self) -> float:
        return self.stats.time_fix

    # -- queries ---------------------------------------------------------------

    def state_at(self, nid: int):
        return self.table.get(nid, self.bottom())

    def value_at(self, nid: int, loc):
        return self.state_at(nid).get(loc)

    def interval_of(self, nid: int, var, ctx) -> Interval:
        """Relational query: the best interval for ``var`` at ``nid`` — the
        meet of the projections of every pack containing it (relational
        packs may hold tighter bounds than the singleton)."""
        state = self.state_at(nid)
        out = Interval.top()
        for pack in ctx.packs.packs_of(var):
            out = out.meet(state.get(pack).project(pack.index(var)))
        return out


# --------------------------------------------------------------------------
# Propagation spaces
# --------------------------------------------------------------------------


class PropagationSpace:
    """How abstract facts travel between control points.

    The engine owns the loop; the space owns the structure: where iteration
    starts (:meth:`seeds`), how a node's input is built (:meth:`input_for`
    in the main loop, :meth:`assemble_input` for narrowing's from-scratch
    recomputation), and what an observed change reaches (:meth:`propagate`).
    ``schedule_roots``/``schedule_succs`` expose the graph the WTO is
    computed over (see :func:`repro.analysis.schedule.widening_points_for`).
    """

    engine: "FixpointEngine"

    def bind(self, engine: "FixpointEngine") -> None:
        self.engine = engine

    def seeds(self) -> Sequence[int]:
        raise NotImplementedError

    def runnable(self, nid: int) -> bool:
        """Gate a popped node (sparse reachability); True by default."""
        return True

    def schedule_roots(self) -> Sequence[int]:
        raise NotImplementedError

    def schedule_succs(self) -> Mapping[int, Sequence[int]]:
        raise NotImplementedError

    def input_for(self, nid: int):
        """The node's input state, or None when it cannot run yet."""
        raise NotImplementedError

    def assemble_input(self, nid: int):
        """From-scratch input assembly for narrowing passes (the main loop
        may use incremental caches instead)."""
        return self.input_for(nid)

    def install(self, out):
        """Prepare a transfer output for first installation into the table
        (spaces whose inputs may alias live caches defensively copy here)."""
        return out

    def after_transfer(self, nid: int, work) -> None:
        """Hook run after a successful transfer, before the table update
        (sparse control-reachability propagation)."""

    def propagate(self, nid: int, out, changed, work) -> None:
        """React to ``nid``'s table state having changed. ``changed`` is the
        set of changed keys, or None on first installation (= everything)."""
        raise NotImplementedError

    def absorb_degraded(self, newly: set[int], work) -> None:
        """Splice freshly degraded nodes' fallback states back into the
        propagation (their table entries were already written)."""

    def record_stats(self, stats: FixpointStats) -> None:
        """Fill space-specific counters at the end of the ascending phase."""

    def snapshot_extra(self) -> dict:
        """Space-private state a checkpoint must carry (push caches,
        reachability bits, round counters). The CFG space has none — its
        inputs are rebuilt from the table on every visit."""
        return {}

    def restore_extra(self, extra: dict) -> None:
        """Reinstall :meth:`snapshot_extra`'s payload on resume."""


class CfgSpace(PropagationSpace):
    """Equation (3): whole states flow along control edges, and a node's
    input is the join of its predecessors' states — optionally filtered by
    an edge transform (access-based localization restricts states entering
    a callee and strips the passed portion from bypass edges)."""

    def __init__(
        self,
        succs: Mapping[int, Sequence[int]],
        preds: Mapping[int, Sequence[int]],
        entries: Mapping[int, "StateLattice"],
        edge_transform: EdgeTransform | None = None,
        roots: Sequence[int] | None = None,
    ) -> None:
        self._succs = succs
        self._preds = preds
        self._entries = dict(entries)
        self._edge_transform = edge_transform
        self._roots = list(roots) if roots is not None else list(self._entries)

    def seeds(self) -> Sequence[int]:
        return list(self._entries)

    def schedule_roots(self) -> Sequence[int]:
        return self._roots

    def schedule_succs(self) -> Mapping[int, Sequence[int]]:
        return self._succs

    def input_for(self, nid: int):
        table = self.engine.table
        acc = None
        for p in self._preds.get(nid, ()):
            ps = table.get(p)
            if ps is None:
                continue
            if self._edge_transform is not None:
                ps = self._edge_transform(p, nid, ps)
                if ps is None:
                    continue
            if acc is None:
                acc = ps.copy()
            else:
                acc.join_changed(ps)
        # The seed only matters while no predecessor has produced a state:
        # it makes the node runnable (entry nodes, non-strict seeding). It
        # must NOT be joined once real states flow — for ⊤-defaulted state
        # types (pack maps) joining the empty seed would erase everything.
        if acc is None:
            initial = self._entries.get(nid)
            if initial is not None:
                acc = initial.copy()
        return acc

    def propagate(self, nid: int, out, changed, work) -> None:
        for s in self._succs.get(nid, ()):
            work.add(s)

    def absorb_degraded(self, newly: set[int], work) -> None:
        # Re-enqueue live successors of freshly degraded nodes so they
        # consume the fallback states (e.g. a return site reading a
        # degraded callee's exit).
        degrade = self.engine._degrade
        for dn in newly:
            for s in self._succs.get(dn, ()):
                if not degrade.is_degraded_node(s):
                    work.add(s)


class CellOps:
    """Domain plug for :class:`DepGraphSpace`: how individual cells (abstract
    locations or packs) are cached, pushed, and assembled. The asymmetry
    between the two implementations is exactly the lattice-default
    asymmetry: interval caches absorb upward from ⊥ and skip bottom values,
    pack caches pin cells at ⊤ (None) once any source is unconstrained."""

    #: zero-argument bottom-state constructor of the underlying lattice
    state_factory: Callable[[], "StateLattice"]

    def new_cache(self):
        raise NotImplementedError

    def input_state(self, cache):
        """Materialize a node's input state from its (possibly absent)
        push cache."""
        raise NotImplementedError

    def install(self, out):
        """Table-installation policy for first visits (see the aliasing
        notes on the implementations)."""
        return out

    def push(self, cache, touched, out) -> bool:
        """Join ``out``'s values for the ``touched`` cells into ``cache``;
        True if the cache grew (the consumer must re-run)."""
        raise NotImplementedError

    def assemble(self, in_edges: Iterable[tuple[int, frozenset]], table):
        """From-scratch input assembly over incoming dependency edges
        (narrowing's replacement for the push caches)."""
        raise NotImplementedError

    def assemble_cache(self, in_edges: Iterable[tuple[int, frozenset]], table):
        """Rebuild a push cache from final source states — what the
        sequentially accumulated cache converges to, since table states only
        grow during ascent and a join over a monotone history equals the
        join of its last element. The shard driver uses this to reconstitute
        a consumer's input cache from a merged global table instead of
        shipping caches between workers. Default: the assembled input state
        doubles as the cache (true for :class:`IntervalCells`, whose cache
        *is* an ``AbsState``)."""
        return self.assemble(in_edges, table)

    def cache_to_wire(self, cache):
        """Checkpoint codec for one push cache (see
        :mod:`repro.runtime.checkpoint`)."""
        raise NotImplementedError

    def cache_from_wire(self, wire):
        raise NotImplementedError


class IntervalCells(CellOps):
    """Cell operations for bottom-default ``AbsState`` caches."""

    state_factory = AbsState

    def new_cache(self) -> AbsState:
        return AbsState()

    def input_state(self, cache):
        return cache if cache is not None else AbsState()

    def install(self, out):
        # The transfer may return its input unchanged (skip nodes), which
        # aliases the long-lived push cache — the copy is NOT redundant,
        # unlike the CFG space's (whose inputs are built fresh every visit).
        return out.copy()

    def push(self, cache, touched, out) -> bool:
        # the array backend joins plain bound rows without materializing
        # AbsValues; the scalar backend runs the historical per-loc loop
        return cache.join_entries_from(out, touched)

    def assemble(self, in_edges, table) -> AbsState:
        state = AbsState()
        for src, locs in in_edges:
            src_state = table.get(src)
            if src_state is None:
                continue
            for loc in locs:
                value = src_state.get(loc)
                if not value.is_bottom():
                    state.weak_set(loc, value)
        return state

    def cache_to_wire(self, cache):
        from repro.runtime.checkpoint import state_to_wire

        return state_to_wire(cache)

    def cache_from_wire(self, wire):
        from repro.runtime.checkpoint import state_from_wire

        return state_from_wire(wire)


class DepGraphSpace(PropagationSpace):
    """Definition 3: individual cells flow along data dependencies.
    Producers push changed values into consumers' input caches — O(#changed)
    per edge instead of re-joining the whole fan-in at every consumer visit
    — while control reachability rides the interprocedural control graph at
    one bit per node, keeping strict mode as precise as the strict dense
    engine on dead branches. The WTO (and hence the widening points) is
    still computed over the *control* graph, so sparse and dense engines
    widen on identical per-location streams (dependency generation cuts
    chains at those points — see ``repro.analysis.datadep``)."""

    def __init__(
        self,
        deps: "DataDeps",
        graph: "InterprocGraph",
        cells: CellOps,
        node_ids: Iterable[int],
        entry: int,
        strict: bool = True,
    ) -> None:
        self._deps = deps
        self._graph = graph
        self._cells = cells
        self._node_ids = list(node_ids)
        self._entry = entry
        self._strict = strict
        #: push-based input accumulator per consumer node
        self.in_cache: dict[int, object] = {}
        self.reached: set[int] = set()

    @property
    def cells(self) -> CellOps:
        """The cell strategy (exposed for warm-starting restricted runs)."""
        return self._cells

    @property
    def deps(self) -> "DataDeps":
        """The dependency graph the pushes follow."""
        return self._deps

    def seeds(self) -> Sequence[int]:
        if self._strict:
            self.reached.add(self._entry)
            return [self._entry]
        # Non-strict (paper) mode: every control point runs.
        self.reached.update(self._node_ids)
        return sorted(self._node_ids)

    def runnable(self, nid: int) -> bool:
        return nid in self.reached

    def schedule_roots(self) -> Sequence[int]:
        return [self._entry]

    def schedule_succs(self) -> Mapping[int, Sequence[int]]:
        return self._graph.succs

    def input_for(self, nid: int):
        return self._cells.input_state(self.in_cache.get(nid))

    def assemble_input(self, nid: int):
        return self._cells.assemble(self._deps.in_edges(nid), self.engine.table)

    def install(self, out):
        return self._cells.install(out)

    def after_transfer(self, nid: int, work) -> None:
        # Reachability propagates along control flow (cheap bit). A node
        # reached late may already have pending cached input from dep
        # pushes; it is enqueued here and will consume it.
        for succ in self._graph.succs.get(nid, ()):
            if succ not in self.reached:
                self.reached.add(succ)
                work.add(succ)

    def propagate(self, nid: int, out, changed, work) -> None:
        faults = self.engine._faults
        cells = self._cells
        for dst, locs in self._deps.out_edges(nid):
            if faults is not None and not faults.keep_dep_push(nid, dst):
                continue
            touched = locs if changed is None else (locs & changed)
            if not touched:
                continue
            cache = self.in_cache.get(dst)
            if cache is None:
                cache = cells.new_cache()
                self.in_cache[dst] = cache
            if cells.push(cache, touched, out) and dst in self.reached:
                work.add(dst)

    def absorb_degraded(self, newly: set[int], work) -> None:
        # Push the (pre-analysis / ⊤) fallback values along outgoing data
        # dependencies and re-establish control reachability across the
        # degraded region — the degraded procedure conservatively 'executes
        # everything', so its control successors must run.
        degrade = self.engine._degrade
        succs_to_run: set[int] = set()
        for dn in newly:
            self.reached.add(dn)
            for s in self._graph.succs.get(dn, ()):
                self.reached.add(s)
                if not degrade.is_degraded_node(s):
                    succs_to_run.add(s)
        for dn in newly:
            state = self.engine.table.get(dn)
            if state is not None:
                self.propagate(dn, state, None, work)
        for s in succs_to_run:
            work.add(s)

    def record_stats(self, stats: FixpointStats) -> None:
        stats.reachable_nodes = len(self.reached)

    def snapshot_extra(self) -> dict:
        cells = self._cells
        return {
            "reached": sorted(self.reached),
            "in_cache": [
                [nid, cells.cache_to_wire(cache)]
                for nid, cache in sorted(self.in_cache.items())
            ],
        }

    def restore_extra(self, extra: dict) -> None:
        cells = self._cells
        self.reached = set(extra["reached"])
        self.in_cache = {
            int(nid): cells.cache_from_wire(wire)
            for nid, wire in extra["in_cache"]
        }


class OnePointSpace(PropagationSpace):
    """The degenerate propagation space: a single control point whose only
    successor is itself. An engine run over it iterates its transfer —
    typically a whole-program fold ``λŝ. ⊔_c f♯_c(ŝ)`` — until the global
    state stops changing: the flow-insensitive pre-analysis is literally the
    same abstract interpreter over the one-point space. ``max_rounds``
    bounds the visits (the caller keeps the possibly-unconverged state, as
    the paper's pre-analysis does)."""

    NODE = 0

    def __init__(
        self,
        state_factory: Callable[[], "StateLattice"],
        max_rounds: int | None = None,
    ) -> None:
        self._state_factory = state_factory
        self._max_rounds = max_rounds
        #: visits so far == global rounds executed
        self.rounds = 0

    def seeds(self) -> Sequence[int]:
        return [self.NODE]

    def schedule_roots(self) -> Sequence[int]:
        return [self.NODE]

    def schedule_succs(self) -> Mapping[int, Sequence[int]]:
        return {self.NODE: (self.NODE,)}

    def input_for(self, nid: int):
        self.rounds += 1
        state = self.engine.table.get(self.NODE)
        return state.copy() if state is not None else self._state_factory()

    def propagate(self, nid: int, out, changed, work) -> None:
        if self._max_rounds is None or self.rounds < self._max_rounds:
            work.add(self.NODE)

    def snapshot_extra(self) -> dict:
        return {"rounds": self.rounds}

    def restore_extra(self, extra: dict) -> None:
        self.rounds = int(extra["rounds"])


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


class FixpointEngine:
    """Chaotic iteration with widening at the supplied points, generic over
    the propagation space and state lattice.

    ``table[c]`` holds the state *at* ``c`` — the result of applying
    ``f♯_c`` to the space-assembled input (matching the paper's formulation
    where the transfer happens on entry to ``c``).

    Scheduling: with a WTO ``priority`` map the engine iterates nodes in
    weak topological order (inner loops stabilize before outer code
    resumes); with ``scheduler="fifo"`` it falls back to the classic FIFO
    deque. Either way a :class:`~repro.analysis.schedule.SchedulerStats`
    record is left on ``scheduler_stats``.

    Resilience (see :mod:`repro.runtime`): every iteration — including
    narrowing passes — is metered against a unified
    :class:`repro.runtime.Budget`; an optional
    :class:`~repro.runtime.faults.FaultInjector` hook runs before each
    transfer; and with a :class:`~repro.runtime.degrade.DegradeController`
    attached, budget exhaustion and transfer crashes become per-procedure
    degradation to the pre-analysis state instead of aborting the run.
    """

    def __init__(
        self,
        space: PropagationSpace,
        transfer: Transfer,
        widening_points: set[int],
        *,
        widening_thresholds: tuple[int, ...] | None = None,
        widening_delay: int = 0,
        narrowing_passes: int = 0,
        budget: Budget | None = None,
        max_iterations: int | None = None,
        meter: BudgetMeter | None = None,
        stage: str = "fixpoint",
        faults=None,
        degrade=None,
        priority: Mapping[int, int] | None = None,
        scheduler: str = "wto",
        telemetry=None,
        checkpointer=None,
        ceiling=None,
    ) -> None:
        self.space = space
        self._transfer = transfer
        self._widening_points = widening_points
        self._thresholds = widening_thresholds
        #: join (don't widen) the first N growth observations per head —
        #: transient ascents shorter than the delay converge exactly, which
        #: also makes the result independent of the visit order for them
        self._widening_delay = widening_delay
        self._growth: dict[int, int] = {}
        self._narrowing_passes = narrowing_passes
        if meter is None:
            meter = BudgetMeter(
                Budget.coerce(budget, max_iterations=max_iterations),
                stage=stage,
            )
        self._meter = meter
        self._faults = faults
        self._degrade = degrade
        #: WTO positions driving the priority worklist (None = plain FIFO)
        self._priority = priority
        self._scheduler = scheduler if priority is not None else "fifo"
        #: telemetry registry the run's stats are merged into on completion
        #: (the no-op singleton by default — zero per-iteration cost either
        #: way, the engine only reports at phase boundaries)
        self._telemetry = Telemetry.coerce(telemetry)
        self.table: dict[int, "StateLattice"] = {}
        self.stats = FixpointStats()
        self.scheduler_stats: SchedulerStats | None = None
        self._work = None
        #: running total of state entries across the table — the budget
        #: meter's state-size probe reads this instead of re-summing
        self._entries = 0
        #: optional repro.runtime.checkpoint.Checkpointer writing periodic
        #: and final-abort snapshots of this engine
        self._checkpointer = checkpointer
        #: priority ceiling: a callable giving the lowest WTO priority that
        #: is pending *outside* this engine's space (the shard driver's
        #: partitioned scheduling). The ascending loop stops — leaving the
        #: rest of the worklist in :attr:`stopped_pending` — as soon as the
        #: next pop would reach that priority, because the sequential
        #: priority queue would drain the foreign work first.
        self._ceiling = ceiling
        #: worklist left pending by a ceiling stop, in pop order
        self.stopped_pending: list[int] = []
        #: highest priority actually popped past the ceiling check — the
        #: shard driver validates speculative outcomes against it
        self.max_pop: int = -1
        #: worklist contents to seed from instead of space.seeds() (resume)
        self._resume_pending: list[int] | None = None
        #: node popped but not yet fully processed — an abort snapshot must
        #: re-include it so the resumed run redoes its visit
        self._inflight: int | None = None
        self._phase = "idle"
        #: iteration count the run was resumed at (None = fresh run)
        self.resumed_from_iteration: int | None = None
        space.bind(self)

    # -- resilience hooks ------------------------------------------------------

    def _table_entries(self) -> int:
        return self._entries

    def _tick(self) -> None:
        if self._faults is not None:
            self._faults.on_iteration(self.stats.iterations)
        self._meter.tick(self._table_entries)

    def _apply_transfer(self, nid: int, in_state):
        """Run faults hook + transfer; a crash degrades the node's procedure
        when a degrade controller is attached, otherwise surfaces as a
        structured :class:`AnalysisError`."""
        try:
            if self._faults is not None:
                self._faults.before_transfer(nid)
            return self._transfer(nid, in_state)
        except (BudgetExceeded, AnalysisInterrupted):
            # neither is a transfer *failure*: budget exhaustion keeps its
            # own semantics, and an external interrupt must unwind to the
            # abort-checkpoint path, never degrade a procedure
            raise
        except Exception as exc:
            if self._degrade is None:
                if isinstance(exc, ReproError):
                    raise
                raise AnalysisError(
                    f"transfer function crashed at node {nid}: {exc}", node=nid
                ) from exc
            newly = self._degrade.degrade_node(nid, self.table, cause=str(exc))
            self._absorb_degraded(newly)
            return None

    def _absorb_degraded(self, newly: set[int]) -> None:
        if not newly:
            return
        # Degradation wrote whole-procedure fallback states behind the
        # incremental counter's back — resync it (rare event).
        self._entries = sum(len(s) for s in self.table.values())
        if self._work is None:
            return
        self.space.absorb_degraded(newly, self._work)

    # -- the loop --------------------------------------------------------------

    def solve(self) -> dict[int, "StateLattice"]:
        """Run to fixpoint from the space's seeds, then (optionally) narrow.

        The ascending phase is traced as a ``fixpoint`` span and narrowing
        as a sibling ``narrowing`` span (phase walls stay additive); both
        close even when the run aborts mid-phase (budget exhaustion in
        fail mode), so traces of failed runs remain balanced.

        With a checkpointer attached, an abort during the *ascending* phase
        — budget exhaustion in fail mode, an injected crash, SIGINT/SIGTERM
        raised as :class:`AnalysisInterrupted` — flushes one final
        checkpoint before re-raising. Narrowing aborts deliberately do not:
        the last ascending checkpoint on disk is still a valid resume point
        (resuming replays the ascending tail and then narrows in full).
        """
        try:
            with self._telemetry.span("fixpoint", stage=self._meter.stage) as sp:
                self._phase = "ascending"
                table = self._solve_ascending()
                self._phase = "idle"
                sp.set(iterations=self.stats.iterations)
        except BaseException:
            if self._checkpointer is not None and self._phase == "ascending":
                try:
                    self._checkpointer.write(self, reason="abort")
                except Exception:
                    pass  # never mask the original failure
            raise
        if self._narrowing_passes:
            before = self.stats.iterations
            with self._telemetry.span(
                "narrowing", passes=self._narrowing_passes
            ) as sp:
                self.narrow(self._narrowing_passes)
                sp.set(iterations=self.stats.iterations - before)
            self._telemetry.count(
                "narrowing.iterations", self.stats.iterations - before
            )
        return table

    def _solve_ascending(self) -> dict[int, "StateLattice"]:
        space = self.space
        wps = self._widening_points
        cache_before = cache_stats()
        if self._resume_pending is not None:
            # Resume: the checkpointed worklist replaces space.seeds() —
            # re-seeding would redo already-absorbed seed side effects.
            initial = self._resume_pending
            self._resume_pending = None
        else:
            initial = space.seeds()
        work = make_worklist(self._scheduler, self._priority, initial)
        self._work = work
        cp = self._checkpointer
        self.stopped_pending = []
        prio = self._priority if self._priority is not None else {}
        base = len(prio)
        while work:
            nid = work.pop()
            if self._ceiling is not None:
                p = prio.get(nid)
                if p is None:
                    p = base + nid
                if p >= self._ceiling():
                    work.add(nid)
                    self.stopped_pending = list(work.pending())
                    break
                if p > self.max_pop:
                    self.max_pop = p
            if not space.runnable(nid):
                continue
            if self._degrade is not None and self._degrade.is_degraded_node(nid):
                continue
            # Inflight tracking: between pop and the end of the visit this
            # node is in neither the worklist nor (necessarily) the table —
            # an abort snapshot taken while it is set re-includes it at the
            # front of the pending list. It is deliberately NOT cleared on
            # the exception path.
            self._inflight = nid
            self._step(nid, work, wps)
            self._inflight = None
            if cp is not None:
                cp.maybe_write(self)
        self._work = None
        self.stats.max_worklist = work.max_size
        cache_after = cache_stats()
        self.scheduler_stats = SchedulerStats.from_worklist(
            work,
            widening_points=len(wps),
            cache_delta=(
                cache_after[0] - cache_before[0],
                cache_after[1] - cache_before[1],
            ),
        )
        space.record_stats(self.stats)
        self._telemetry.merge_fixpoint_stats(self.stats, self.scheduler_stats)
        return self.table

    def _step(self, nid: int, work, wps) -> None:
        """One worklist visit: meter, transfer, table update, propagation."""
        space = self.space
        self.stats.iterations += 1
        try:
            self._tick()
        except BudgetExceeded as exc:
            if self._degrade is None:
                raise
            # Degrade the procedure whose node could not afford its next
            # visit; pending work in other procedures degrades the same
            # way as it is popped (every further tick re-raises), so the
            # loop still terminates and every unconverged procedure ends
            # at the pre-analysis bound.
            newly = self._degrade.degrade_node(nid, self.table, cause=str(exc))
            self._absorb_degraded(newly)
            return
        self.stats.visited.add(nid)
        in_state = space.input_for(nid)
        if in_state is None:
            return
        out = self._apply_transfer(nid, in_state)
        if out is None:
            return
        space.after_transfer(nid, work)
        old = self.table.get(nid)
        if old is None:
            out = space.install(out)
            self.table[nid] = out
            self._entries += len(out)
            changed = None  # everything is new
        elif nid in wps:
            before = len(old)
            seen = self._growth.get(nid, 0)
            if seen < self._widening_delay:
                changed = old.join_changed(out)
                if changed:
                    self._growth[nid] = seen + 1
            else:
                changed = old.widen_changed(out, self._thresholds)
            self._entries += len(old) - before
            out = old
        else:
            before = len(old)
            changed = old.join_changed(out)
            self._entries += len(old) - before
            out = old
        if changed is None or changed:
            space.propagate(nid, out, changed, work)

    def preload_table(
        self,
        table: Mapping[int, "StateLattice"],
        growth: Mapping[int, int] | None = None,
    ) -> None:
        """Seed the engine with an existing table before :meth:`solve` — the
        shard driver's way of resuming a shard against merged global state.
        Unlike :meth:`restore` this installs only the table (and optionally
        the per-head widening-delay counters); seeding/worklist behavior is
        the space's business."""
        self.table = dict(table)
        self._entries = sum(len(s) for s in self.table.values())
        if growth is not None:
            self._growth = dict(growth)

    # -- checkpoint/resume -----------------------------------------------------

    def snapshot(self) -> dict:
        """A complete wire-format snapshot of the in-flight run: the state
        table, the pending worklist in pop order (including any inflight
        node), widening/iteration counters, and the space's private caches.
        See DESIGN.md §11 for why this set is sufficient for resume ≡
        uninterrupted equivalence."""
        from repro.runtime.checkpoint import state_to_wire

        pending = list(self._work.pending()) if self._work is not None else []
        if self._inflight is not None and self._inflight not in pending:
            pending.insert(0, self._inflight)
        return {
            "phase": self._phase,
            "iterations": self.stats.iterations,
            "meter_iterations": self._meter.iterations,
            "visited": sorted(self.stats.visited),
            "growth": sorted(self._growth.items()),
            "table": [
                [nid, state_to_wire(state)]
                for nid, state in sorted(self.table.items())
            ],
            "pending": pending,
            "space": self.space.snapshot_extra(),
            "degraded_procs": (
                sorted(self._degrade.degraded_procs)
                if self._degrade is not None
                else []
            ),
        }

    def restore(self, payload: dict) -> None:
        """Reinstall a :meth:`snapshot` payload; the next :meth:`solve`
        continues from the checkpointed worklist instead of the seeds."""
        from repro.runtime.checkpoint import state_from_wire

        self.table = {
            int(nid): state_from_wire(wire) for nid, wire in payload["table"]
        }
        self._entries = sum(len(s) for s in self.table.values())
        self.stats.iterations = int(payload["iterations"])
        self.stats.visited = set(payload["visited"])
        self._growth = {int(n): int(c) for n, c in payload["growth"]}
        self._meter.iterations = int(payload["meter_iterations"])
        self._resume_pending = [int(n) for n in payload["pending"]]
        self.space.restore_extra(payload.get("space") or {})
        degraded = payload.get("degraded_procs") or []
        if self._degrade is not None and degraded:
            self._degrade.adopt(degraded)
        self.resumed_from_iteration = self.stats.iterations

    def narrow(self, passes: int) -> None:
        """Decreasing iteration: recompute states without widening for a
        bounded number of passes, keeping only sound refinements. Inputs are
        assembled from scratch (:meth:`PropagationSpace.assemble_input`), so
        the kept outputs never alias caches. Narrowing work counts against
        the same budget as the ascending phase; when the budget runs out
        mid-narrowing the widened table — already sound — is kept as-is
        (degrade mode) or the exhaustion is surfaced (fail mode)."""
        order = sorted(self.table.keys())
        for _ in range(passes):
            refined = False
            for nid in order:
                if self._degrade is not None and self._degrade.is_degraded_node(
                    nid
                ):
                    continue
                self.stats.iterations += 1
                try:
                    self._tick()
                except BudgetExceeded as exc:
                    if self._degrade is None:
                        raise
                    self._degrade.diagnostics.events.append(
                        f"narrowing stopped early: {exc}"
                    )
                    return
                in_state = self.space.assemble_input(nid)
                if in_state is None:
                    continue
                out = self._apply_transfer(nid, in_state)
                if out is None:
                    continue
                old = self.table.get(nid)
                if old is None:
                    continue
                if out.leq(old) and not old.leq(out):
                    self.table[nid] = out
                    self._entries += len(out) - len(old)
                    refined = True
            if not refined:
                break
