"""Weak topological ordering and priority-driven fixpoint scheduling.

Bourdoncle's weak topological order (WTO) [Bourdoncle, FMPA 1993] is a
hierarchical decomposition of a directed graph into nested *components*,
each headed by a single node, such that every cycle of the graph passes
through a component head. Two properties make it the standard fixpoint
schedule:

* **Widening points**: the component heads cut every cycle, so widening at
  exactly the heads guarantees termination — a principled replacement for
  the two ad-hoc selections the engines used before (DFS back-edge targets
  on the control graph, and the dep-graph fallback of the sparse solver).
* **Iteration order**: visiting nodes by their WTO position (reverse
  postorder within components, inner components stabilizing before the
  enclosing ones resume, each head re-tested only after its component body
  drained) drives the chaotic iteration close to the recursive strategy
  Bourdoncle proves optimal among memoryless strategies — far fewer node
  re-visits than FIFO on loop-heavy graphs.

:func:`compute_wto` implements the recursive-SCC formulation with an
explicit stack (no recursion limits): Tarjan's algorithm finds strongly
connected components, trivial SCCs become elements in reverse postorder,
and each non-trivial SCC becomes a component headed by its first node in
DFS order, with the head's incoming back edges cut before the component's
interior is decomposed the same way.

:class:`FifoWorklist` and :class:`PriorityWorklist` give all four engines a
uniform worklist interface; both record the re-visit and priority-inversion
counters reported in :class:`SchedulerStats`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = [
    "WTO",
    "compute_wto",
    "GraphView",
    "widening_points_for",
    "FifoWorklist",
    "PriorityWorklist",
    "make_worklist",
    "SchedulerStats",
    "SCHEDULERS",
]

#: recognized scheduler names, in preference order
SCHEDULERS = ("wto", "fifo")


# --------------------------------------------------------------------------
# Weak topological order
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class WTO:
    """A weak topological order of (the reachable part of) a graph.

    ``components`` is the nested tuple representation: an element is a bare
    node id, a component is a tuple ``(head, inner, ...)`` whose first item
    is the head node id and whose remaining items are the component's
    interior in WTO order (elements or nested components).
    """

    components: tuple
    #: node → scheduling position (smaller = earlier). Deviates from the
    #: textbook linearization in one respect: a component's head is numbered
    #: *after* its interior, so the priority worklist drains the component
    #: body before re-testing (and re-widening) the head — the flat-queue
    #: rendering of Bourdoncle's recursive strategy, where a head is
    #: re-evaluated once per stabilized pass over its component.
    priority: dict[int, int]
    #: component heads — the unified widening-point selection
    heads: frozenset[int]
    #: node → loop nesting depth (0 = outside every component)
    depth: dict[int, int]

    def linear(self) -> list[int]:
        """The textbook linearized WTO (each head first in its component).
        Note the *scheduling* order in ``priority`` places heads last within
        their component instead."""
        out: list[int] = []
        work: list[tuple[tuple, int]] = [(self.components, 0)]
        while work:
            seq, i = work.pop()
            while i < len(seq):
                item = seq[i]
                i += 1
                if isinstance(item, tuple):
                    work.append((seq, i))
                    work.append((item, 0))
                    break
                out.append(item)
        return out

    def priority_of(self, node: int) -> int:
        """Priority of ``node``; unreachable nodes sort after everything
        reachable, by node id (keeps non-strict seeding deterministic)."""
        found = self.priority.get(node)
        if found is not None:
            return found
        return len(self.priority) + node


def compute_wto(
    roots: Iterable[int], succs: Mapping[int, Sequence[int]]
) -> WTO:
    """Bourdoncle's weak topological order of the subgraph reachable from
    ``roots``, via iterative Tarjan SCC decomposition applied recursively
    (explicit work stack — safe on deeply nested graphs)."""
    roots = list(roots)

    # Each pending job decomposes one subgraph: (nodes, roots, sink).
    # ``sink`` is the mutable list collecting the job's WTO items in order;
    # a component is a nested list ``[head, *interior]`` that doubles as
    # the sink of the job decomposing its interior.
    top_sink: list = []
    jobs: list[tuple[set[int] | None, list[int], list]] = [
        (None, roots, top_sink)
    ]

    while jobs:
        allowed, job_roots, sink = jobs.pop()
        sccs = _tarjan_sccs(job_roots, succs, allowed)
        # Tarjan emits SCCs in reverse topological order; a WTO lists them
        # topologically, so walk the list backwards.
        for scc, has_cycle in reversed(sccs):
            if not has_cycle:
                sink.append(scc[0])
                continue
            # Component: the head is the SCC node discovered first.
            head = scc[0]
            component: list = [head]
            sink.append(component)
            members = set(scc)
            members.discard(head)
            if members:
                # Decompose the interior with the head excluded, which
                # cuts its incoming back edges; the head's interior
                # successors are the interior's entry points.
                inner_roots = [
                    s for s in succs.get(head, ()) if s in members
                ]
                jobs.append((members, inner_roots, component))

    components = _tupleize(top_sink)
    priority: dict[int, int] = {}
    heads: set[int] = set()
    depth: dict[int, int] = {}
    _linearize(components, priority, heads, depth)
    return WTO(components, priority, frozenset(heads), depth)


def _tarjan_sccs(
    roots: Sequence[int],
    succs: Mapping[int, Sequence[int]],
    allowed: set[int] | None,
) -> list[tuple[list[int], bool]]:
    """Iterative Tarjan over the subgraph induced by ``allowed`` (None =
    everything), rooted at ``roots``. Returns ``(members, has_cycle)`` per
    SCC in reverse topological order, members led by the first-discovered
    node (the WTO component head)."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[tuple[list[int], bool]] = []
    counter = 0

    for root in roots:
        if root in index or (allowed is not None and root not in allowed):
            continue
        # frame: [node, iterator over succs]
        frames: list[list] = [[root, iter(succs.get(root, ()))]]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while frames:
            node, it = frames[-1]
            advanced = False
            for child in it:
                if allowed is not None and child not in allowed:
                    continue
                if child not in index:
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    frames.append([child, iter(succs.get(child, ()))])
                    advanced = True
                    break
                if child in on_stack:
                    if index[child] < low[node]:
                        low[node] = index[child]
            if advanced:
                continue
            frames.pop()
            if frames and low[node] < low[frames[-1][0]]:
                low[frames[-1][0]] = low[node]
            if low[node] == index[node]:
                members: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    members.append(w)
                    if w == node:
                        break
                members.reverse()  # first-discovered node leads
                has_cycle = len(members) > 1 or node in succs.get(node, ())
                sccs.append((members, has_cycle))
    return sccs


def _tupleize(root: list) -> tuple:
    """Convert nested lists to nested tuples without recursion (component
    nesting depth can be large on pathological graphs)."""
    order: list[list] = [root]
    idx = 0
    while idx < len(order):
        for item in order[idx]:
            if isinstance(item, list):
                order.append(item)
        idx += 1
    results: dict[int, tuple] = {}
    for cur in reversed(order):  # children before parents
        results[id(cur)] = tuple(
            results[id(item)] if isinstance(item, list) else item
            for item in cur
        )
    return results[id(root)]


def _linearize(
    components: tuple,
    priority: dict[int, int],
    heads: set[int],
    depth: dict[int, int],
) -> None:
    """Assign scheduling positions, collect heads, record nesting depth.

    A component's head receives its position only after the whole interior
    is numbered (head-last scheduling): the worklist then stabilizes the
    body before the head re-runs, so widening at the head observes the
    batched result of a full pass instead of every intermediate wave —
    fewer head re-visits and less order-sensitive widening."""
    counter = 0
    # (seq, resume index, depth, pending head | None); the pending head is
    # numbered once its component's interior is fully processed.
    work: list[tuple[tuple, int, int, int | None]] = [(components, 0, 0, None)]
    while work:
        seq, i, d, head = work.pop()
        suspended = False
        while i < len(seq):
            item = seq[i]
            i += 1
            if i == 1 and head is not None:
                # the head of this component — numbered at frame exit
                heads.add(item)
                depth[item] = d
                continue
            if isinstance(item, tuple):
                work.append((seq, i, d, head))
                work.append((item, 0, d + 1, item[0]))
                suspended = True
                break
            priority[item] = counter
            counter += 1
            depth[item] = d
        if not suspended and head is not None:
            priority[head] = counter
            counter += 1


@dataclass(frozen=True)
class GraphView:
    """Minimal scheduling view of a raw graph — duck-types the
    ``schedule_roots``/``schedule_succs`` slice of a propagation space so
    :func:`widening_points_for` also serves callers that need the WTO
    *before* the space exists (the sparse drivers compute widening points
    first because dependency generation cuts chains at them)."""

    roots: tuple[int, ...]
    succs: Mapping[int, Sequence[int]]

    def schedule_roots(self) -> Sequence[int]:
        return self.roots

    def schedule_succs(self) -> Mapping[int, Sequence[int]]:
        return self.succs


def widening_points_for(space, widen: bool = True) -> tuple[WTO, set[int]]:
    """The single widening-point selection shared by every engine: one WTO
    over the space's scheduling graph serves both purposes — its component
    heads are the widening points (they cut every cycle) and its linear
    order drives the priority worklist. ``space`` is anything exposing
    ``schedule_roots()``/``schedule_succs()`` (a
    :class:`~repro.analysis.engine.PropagationSpace` or a
    :class:`GraphView`); ``widen=False`` keeps the WTO for scheduling but
    selects no widening points (exact ``lfp F♯`` on finite-chain programs).
    """
    wto = compute_wto(space.schedule_roots(), space.schedule_succs())
    return wto, (set(wto.heads) if widen else set())


# --------------------------------------------------------------------------
# Worklists
# --------------------------------------------------------------------------


class FifoWorklist:
    """The classic FIFO deque + membership set, with re-visit counters.

    When a ``priority`` map is supplied it is used for *stats only*
    (priority inversions relative to the WTO order), never for ordering —
    this is the baseline the WTO scheduler is benchmarked against.
    """

    __slots__ = ("_deque", "_in", "_priority", "pops", "pop_counts",
                 "inversions", "max_size", "_last_priority")

    scheduler = "fifo"

    def __init__(
        self,
        initial: Iterable[int] = (),
        priority: Mapping[int, int] | None = None,
    ) -> None:
        from collections import deque

        self._deque = deque(initial)
        self._in = set(self._deque)
        self._priority = priority
        self.pops = 0
        self.pop_counts: dict[int, int] = {}
        self.inversions = 0
        self.max_size = len(self._deque)
        self._last_priority: int | None = None

    def add(self, node: int) -> None:
        if node not in self._in:
            self._in.add(node)
            self._deque.append(node)
            if len(self._deque) > self.max_size:
                self.max_size = len(self._deque)

    def pending(self) -> list[int]:
        """The queued nodes in exact pop order (checkpoint capture)."""
        return list(self._deque)

    def pop(self) -> int:
        node = self._deque.popleft()
        self._in.discard(node)
        self.pops += 1
        self.pop_counts[node] = self.pop_counts.get(node, 0) + 1
        if self._priority is not None:
            p = self._priority.get(node)
            if (
                p is not None
                and self._last_priority is not None
                and p < self._last_priority
            ):
                self.inversions += 1
            self._last_priority = p
        return node

    def __len__(self) -> int:
        return len(self._deque)

    def __bool__(self) -> bool:
        return bool(self._deque)

    def __contains__(self, node: int) -> bool:
        return node in self._in


class PriorityWorklist:
    """A min-heap worklist ordered by WTO position.

    Always pops the pending node that comes earliest in the weak
    topological order, which iterates inner components to stabilization
    before the enclosing component resumes — Bourdoncle's recursive
    strategy approximated with a single heap. Nodes missing from the
    priority map (unreachable seeds in non-strict mode) sort after every
    mapped node, by id.
    """

    __slots__ = ("_heap", "_in", "_priority", "_base", "pops", "pop_counts",
                 "inversions", "max_size", "_last_priority")

    scheduler = "wto"

    def __init__(
        self,
        priority: Mapping[int, int],
        initial: Iterable[int] = (),
    ) -> None:
        self._priority = priority
        self._base = len(priority)
        self._heap: list[tuple[int, int]] = []
        self._in: set[int] = set()
        self.pops = 0
        self.pop_counts: dict[int, int] = {}
        self.inversions = 0
        self.max_size = 0
        self._last_priority: int | None = None
        for node in initial:
            self.add(node)

    def _prio(self, node: int) -> int:
        found = self._priority.get(node)
        if found is not None:
            return found
        return self._base + node

    def add(self, node: int) -> None:
        if node not in self._in:
            self._in.add(node)
            heapq.heappush(self._heap, (self._prio(node), node))
            if len(self._in) > self.max_size:
                self.max_size = len(self._in)

    def pending(self) -> list[int]:
        """The live nodes in exact pop order (checkpoint capture). The heap
        may hold stale lazy-deleted entries; ``_in`` is the truth, and the
        heap's ``(priority, node)`` ordering is a pure function of it."""
        return sorted(self._in, key=lambda n: (self._prio(n), n))

    def pop(self) -> int:
        while True:
            p, node = heapq.heappop(self._heap)
            if node in self._in:
                break
        self._in.discard(node)
        self.pops += 1
        self.pop_counts[node] = self.pop_counts.get(node, 0) + 1
        if self._last_priority is not None and p < self._last_priority:
            # Popping an earlier-priority node than the previous pop means
            # upstream state changed after we had moved on — the re-visit
            # cost WTO scheduling is designed to minimize.
            self.inversions += 1
        self._last_priority = p
        return node

    def __len__(self) -> int:
        return len(self._in)

    def __bool__(self) -> bool:
        return bool(self._in)

    def __contains__(self, node: int) -> bool:
        return node in self._in


def make_worklist(
    scheduler: str,
    priority: Mapping[int, int] | None,
    initial: Iterable[int] = (),
):
    """Build the worklist for ``scheduler`` ("wto" or "fifo")."""
    if scheduler == "wto" and priority is not None:
        return PriorityWorklist(priority, initial)
    if scheduler in ("fifo", "wto"):
        return FifoWorklist(initial, priority)
    raise ValueError(f"unknown scheduler {scheduler!r}")


# --------------------------------------------------------------------------
# Stats
# --------------------------------------------------------------------------


@dataclass
class SchedulerStats:
    """One fixpoint run's scheduling and value-sharing counters.

    ``revisits`` counts pops beyond each node's first; ``inversions``
    counts pops whose WTO priority is lower than the immediately preceding
    pop's (backward jumps in the schedule). The join-cache counters are the
    value layer's memoized join/widen hits attributable to this run.
    """

    scheduler: str = "fifo"
    pops: int = 0
    unique_nodes: int = 0
    revisits: int = 0
    max_revisits: int = 0
    inversions: int = 0
    max_worklist: int = 0
    widening_points: int = 0
    join_cache_hits: int = 0
    join_cache_misses: int = 0
    #: nodes popped more than once, worst offenders first (bounded)
    hot_nodes: list[tuple[int, int]] = field(default_factory=list)

    @property
    def join_cache_hit_rate(self) -> float:
        total = self.join_cache_hits + self.join_cache_misses
        return self.join_cache_hits / total if total else 0.0

    @property
    def revisit_rate(self) -> float:
        return self.revisits / self.pops if self.pops else 0.0

    @classmethod
    def from_worklist(
        cls,
        work,
        widening_points: int = 0,
        cache_delta: tuple[int, int] = (0, 0),
        hot_limit: int = 8,
    ) -> "SchedulerStats":
        counts = work.pop_counts
        revisits = sum(c - 1 for c in counts.values())
        hot = sorted(
            ((n, c) for n, c in counts.items() if c > 1),
            key=lambda nc: (-nc[1], nc[0]),
        )[:hot_limit]
        return cls(
            scheduler=work.scheduler,
            pops=work.pops,
            unique_nodes=len(counts),
            revisits=revisits,
            max_revisits=max((c - 1 for c in counts.values()), default=0),
            inversions=work.inversions,
            max_worklist=work.max_size,
            widening_points=widening_points,
            join_cache_hits=cache_delta[0],
            join_cache_misses=cache_delta[1],
            hot_nodes=hot,
        )

    def as_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "pops": self.pops,
            "unique_nodes": self.unique_nodes,
            "revisits": self.revisits,
            "max_revisits": self.max_revisits,
            "revisit_rate": round(self.revisit_rate, 4),
            "inversions": self.inversions,
            "max_worklist": self.max_worklist,
            "widening_points": self.widening_points,
            "join_cache_hits": self.join_cache_hits,
            "join_cache_misses": self.join_cache_misses,
            "join_cache_hit_rate": round(self.join_cache_hit_rate, 4),
            "hot_nodes": list(self.hot_nodes),
        }

    def __str__(self) -> str:
        return (
            f"scheduler={self.scheduler} pops={self.pops} "
            f"revisits={self.revisits} (max {self.max_revisits}) "
            f"inversions={self.inversions} "
            f"join-cache {self.join_cache_hits}/"
            f"{self.join_cache_hits + self.join_cache_misses} "
            f"({100 * self.join_cache_hit_rate:.0f}%)"
        )
