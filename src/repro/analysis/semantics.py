"""Abstract semantics ``f♯_c`` of the non-relational (interval × points-to)
analysis — Section 3.1 of the paper, extended to the C features SPARROW
handles: arrays (block smashing with base/offset/size), field-sensitive
structs, allocation-site heap, function pointers, and interprocedural
argument/return binding.

The same evaluator serves three masters:

* the dense and sparse fixpoint engines (transfer functions),
* the flow-insensitive pre-analysis (same functions over one global state),
* the D̂/Û approximation (every location read or written can be recorded in
  an :class:`AccessLog` — this is the semantics-based def/use derivation of
  Section 3.2, including the *implicit use* of weakly-updated targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.domains.absloc import (
    AbsLoc,
    AllocLoc,
    FieldLoc,
    FuncLoc,
    RetLoc,
    VarLoc,
)
from repro.domains.interval import BOOL, BOT as ITV_BOT, Interval, ONE, ZERO
from repro.domains.state import AbsState
from repro.domains.value import AbsValue, ArrayBlock
from repro.ir.cfg import Node
from repro.ir.commands import (
    CAlloc,
    CAssume,
    CCall,
    CEntry,
    CExit,
    CRetBind,
    CReturn,
    CSet,
    CSkip,
    DerefLv,
    EAddrOf,
    EBinOp,
    ELval,
    ENum,
    EStrAddr,
    EUnknown,
    EUnOp,
    Expr,
    FieldLv,
    IndexLv,
    Lval,
    VarLv,
)
from repro.ir.program import Program

_NEGATED = {
    "<": ">=",
    ">": "<=",
    "<=": ">",
    ">=": "<",
    "==": "!=",
    "!=": "==",
}

_SWAPPED = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "!=": "!="}


@dataclass
class AccessLog:
    """Records the abstract locations a transfer function reads/writes.

    ``used`` follows Definition 2: every location whose value influences the
    output *including* weakly-updated targets (their old value survives into
    the new one). ``defined`` follows Definition 1. ``strong_defined`` are
    killing writes (single non-summary target, old value discarded) — the
    seeds of the must-def analysis that lets calls kill definitions.
    """

    used: set[AbsLoc] = field(default_factory=set)
    defined: set[AbsLoc] = field(default_factory=set)
    strong_defined: set[AbsLoc] = field(default_factory=set)

    def use(self, loc: AbsLoc) -> None:
        self.used.add(loc)

    def define(self, locs: Iterable[AbsLoc]) -> None:
        self.defined.update(locs)


class AnalysisContext:
    """Whole-program facts the transfer functions need.

    ``strict`` selects the treatment of definitely-false branch conditions:
    strict transfer functions map them to unreachable (``None``), matching a
    worklist engine that prunes dead paths; non-strict ones return the
    refined state (with ⊥ values inside), matching the paper's formulation
    ``F♯(X)(c) = f♯_c(⊔ X(c'))`` where states are always defined.
    """

    def __init__(
        self,
        program: Program,
        site_callees: dict[int, tuple[str, ...]] | None = None,
        strict: bool = True,
    ) -> None:
        self.program = program
        self.site_callees = site_callees
        self.strict = strict
        self._defined_funcs = program.defined_functions()
        # Locals of recursive procedures are *summary* cells: one abstract
        # location stands for every live frame, so only weak updates (and
        # no assume refinement) are sound for them.
        from repro.ir.callgraph import build_callgraph

        resolve = None
        if site_callees is not None:
            mapping = site_callees
            resolve = lambda node: mapping.get(node.nid, ())
        self.recursive_procs = build_callgraph(
            program, resolve=resolve
        ).recursive_procs()

    def is_summary_loc(self, loc: AbsLoc) -> bool:
        """Summary = heap/array cells, plus frame cells of recursive
        procedures (many concrete frames share them)."""
        if loc.is_summary():
            return True
        base = loc
        while isinstance(base, FieldLoc):
            base = base.base
        if isinstance(base, VarLoc) and base.proc in self.recursive_procs:
            return True
        if isinstance(base, RetLoc) and base.proc in self.recursive_procs:
            return True
        return False

    def resolve_callees(self, node: Node, state: AbsState) -> tuple[str, ...]:
        """Candidate callees of a call node.

        Uses the pre-resolved call graph when available (Section 5: function
        pointers are resolved by the flow-insensitive pre-analysis);
        otherwise resolves from the current state — which is exactly what
        the pre-analysis itself does while its global invariant grows.
        """
        cmd = node.cmd
        assert isinstance(cmd, CCall)
        if self.site_callees is not None:
            return self.site_callees.get(node.nid, ())
        if cmd.static_callee is not None and cmd.static_callee in self._defined_funcs:
            return (cmd.static_callee,)
        value = Evaluator(self, state).eval(cmd.callee)
        names = tuple(
            sorted(
                loc.name
                for loc in value.ptsto
                if isinstance(loc, FuncLoc) and loc.name in self._defined_funcs
            )
        )
        return names


class Evaluator:
    """Evaluates pure IR expressions and lvalues over an abstract state."""

    def __init__(
        self,
        ctx: AnalysisContext,
        state: AbsState,
        log: AccessLog | None = None,
    ) -> None:
        self.ctx = ctx
        self.state = state
        self.log = log

    # -- reads -------------------------------------------------------------------

    def _read(self, loc: AbsLoc) -> AbsValue:
        if self.log is not None:
            self.log.use(loc)
        return self.state.get(loc)

    def eval(self, expr: Expr) -> AbsValue:
        if isinstance(expr, ENum):
            return AbsValue.of_const(expr.value)
        if isinstance(expr, ELval):
            locs = self.lval_locs(expr.lval)
            out = AbsValue.bottom()
            for loc in locs:
                out = out.join(self._read(loc))
            return out
        if isinstance(expr, EAddrOf):
            return self._eval_addrof(expr.lval)
        if isinstance(expr, EStrAddr):
            block = ArrayBlock(
                AllocLoc(f"str:{expr.site}"),
                Interval.const(0),
                Interval.const(expr.length),
            )
            return AbsValue.of_block(block)
        if isinstance(expr, EBinOp):
            return self._eval_binop(expr)
        if isinstance(expr, EUnOp):
            return self._eval_unop(expr)
        if isinstance(expr, EUnknown):
            return AbsValue.top()
        raise TypeError(f"unknown expression {expr!r}")

    def _eval_addrof(self, lval: Lval) -> AbsValue:
        if isinstance(lval, VarLv) and lval.proc is None:
            if lval.name in self.ctx._defined_funcs:
                return AbsValue.of_locs({FuncLoc(lval.name)})
        locs = self.lval_locs(lval)
        return AbsValue.of_locs(frozenset(locs))

    def _eval_binop(self, expr: EBinOp) -> AbsValue:
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        op = expr.op
        if op in ("<", ">", "<=", ">=", "==", "!="):
            if left.has_pointers() or right.has_pointers():
                return AbsValue.of_interval(BOOL)
            return AbsValue.of_interval(left.itv.cmp(op, right.itv))
        if op in ("&&", "||"):
            lt = left.truthiness()
            rt = right.truthiness()
            if op == "&&":
                if lt == ZERO or rt == ZERO:
                    return AbsValue.of_interval(ZERO)
                if lt == ONE and rt == ONE:
                    return AbsValue.of_interval(ONE)
            else:
                if lt == ONE or rt == ONE:
                    return AbsValue.of_interval(ONE)
                if lt == ZERO and rt == ZERO:
                    return AbsValue.of_interval(ZERO)
            return AbsValue.of_interval(BOOL)
        if op in ("+", "-"):
            return self._eval_additive(op, left, right)
        itv = {
            "*": left.itv.mul,
            "/": left.itv.div,
            "%": left.itv.mod,
            "<<": left.itv.shl,
            ">>": left.itv.shr,
            "&": left.itv.bitand,
            "|": left.itv.bitor,
            "^": left.itv.bitxor,
        }[op](right.itv)
        return AbsValue.of_interval(itv)

    def _eval_additive(self, op: str, left: AbsValue, right: AbsValue) -> AbsValue:
        """``+``/``-`` with pointer arithmetic on array blocks."""
        delta = right.itv if op == "+" else right.itv.neg()
        arrays: tuple[ArrayBlock, ...] = ()
        ptsto: frozenset[AbsLoc] = frozenset()
        if left.arrays and not delta.is_bottom():
            arrays = tuple(blk.shift(delta) for blk in left.arrays)
        elif left.arrays:
            arrays = left.arrays
        if op == "+" and right.arrays:
            # int + ptr
            d2 = left.itv
            shifted = tuple(
                blk.shift(d2) if not d2.is_bottom() else blk for blk in right.arrays
            )
            arrays = arrays + shifted
        if left.ptsto:
            ptsto = left.ptsto  # field-insensitive scalar pointer arithmetic
        if op == "+" and right.ptsto:
            ptsto = ptsto | right.ptsto
        if op == "+":
            itv = left.itv.add(right.itv)
        else:
            itv = left.itv.sub(right.itv)
            if left.arrays and right.arrays:
                # pointer difference: offsets' difference
                diffs = ITV_BOT
                for a in left.arrays:
                    for b in right.arrays:
                        if a.base == b.base:
                            diffs = diffs.join(a.offset.sub(b.offset))
                itv = itv.join(diffs)
        return AbsValue(itv=itv, ptsto=ptsto, arrays=arrays)

    def _eval_unop(self, expr: EUnOp) -> AbsValue:
        v = self.eval(expr.operand)
        if expr.op == "-":
            return AbsValue.of_interval(v.itv.neg())
        if expr.op == "+":
            return AbsValue.of_interval(v.itv)
        if expr.op == "!":
            return AbsValue.of_interval(v.truthiness().lnot())
        if expr.op == "~":
            return AbsValue.of_interval(v.itv.bnot())
        raise TypeError(f"unknown unary op {expr.op!r}")

    # -- lvalue resolution -----------------------------------------------------------

    def lval_locs(self, lval: Lval) -> set[AbsLoc]:
        """The abstract locations an lvalue denotes in the current state."""
        if isinstance(lval, VarLv):
            return {VarLoc(lval.name, lval.proc)}
        if isinstance(lval, FieldLv):
            bases = self.lval_locs(lval.base)
            return {FieldLoc(b, lval.fieldname) for b in bases}
        if isinstance(lval, DerefLv):
            value = self.eval(lval.ptr)
            targets = value.all_pointees()
            targets = {t for t in targets if not isinstance(t, FuncLoc)}
            if lval.fieldname is None:
                return targets
            return {FieldLoc(t, lval.fieldname) for t in targets}
        if isinstance(lval, IndexLv):
            base = self.eval(lval.base)
            self.eval(lval.index)  # index is used (and checked elsewhere)
            targets: set[AbsLoc] = {blk.base for blk in base.arrays}
            targets.update(
                t for t in base.ptsto if not isinstance(t, FuncLoc)
            )
            return targets
        raise TypeError(f"unknown lvalue {lval!r}")


def transfer(
    node: Node,
    state: AbsState,
    ctx: AnalysisContext,
    log: AccessLog | None = None,
) -> AbsState | None:
    """Apply ``f♯_c`` for control point ``node`` to ``state``.

    Returns the output state, or None when the state is proven unreachable
    (a definitely-false assume). ``state`` is not mutated.
    """
    cmd = node.cmd
    if isinstance(cmd, (CSkip, CEntry, CExit)):
        return state
    out = state.copy()
    ev = Evaluator(ctx, state, log)

    if isinstance(cmd, CSet):
        value = ev.eval(cmd.expr)
        locs = ev.lval_locs(cmd.lval)
        _write(out, locs, value, log, ev, pointer_target=_state_dependent(cmd.lval))
        return out

    if isinstance(cmd, CAlloc):
        size = ev.eval(cmd.size)
        base = AllocLoc(cmd.site)
        block = ArrayBlock(base, Interval.const(0), size.itv)
        locs = ev.lval_locs(cmd.lval)
        _write(
            out,
            locs,
            AbsValue.of_block(block),
            log,
            ev,
            pointer_target=_state_dependent(cmd.lval),
        )
        # Blocks are zero-initialized (calloc model, matching C globals and
        # the concrete interpreter): the summary element must include 0 or
        # reads-before-writes would be under-approximated.
        out.weak_set(base, AbsValue.of_const(0))
        if log is not None:
            log.define({base})
            log.use(base)
        return out

    if isinstance(cmd, CAssume):
        return _assume(out, cmd, ctx, log)

    if isinstance(cmd, CCall):
        callees = ctx.resolve_callees(node, state)
        for callee in callees:
            info = ctx.program.proc_infos.get(callee)
            if info is None:
                continue
            for i, param in enumerate(info.params):
                loc = VarLoc(param, callee)
                value = (
                    ev.eval(cmd.args[i]) if i < len(cmd.args) else AbsValue.top()
                )
                _write(out, {loc}, value, log, ev)
        if not callees:
            # External call: arguments are still evaluated (their reads are
            # real uses); the call itself has no modelled side effect.
            for arg in cmd.args:
                ev.eval(arg)
        return out

    if isinstance(cmd, CRetBind):
        call_node = ctx.program.node(cmd.call_node)
        callees = ctx.resolve_callees(call_node, state)
        if cmd.lval is None:
            # Still a use of the return locations (they flow to the caller).
            for callee in callees:
                ev._read(RetLoc(callee))
            return out
        if callees:
            value = AbsValue.bottom()
            for callee in callees:
                value = value.join(ev._read(RetLoc(callee)))
        else:
            value = AbsValue.top()  # unknown external procedure result
        locs = ev.lval_locs(cmd.lval)
        _write(out, locs, value, log, ev)
        return out

    if isinstance(cmd, CReturn):
        loc = RetLoc(node.proc)
        value = ev.eval(cmd.value) if cmd.value is not None else AbsValue.bottom()
        # Multiple returns join along control flow, so each return may write
        # its own value strongly — but exits of recursive procedures see
        # interleaved states, so the weak flavour is the safe default.
        _write(out, {loc}, value, log, ev, weak=True)
        return out

    raise TypeError(f"unknown command {cmd!r}")


def _state_dependent(lval: Lval) -> bool:
    """True when the lvalue's target set depends on the abstract state
    (pointer dereference or array indexing somewhere in the access path)."""
    if isinstance(lval, (DerefLv, IndexLv)):
        return True
    if isinstance(lval, FieldLv):
        return _state_dependent(lval.base)
    return False


def _write(
    state: AbsState,
    locs: set[AbsLoc],
    value: AbsValue,
    log: AccessLog | None,
    ev: Evaluator,
    weak: bool = False,
    pointer_target: bool = False,
) -> None:
    """Strong/weak update with Definition 1/2-faithful logging.

    Weakly updated targets are also *used* (their old value flows into the
    new). Writes through pointers (``pointer_target``) log their targets as
    used even when the update is strong — the paper's Û for ``*x := e``
    always contains ``ŝ_c(x).P̂`` — because the pre-analysis target set may
    shrink to a pass-through at analysis time. Only strong writes to
    statically-known locations seed the must-def analysis.
    """
    locs = set(locs)
    if log is not None:
        log.define(locs)
    is_weak = (
        weak
        or len(locs) != 1
        or any(ev.ctx.is_summary_loc(l) for l in locs)
    )
    if is_weak or pointer_target:
        if log is not None:
            for loc in locs:
                log.use(loc)
    if is_weak:
        for loc in locs:
            state.weak_set(loc, value)
    else:
        (loc,) = locs
        if log is not None and not pointer_target:
            log.strong_defined.add(loc)
        state.set(loc, value)


def _assume(
    state: AbsState,
    cmd: CAssume,
    ctx: AnalysisContext,
    log: AccessLog | None,
) -> AbsState | None:
    ev = Evaluator(ctx, state, log)
    cond = cmd.cond
    positive = cmd.positive
    # Unwrap double negations introduced by source-level `!`.
    while isinstance(cond, EUnOp) and cond.op == "!":
        cond = cond.operand
        positive = not positive

    if ctx.strict:
        truth = ev.eval(cond).truthiness()
        if truth.is_bottom():
            return None
        if positive and truth == ZERO:
            return None
        if not positive and truth == ONE:
            return None

    if isinstance(cond, EBinOp) and cond.op in _NEGATED:
        op = cond.op if positive else _NEGATED[cond.op]
        _refine_cmp(state, ctx, cond.left, op, cond.right, log)
        return state
    # Truthiness conditions: assume(e) refines e != 0; assume(!e) refines == 0.
    op = "!=" if positive else "=="
    _refine_cmp(state, ctx, cond, op, ENum(0), log)
    return state


def _refine_cmp(
    state: AbsState,
    ctx: AnalysisContext,
    left: Expr,
    op: str,
    right: Expr,
    log: AccessLog | None,
) -> None:
    """Refine the state with ``left op right``: when either side is a
    single-location lvalue read, its interval is filtered (the paper's
    ``{x < n}`` semantics — note the refined location is both used *and*
    defined)."""
    ev = Evaluator(ctx, state, log)
    right_v = ev.eval(right)
    _filter_side(state, ctx, left, op, right_v, log)
    left_v = ev.eval(left)
    _filter_side(state, ctx, right, _SWAPPED[op], left_v, log)


def _filter_side(
    state: AbsState,
    ctx: AnalysisContext,
    side: Expr,
    op: str,
    other: AbsValue,
    log: AccessLog | None,
) -> None:
    if not isinstance(side, ELval):
        return
    ev = Evaluator(ctx, state, log)
    locs = ev.lval_locs(side.lval)
    if len(locs) != 1:
        return
    (loc,) = locs
    if ctx.is_summary_loc(loc):
        return  # refinement is a strong write; unsound on summaries
    old = state.get(loc)
    if log is not None:
        log.use(loc)
        log.define({loc})
    if other.has_pointers():
        return  # comparisons against pointers don't refine numerics
    new_itv = old.itv.filter(op, other.itv)
    state.set(loc, AbsValue(itv=new_itv, ptsto=old.ptsto, arrays=old.arrays))
